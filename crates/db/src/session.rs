//! The [`Session`] facade: one object owning keys, planning, transport
//! and per-query leakage accounting for a **series** of queries — the
//! paper's actual subject (Corollary 5.2.2 bounds leakage over a
//! series, not a single query).
//!
//! ```text
//!   "SELECT c.name, o.total FROM c JOIN o ON … JOIN s ON … WHERE …"
//!        │ prepare (SqlPlanner → QueryPlan → lower(catalog))
//!        ▼
//!   PreparedQuery ─ execute ─▶ per-stage token cache ─▶ query_tokens
//!        │   (pairwise stages)      │ hit: reuse stage bundle
//!        │                          ▼
//!        │                ServerApi backend (local / remote / sharded)
//!        │                — a chain ships as one Request::Batch of
//!        │                  pairwise ExecuteJoins, one round trip —
//!        ▼                          │
//!   ResultSet ◀─ stitch + project ──┘ (per-column decrypt)
//!        │            each stage's JoinObservation
//!        ▼                          ▼
//!   rows/tuples               LeakageLedger (leakage_report())
//! ```
//!
//! # Plans, stages and the token cache
//!
//! The session's unit of execution is a [`QueryPlan`] — a logical
//! select-project-join tree lowered to a pipeline of **pairwise join
//! stages** (see [`crate::plan`]). A two-table [`JoinQuery`] is simply
//! a one-stage plan ([`QueryPlan::pairwise`]).
//!
//! The token cache is keyed by the **canonical pairwise stage** (both
//! sides, canonical filter sets). That granularity is forced by the
//! scheme: the two [`SjToken`](eqjoin_core::SjToken)s of one stage
//! share a fresh key `k`, and it is exactly the freshness of `k`
//! *across distinct stages* that keeps a series inside the closure
//! bound of Corollary 5.2.2. Re-using a cached side token inside a
//! *different* stage would make result rows comparable across the two —
//! super-additive leakage the paper's design rules out. Re-issuing the
//! *same* canonical stage under its old `k` reveals nothing new. Hence:
//! repeated stages skip `SJ.TkGen` entirely, and because the key is the
//! stage (not the whole plan), **overlapping chains share tokens** — a
//! series running `A⋈B⋈C` and later `A⋈B⋈D` pays for the `A⋈B`
//! bundle once.
//!
//! # What a multi-way chain adds to the leakage report
//!
//! Each pairwise stage is a query of its own in the ledger: a 3-table
//! chain records two [`QueryLeakage`] entries. The server additionally
//! learns which stages belong to one chain (they arrive in one batch) —
//! but that link adds no *pair* leakage beyond the transitive closure
//! the ledger already accounts for: the middle table's rows appear in
//! both stages' equality classes, so the closure over the union already
//! connects them. [`Session::leakage_report`] therefore stays the
//! paper's bound, now over `Σ stages` instead of `Σ queries`.

use crate::backend::{LocalBackend, RemoteBackend, ShardedBackend, TransportStats};
use crate::client::{ClientConfig, ClientStats, DbClient, TableConfig};
use crate::data::{Row, Table, Value};
use crate::encrypted::QueryTokens;
use crate::error::DbError;
use crate::join::{stitch_stages, JoinAlgorithm, StageLink};
use crate::plan::{ColumnId, LoweredPlan, QueryPlan};
use crate::protocol::{Request, Response, ServerApi};
use crate::query::JoinQuery;
use crate::server::{
    EncryptedJoinResult, JoinObservation, JoinOptions, PayloadProjection, ServerStats,
};
use eqjoin_leakage::{closure, pairs_from_classes, LeakageLedger, Node, PairSet, QueryLeakage};
use eqjoin_pairing::Engine;
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Session configuration: the client's crypto parameters plus execution
/// and caching policy, fixed at construction.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Client crypto configuration (`m`, `t`, seed, pre-filter).
    pub client: ClientConfig,
    /// Server-side execution options sent with every join.
    pub options: JoinOptions,
    /// Cache token bundles per canonical pairwise stage (on by default;
    /// see the module docs for why the cache key is the stage).
    pub token_cache: bool,
    /// Per-operation I/O deadline for remote sessions: every socket
    /// read and write of a round trip must complete within this window
    /// or the call fails with [`DbError::Timeout`]. `None` (the
    /// default) blocks indefinitely; in-process backends ignore it.
    pub deadline: Option<Duration>,
    /// O(delta) persistence for sessions served by a persistent
    /// [`LocalBackend`]: journal bytes past which the backend compacts
    /// the mutation journal into a full snapshot. `0` (the default)
    /// rewrites the snapshot after every mutation. Construct the
    /// backend with
    /// [`LocalBackend::with_persistence`](crate::backend::LocalBackend::with_persistence)
    /// passing this value; in-memory backends ignore it.
    pub compaction_threshold: u64,
}

impl SessionConfig {
    /// Scheme dimensions `m` (filter attributes per table) and `t`
    /// (`IN`-clause bound); defaults: seed 0, pre-filter off, hash join,
    /// single-threaded, token cache on.
    pub fn new(m: usize, t: usize) -> Self {
        SessionConfig {
            client: ClientConfig::new(m, t),
            options: JoinOptions::default(),
            token_cache: true,
            deadline: None,
            compaction_threshold: 0,
        }
    }

    /// Arm O(delta) persistence for persistent backends serving this
    /// session: compact the mutation journal into a full snapshot only
    /// past `bytes` of journal (`0` = rewrite after every mutation).
    pub fn compaction_threshold(mut self, bytes: u64) -> Self {
        self.compaction_threshold = bytes;
        self
    }

    /// Bound every socket read/write of a remote round trip; an elapsed
    /// deadline surfaces as [`DbError::Timeout`]. Only
    /// [`Session::remote`] honors it — in-process backends never block
    /// on a peer.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the deterministic RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.client.seed = seed;
        self
    }

    /// Enable/disable the §4.3 selectivity pre-filter.
    pub fn prefilter(mut self, enabled: bool) -> Self {
        self.client.prefilter = enabled;
        self
    }

    /// Enable/disable the per-series token cache.
    pub fn token_cache(mut self, enabled: bool) -> Self {
        self.token_cache = enabled;
        self
    }

    /// Enable/disable the server's decrypt cache for this session's
    /// joins (on by default). With both caches on, a repeated prepared
    /// query skips `SJ.TkGen` client-side *and* every `SJ.Dec` pairing
    /// server-side.
    pub fn decrypt_cache(mut self, enabled: bool) -> Self {
        self.options.decrypt_cache = enabled;
        self
    }

    /// Pin the server decrypt-cache capacity (entries) for this
    /// session's joins; `0` (the default) defers to the server's
    /// configured cap (`eqjoind --decrypt-cache-cap`).
    pub fn decrypt_cache_cap(mut self, cap: usize) -> Self {
        self.options.decrypt_cache_cap = cap;
        self
    }

    /// Select the server-side matching algorithm.
    pub fn algorithm(mut self, algorithm: JoinAlgorithm) -> Self {
        self.options.algorithm = algorithm;
        self
    }

    /// Worker threads for the server's decryption phase (`0` = auto,
    /// the default: one per available core on the executing server).
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }
}

/// Table name → ordered column names, as registered via
/// [`Session::create_table`]. SQL planners and plan lowering resolve
/// column references against this.
pub type Catalog = BTreeMap<String, Vec<String>>;

/// Rows per [`Request::CopyRows`] chunk when the caller does not pick a
/// size. Large enough to amortize the per-chunk round trip and the
/// batched fixed-base/pairing preparation, small enough that a chunk's
/// encrypted frame stays far below the transport frame cap.
pub const DEFAULT_COPY_CHUNK_ROWS: usize = 512;

/// A resolved SQL statement: a query plan, or one of the incremental
/// update statements ([`Session::run_sql`] dispatches on this).
#[derive(Clone, Debug)]
pub enum SqlStatement {
    /// `SELECT … FROM … JOIN …` — executes as a [`QueryPlan`].
    Select(QueryPlan),
    /// `INSERT INTO t VALUES (…), (…)` — plaintext rows the session
    /// encrypts and appends incrementally.
    Insert {
        /// Target table.
        table: String,
        /// Rows in schema column order.
        rows: Vec<Vec<Value>>,
    },
    /// `DELETE FROM t WHERE rowid IN (…)` — stable row ids to delete.
    Delete {
        /// Target table.
        table: String,
        /// Row ids.
        rows: Vec<u64>,
    },
    /// `COPY t FROM VALUES (…), (…)` — bulk-load rows the session
    /// streams to the backend in self-describing
    /// [`Request::CopyRows`](crate::protocol::Request::CopyRows) chunks.
    Copy {
        /// Target table.
        table: String,
        /// Rows in schema column order.
        rows: Vec<Vec<Value>>,
    },
}

/// What one SQL statement produced.
#[derive(Debug)]
pub enum SqlOutcome {
    /// A `SELECT`'s decrypted result set (boxed: result sets dwarf the
    /// update counters).
    Rows(Box<ResultSet>),
    /// Number of rows an `INSERT INTO` appended.
    Inserted(usize),
    /// Number of rows a `DELETE FROM` removed.
    Deleted(usize),
    /// Number of rows a `COPY … FROM VALUES` bulk-loaded.
    Copied(usize),
}

/// A pluggable SQL front-end. Implemented by `eqjoin-sql`'s
/// `SqlFrontend`; the `eqjoin` facade crate installs it automatically.
pub trait SqlPlanner {
    /// Parse `sql` and resolve it against `catalog` into a logical
    /// [`QueryPlan`].
    fn plan(&self, sql: &str, catalog: &Catalog) -> Result<QueryPlan, DbError>;

    /// Parse a full statement (`SELECT`/`INSERT INTO`/`DELETE FROM`).
    /// The default treats everything as a `SELECT`, so planners written
    /// before incremental updates keep working unchanged.
    fn statement(&self, sql: &str, catalog: &Catalog) -> Result<SqlStatement, DbError> {
        self.plan(sql, catalog).map(SqlStatement::Select)
    }
}

/// Anything [`Session::prepare`]/[`Session::execute`] accepts: SQL
/// text, a logical [`QueryPlan`], a two-table [`JoinQuery`], or an
/// already-prepared query.
#[derive(Clone)]
pub enum QueryInput {
    /// SQL text (requires an installed [`SqlPlanner`]).
    Sql(String),
    /// A logical plan, bypassing the SQL front-end.
    Plan(QueryPlan),
    /// A two-table query (shorthand for [`QueryPlan::pairwise`]).
    Query(JoinQuery),
    /// A previously prepared query.
    Prepared(PreparedQuery),
}

impl From<&str> for QueryInput {
    fn from(sql: &str) -> Self {
        QueryInput::Sql(sql.to_owned())
    }
}

impl From<String> for QueryInput {
    fn from(sql: String) -> Self {
        QueryInput::Sql(sql)
    }
}

impl From<QueryPlan> for QueryInput {
    fn from(plan: QueryPlan) -> Self {
        QueryInput::Plan(plan)
    }
}

impl From<&QueryPlan> for QueryInput {
    fn from(plan: &QueryPlan) -> Self {
        QueryInput::Plan(plan.clone())
    }
}

impl From<JoinQuery> for QueryInput {
    fn from(query: JoinQuery) -> Self {
        QueryInput::Query(query)
    }
}

impl From<&JoinQuery> for QueryInput {
    fn from(query: &JoinQuery) -> Self {
        QueryInput::Query(query.clone())
    }
}

impl From<PreparedQuery> for QueryInput {
    fn from(prepared: PreparedQuery) -> Self {
        QueryInput::Prepared(prepared)
    }
}

impl From<&PreparedQuery> for QueryInput {
    fn from(prepared: &PreparedQuery) -> Self {
        QueryInput::Prepared(prepared.clone())
    }
}

/// A planned query: the logical plan, its lowering (tables, pairwise
/// stages, resolved projection) and the per-stage cache keys.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    plan: QueryPlan,
    lowered: LoweredPlan,
    stage_fingerprints: Vec<Vec<u8>>,
    fingerprint: Vec<u8>,
}

impl PreparedQuery {
    /// The logical plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The validated lowering: tables in join order, pairwise stages,
    /// resolved projection.
    pub fn lowered(&self) -> &LoweredPlan {
        &self.lowered
    }

    /// Canonical cache key of the whole plan: identical for
    /// semantically identical plans (filter order and duplicate `IN`
    /// values do not matter). The token cache uses the finer
    /// [`PreparedQuery::stage_fingerprints`].
    pub fn fingerprint(&self) -> &[u8] {
        &self.fingerprint
    }

    /// Canonical cache key per pairwise stage — what the session token
    /// cache is keyed on, so overlapping chains share stage tokens.
    pub fn stage_fingerprints(&self) -> &[Vec<u8>] {
        &self.stage_fingerprints
    }
}

/// Canonical byte encoding of a pairwise stage: table/column names
/// length-prefixed, followed by the stage's *effective* IN sets
/// ([`JoinQuery::canonical_filter_sets`] — deduplicated, same-column
/// filters intersected, sorted). Token generation consumes exactly the
/// same canonical sets, so two stages with the same fingerprint are
/// guaranteed to execute identically — sharing one token bundle between
/// them is safe.
fn fingerprint(query: &JoinQuery) -> Vec<u8> {
    fn put(out: &mut Vec<u8>, bytes: &[u8]) {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    let mut out = Vec::new();
    put(&mut out, query.left_table.as_bytes());
    put(&mut out, query.left_join_column.as_bytes());
    put(&mut out, query.right_table.as_bytes());
    put(&mut out, query.right_join_column.as_bytes());
    for ((table, column), values) in query.canonical_filter_sets() {
        let mut enc = Vec::new();
        put(&mut enc, table.as_bytes());
        put(&mut enc, column.as_bytes());
        for v in &values {
            put(&mut enc, &v.canonical_bytes());
        }
        put(&mut out, &enc);
    }
    out
}

/// Decrypted result of one executed plan.
#[derive(Debug)]
pub struct ResultSet {
    /// Output column headers (qualified), in projection order.
    pub columns: Vec<ColumnId>,
    /// The projected plaintext rows, aligned with `columns`.
    pub rows: Vec<Row>,
    /// Matched server-side row indices per output row: `tuples[i][p]`
    /// is the row of table position `p` (join order) behind `rows[i]`.
    pub tuples: Vec<Vec<usize>>,
    /// Legacy pairwise view: `(first table row, last table row)` per
    /// output row (for a two-table plan, exactly the matched pairs).
    pub pairs: Vec<(usize, usize)>,
    /// Server-side execution statistics, summed over the plan's stages.
    pub stats: ServerStats,
    /// Per-stage server statistics (one entry per pairwise stage).
    pub stage_stats: Vec<ServerStats>,
    /// Ledger index of the plan's first stage (stages occupy
    /// `series_index .. series_index + stage_stats.len()`).
    pub series_index: u64,
    /// Whether *every* stage's token bundle came from the session
    /// cache.
    pub cache_hit: bool,
    /// Per-stage token-cache outcome.
    pub stage_cache_hits: Vec<bool>,
}

/// Session-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Pairwise joins executed through this session (a multi-way chain
    /// counts one per stage).
    pub queries_executed: u64,
    /// Stage token bundles served from the cache.
    pub token_cache_hits: u64,
    /// Stage token bundles generated fresh.
    pub token_cache_misses: u64,
    /// Cumulative rows the *server* served from its decrypt cache over
    /// this session's joins (each skipped one `SJ.Dec` pairing). Works
    /// across all backends — the counter rides in every
    /// [`ServerStats`] coming back over the wire.
    pub decrypt_cache_hits: u64,
    /// Client-side crypto counters (includes `SJ.TkGen` calls and the
    /// per-column decrypt/skip counters projections drive).
    pub client: ClientStats,
    /// Joins dispatched to the backend whose outcome is *unknown*: the
    /// transport failed mid-exchange, so the server may have executed
    /// and observed them without the session receiving the observation
    /// to ledger. While this is non-zero, [`Session::leakage_report`]
    /// is a lower bound, not an exact account.
    pub queries_unaccounted: u64,
    /// Backend transport counters: round trips, batched requests and
    /// bytes on the wire (zero bytes for in-process backends). Benches
    /// read these to report what batching saves.
    pub transport: TransportStats,
}

/// Summary of the session's cumulative leakage (Corollary 5.2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeakageReport {
    /// Number of recorded pairwise joins (chain stages count
    /// individually).
    pub queries: usize,
    /// Pairs currently visible to the adversarial server.
    pub visible_pairs: usize,
    /// The paper's bound: |closure(∪ per-query leakage)|.
    pub closure_bound: usize,
    /// Whether the visible set stays within the closure bound — `true`
    /// for Secure Join; the property super-additive schemes violate.
    pub within_bound: bool,
    /// Pairs visible beyond the bound (0 when `within_bound`).
    pub super_additive_excess: usize,
}

/// One encrypted-database session over a series of queries.
///
/// Owns the trusted [`DbClient`] (keys never leave it) and a
/// [`ServerApi`] backend, and threads every plan through prepare →
/// per-stage tokens (cached) → backend joins → stitch → per-column
/// decrypt → leakage ledger. See the [module docs](self) for the full
/// pipeline.
pub struct Session<E: Engine> {
    client: DbClient<E>,
    backend: Box<dyn ServerApi<E>>,
    config: SessionConfig,
    /// When set, every request ships inside a
    /// [`Request::WithTenant`] envelope naming this tenant — the
    /// session then lives entirely in that tenant's isolated namespace
    /// on a multi-tenant server.
    tenant: Option<String>,
    catalog: Catalog,
    planner: Option<Box<dyn SqlPlanner>>,
    token_cache: HashMap<Vec<u8>, QueryTokens<E>>,
    ledger: LeakageLedger,
    observed_union: PairSet,
    stats: SessionStats,
}

/// One resolved stage, ready to dispatch.
struct StageDispatch<E: Engine> {
    tokens: QueryTokens<E>,
    projection: PayloadProjection,
    cache_hit: bool,
}

impl<E: Engine> Session<E> {
    /// Session over an in-process [`LocalBackend`].
    pub fn local(config: SessionConfig) -> Self {
        Self::with_backend(config, Box::new(LocalBackend::new()))
    }

    /// Session over a [`RemoteBackend`] connected to an `eqjoind`
    /// server at `addr`. Connection failure is [`DbError::Transport`].
    /// [`SessionConfig::deadline`] becomes the connection's I/O
    /// timeout; idempotent requests retry per the default
    /// [`RetryPolicy`](crate::backend::RetryPolicy).
    pub fn remote<A: std::net::ToSocketAddrs + ToString>(
        config: SessionConfig,
        addr: A,
    ) -> Result<Self, DbError> {
        let remote = RemoteBackend::connect_with(
            addr,
            crate::backend::RemoteConfig {
                io_timeout: config.deadline,
                ..crate::backend::RemoteConfig::default()
            },
        )?;
        Ok(Self::with_backend(config, Box::new(remote)))
    }

    /// Session over a [`ShardedBackend`] of `shards` in-process shards
    /// (`shards` is clamped to at least 1).
    pub fn sharded(config: SessionConfig, shards: usize) -> Self {
        Self::with_backend(config, Box::new(ShardedBackend::local(shards)))
    }

    /// Session over an arbitrary backend (remote/sharded backends plug
    /// in here).
    pub fn with_backend(config: SessionConfig, backend: Box<dyn ServerApi<E>>) -> Self {
        Session {
            client: DbClient::with_config(config.client),
            backend,
            config,
            tenant: None,
            catalog: Catalog::new(),
            planner: None,
            token_cache: HashMap::new(),
            ledger: LeakageLedger::new(),
            observed_union: PairSet::new(),
            stats: SessionStats::default(),
        }
    }

    /// Install a SQL front-end (builder style). Without one, only
    /// [`QueryPlan`]/[`JoinQuery`] inputs are accepted.
    pub fn with_planner(mut self, planner: Box<dyn SqlPlanner>) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Scope this session to a tenant namespace (builder style): every
    /// request — uploads, joins, incremental updates — ships inside a
    /// [`Request::WithTenant`] envelope, so on a multi-tenant server
    /// the session sees only its own store, decrypt cache and stats.
    /// Rejects names that are not `[A-Za-z0-9_-]{1,64}` (tenant names
    /// become snapshot subdirectories server-side).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Result<Self, DbError> {
        let tenant = tenant.into();
        if !crate::protocol::valid_tenant_name(&tenant) {
            return Err(DbError::Protocol(format!(
                "invalid tenant name {tenant:?} (want [A-Za-z0-9_-]{{1,64}})"
            )));
        }
        self.tenant = Some(tenant);
        Ok(self)
    }

    /// The tenant namespace this session is scoped to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Send one request, wrapped in the session's tenant envelope when
    /// one is configured. Every backend call goes through here so a
    /// tenant-scoped session cannot accidentally leak a bare request
    /// into the default namespace.
    fn dispatch(&self, request: Request<E>) -> Response {
        match &self.tenant {
            Some(tenant) => self.backend.handle(Request::WithTenant {
                tenant: tenant.clone(),
                inner: Box::new(request),
            }),
            None => self.backend.handle(request),
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The registered plaintext schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Session counters (cache behavior, `SJ.TkGen` calls, transport
    /// round trips and bytes).
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats;
        stats.client = self.client.stats();
        stats.transport = self.backend.transport_stats();
        stats
    }

    /// The backend's cumulative transport counters (also embedded in
    /// [`Session::stats`]).
    pub fn transport_stats(&self) -> TransportStats {
        self.backend.transport_stats()
    }

    /// Ask the *server* for its observability snapshot over the wire
    /// ([`Request::Stats`]): the server-side transport counters plus
    /// its full Prometheus exposition. A tenant-scoped session gets
    /// counters scoped to its namespace. Never sent implicitly — the
    /// probe itself is one ordinary (counted) round trip.
    pub fn server_metrics(&self) -> Result<crate::protocol::ServerMetrics, DbError> {
        match self.dispatch(Request::Stats) {
            Response::Stats(metrics) => Ok(metrics),
            Response::Error(e) => Err(e),
            _ => Err(DbError::Protocol(
                "backend answered Stats with the wrong response kind".into(),
            )),
        }
    }

    /// Encrypt a plaintext table under the session keys and upload it to
    /// the backend.
    pub fn create_table(&mut self, table: &Table, config: TableConfig) -> Result<(), DbError> {
        let encrypted = self.client.encrypt_table(table, config)?;
        match self.dispatch(Request::InsertTable(encrypted)) {
            Response::TableInserted { .. } => {
                self.catalog
                    .insert(table.schema.name.clone(), table.schema.columns.clone());
                Ok(())
            }
            Response::Error(e) => Err(e),
            _ => Err(DbError::Protocol(
                "backend answered InsertTable with the wrong response kind".into(),
            )),
        }
    }

    /// Encrypt plaintext rows (schema column order) and append them to
    /// an existing table **incrementally**: stored rows — and their
    /// decrypt-cache entries server-side — are untouched, so a warm
    /// series stays warm and only the new rows cost anything. Returns
    /// the number of rows appended.
    pub fn insert_rows(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<usize, DbError> {
        let (start_row, encrypted) = self.client.encrypt_rows(table, rows)?;
        match self.dispatch(Request::InsertRows {
            table: table.to_owned(),
            start_row,
            rows: encrypted,
        }) {
            Response::RowsInserted { rows, .. } => Ok(rows),
            Response::Error(e) => Err(e),
            _ => Err(DbError::Protocol(
                "backend answered InsertRows with the wrong response kind".into(),
            )),
        }
    }

    /// Stream a whole plaintext table to the backend as a COPY-style
    /// bulk load: the table is encrypted and shipped in chunks of
    /// `chunk_rows` rows (`0` = [`DEFAULT_COPY_CHUNK_ROWS`]), each a
    /// self-describing [`Request::CopyRows`] frame, so peak memory —
    /// client and wire — is one chunk, not one table. The first chunk
    /// creates the table server-side (a zero-row table still ships one
    /// empty chunk as a pure "create" declaration). Returns the number
    /// of rows loaded.
    pub fn copy_table(
        &mut self,
        table: &Table,
        config: TableConfig,
        chunk_rows: usize,
    ) -> Result<usize, DbError> {
        let name = table.schema.name.clone();
        // Register the client-side table state (keys, PRF streams, row
        // numbering) without materializing the whole encrypted table:
        // an empty shell of the schema encrypts zero rows.
        let shell = Table::new(table.schema.clone());
        let _ = self.client.encrypt_table(&shell, config)?;
        let chunk = if chunk_rows == 0 {
            DEFAULT_COPY_CHUNK_ROWS
        } else {
            chunk_rows
        };
        let rows: Vec<Vec<Value>> = table.rows.iter().map(|r| r.0.clone()).collect();
        let mut loaded = 0;
        let mut offset = 0;
        loop {
            let end = (offset + chunk).min(rows.len());
            loaded += self.copy_chunk(&name, &rows[offset..end])?;
            offset = end;
            if offset >= rows.len() {
                break;
            }
        }
        self.catalog.insert(name, table.schema.columns.clone());
        Ok(loaded)
    }

    /// Bulk-append plaintext rows to a table this session already
    /// encrypts (the server half is create-or-append, so the table need
    /// not exist server-side yet). Rows are encrypted and shipped in
    /// [`DEFAULT_COPY_CHUNK_ROWS`]-row [`Request::CopyRows`] chunks.
    pub fn copy_rows(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<usize, DbError> {
        let mut loaded = 0;
        let mut offset = 0;
        loop {
            let end = (offset + DEFAULT_COPY_CHUNK_ROWS).min(rows.len());
            loaded += self.copy_chunk(table, &rows[offset..end])?;
            offset = end;
            if offset >= rows.len() {
                break;
            }
        }
        Ok(loaded)
    }

    /// Encrypt and ship one COPY chunk.
    fn copy_chunk(&mut self, table: &str, rows: &[Vec<Value>]) -> Result<usize, DbError> {
        let config = self
            .client
            .table_config(table)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(table.to_owned()))?;
        let (start_row, encrypted) = self.client.encrypt_rows(table, rows)?;
        match self.dispatch(Request::CopyRows {
            table: table.to_owned(),
            join_column: config.join_column,
            filter_columns: config.filter_columns,
            start_row,
            rows: encrypted,
        }) {
            Response::CopyRows { rows, .. } => Ok(rows),
            Response::Error(e) => Err(e),
            _ => Err(DbError::Protocol(
                "backend answered CopyRows with the wrong response kind".into(),
            )),
        }
    }

    /// Delete rows by their stable ids (the row indices result sets
    /// report). Row-granular: only the deleted rows' cached decrypt
    /// state is dropped server-side.
    pub fn delete_rows(&mut self, table: &str, rows: &[u64]) -> Result<usize, DbError> {
        match self.dispatch(Request::DeleteRows {
            table: table.to_owned(),
            rows: rows.to_vec(),
        }) {
            Response::RowsDeleted { rows, .. } => Ok(rows),
            Response::Error(e) => Err(e),
            _ => Err(DbError::Protocol(
                "backend answered DeleteRows with the wrong response kind".into(),
            )),
        }
    }

    /// Run one SQL statement: `SELECT` executes like
    /// [`Session::execute`]; `INSERT INTO`/`DELETE FROM` apply
    /// incremental updates. Requires an installed [`SqlPlanner`] that
    /// understands statements (the bundled `eqjoin-sql` front-end does).
    pub fn run_sql(&mut self, sql: &str) -> Result<SqlOutcome, DbError> {
        let planner = self.planner.as_ref().ok_or(DbError::NoSqlPlanner)?;
        match planner.statement(sql, &self.catalog)? {
            SqlStatement::Select(plan) => self
                .execute(plan)
                .map(|result| SqlOutcome::Rows(Box::new(result))),
            SqlStatement::Insert { table, rows } => {
                self.insert_rows(&table, &rows).map(SqlOutcome::Inserted)
            }
            SqlStatement::Delete { table, rows } => {
                self.delete_rows(&table, &rows).map(SqlOutcome::Deleted)
            }
            SqlStatement::Copy { table, rows } => {
                self.copy_rows(&table, &rows).map(SqlOutcome::Copied)
            }
        }
    }

    /// Plan a query: SQL text goes through the installed [`SqlPlanner`],
    /// then the resulting [`QueryPlan`] (or a directly supplied one) is
    /// validated against the session catalog and lowered to pairwise
    /// stages.
    pub fn prepare(&mut self, input: impl Into<QueryInput>) -> Result<PreparedQuery, DbError> {
        let plan = match input.into() {
            QueryInput::Prepared(prepared) => return Ok(prepared),
            QueryInput::Plan(plan) => plan,
            QueryInput::Query(query) => QueryPlan::pairwise(&query),
            QueryInput::Sql(sql) => {
                let planner = self.planner.as_ref().ok_or(DbError::NoSqlPlanner)?;
                planner.plan(&sql, &self.catalog)?
            }
        };
        let lowered = plan.lower(&self.catalog)?;
        let stage_fingerprints: Vec<Vec<u8>> = lowered
            .stages
            .iter()
            .map(|stage| fingerprint(&stage.query))
            .collect();
        // Whole-plan fingerprint: the stages plus the projection.
        let mut fp = Vec::new();
        for sf in &stage_fingerprints {
            fp.extend_from_slice(&(sf.len() as u32).to_le_bytes());
            fp.extend_from_slice(sf);
        }
        fp.push(lowered.select_star as u8);
        for col in &lowered.projection {
            fp.extend_from_slice(&(col.position as u32).to_le_bytes());
            fp.extend_from_slice(&(col.column_index as u32).to_le_bytes());
        }
        Ok(PreparedQuery {
            plan,
            lowered,
            stage_fingerprints,
            fingerprint: fp,
        })
    }

    /// Fetch the token bundle for one pairwise stage — from the session
    /// cache when enabled and warm, freshly generated (and cached)
    /// otherwise. Returns `(tokens, cache_hit)` and updates the cache
    /// counters.
    fn tokens_for(
        &mut self,
        stage_fingerprint: &[u8],
        query: &JoinQuery,
    ) -> Result<(QueryTokens<E>, bool), DbError> {
        let (tokens, cache_hit) = if self.config.token_cache {
            match self.token_cache.get(stage_fingerprint) {
                Some(cached) => (cached.clone(), true),
                None => {
                    let fresh = self.client.query_tokens(query)?;
                    self.token_cache
                        .insert(stage_fingerprint.to_vec(), fresh.clone());
                    (fresh, false)
                }
            }
        } else {
            (self.client.query_tokens(query)?, false)
        };
        if cache_hit {
            self.stats.token_cache_hits += 1;
            eqjoin_obs::counter!("eqjoin_session_token_cache_hits_total").inc();
        } else {
            self.stats.token_cache_misses += 1;
            eqjoin_obs::counter!("eqjoin_session_token_cache_misses_total").inc();
        }
        Ok((tokens, cache_hit))
    }

    /// The payload columns stage `stage_idx` must ship, given the
    /// plan's projection: the stage that *introduces* a table provides
    /// its payloads; an anchor table's payloads were already provided
    /// by an earlier stage, so the request asks for none of them.
    fn stage_projection(lowered: &LoweredPlan, stage_idx: usize) -> PayloadProjection {
        let stage = &lowered.stages[stage_idx];
        let provides_left = stage_idx == 0;
        PayloadProjection {
            left: if provides_left {
                lowered.wanted_columns(stage.left_position)
            } else {
                Some(Vec::new())
            },
            right: lowered.wanted_columns(stage.right_position),
        }
    }

    /// Resolve all stages of `prepared` into dispatchable requests
    /// (token cache consulted per stage).
    fn dispatch_stages(
        &mut self,
        prepared: &PreparedQuery,
    ) -> Result<Vec<StageDispatch<E>>, DbError> {
        let mut out = Vec::with_capacity(prepared.lowered.stages.len());
        for (i, stage) in prepared.lowered.stages.iter().enumerate() {
            let (tokens, cache_hit) =
                self.tokens_for(&prepared.stage_fingerprints[i], &stage.query)?;
            out.push(StageDispatch {
                tokens,
                projection: Self::stage_projection(&prepared.lowered, i),
                cache_hit,
            });
        }
        Ok(out)
    }

    /// Record one executed join in the leakage ledger and return its
    /// series index. This must happen for every join the server
    /// executed — the observation exists server-side whatever the
    /// client manages to do with the result afterwards.
    fn record_observation(&mut self, observation: &JoinObservation) -> u64 {
        let classes: Vec<Vec<Node>> = observation
            .equality_classes
            .iter()
            .map(|class| {
                class
                    .iter()
                    .map(|(table, row)| Node::new(table, *row))
                    .collect()
            })
            .collect();
        let per_query = pairs_from_classes(&classes);
        self.observed_union.union_with(&per_query);
        let series_index = self.stats.queries_executed;
        self.ledger.record(QueryLeakage {
            query_id: series_index,
            per_query,
            cumulative_visible: closure(&self.observed_union),
        });
        self.stats.queries_executed += 1;
        series_index
    }

    /// Stitch one plan's executed stages and decrypt the projected
    /// columns into a [`ResultSet`].
    fn assemble_result_set(
        &mut self,
        prepared: &PreparedQuery,
        stage_results: Vec<EncryptedJoinResult>,
        series_index: u64,
        stage_cache_hits: Vec<bool>,
    ) -> Result<ResultSet, DbError> {
        let lowered = &prepared.lowered;

        // Payload lookup: (table position, server row) → sealed column
        // payloads, taken from the stage that introduced the position.
        let mut payloads: HashMap<(usize, usize), &Vec<Vec<u8>>> = HashMap::new();
        let mut links = Vec::with_capacity(stage_results.len());
        for (i, result) in stage_results.iter().enumerate() {
            let stage = &lowered.stages[i];
            let mut pairs = Vec::with_capacity(result.pairs.len());
            for pair in &result.pairs {
                if i == 0 {
                    payloads
                        .entry((stage.left_position, pair.left_row))
                        .or_insert(&pair.left_payloads);
                }
                payloads
                    .entry((stage.right_position, pair.right_row))
                    .or_insert(&pair.right_payloads);
                pairs.push((pair.left_row, pair.right_row));
            }
            links.push(StageLink {
                left_position: stage.left_position,
                right_position: stage.right_position,
                pairs,
            });
        }
        let tuples = stitch_stages(&links);

        // Per-position decode maps: projected column → index within the
        // shipped payload subset.
        let positions = lowered.tables.len();
        let wanted: Vec<Option<Vec<usize>>> =
            (0..positions).map(|p| lowered.wanted_columns(p)).collect();
        let payload_slot = |position: usize, column_index: usize| -> Option<usize> {
            match &wanted[position] {
                None => Some(column_index),
                Some(cols) => cols.binary_search(&column_index).ok(),
            }
        };

        // Decrypt each projected value once per (position, row, column)
        // — cross products reuse the opened value — and account the
        // columns the projection never touched as skipped.
        let mut opened: HashMap<(usize, usize, usize), Value> = HashMap::new();
        let mut seen_rows: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        let mut rows = Vec::with_capacity(tuples.len());
        for tuple in &tuples {
            let mut values = Vec::with_capacity(lowered.projection.len());
            for col in &lowered.projection {
                let row_idx = tuple[col.position];
                let key = (col.position, row_idx, col.column_index);
                let value = match opened.get(&key) {
                    Some(v) => v.clone(),
                    None => {
                        let blobs = payloads.get(&(col.position, row_idx)).ok_or_else(|| {
                            DbError::Protocol(
                                "stitched tuple references a row the server sent no \
                                 payloads for"
                                    .into(),
                            )
                        })?;
                        let slot = payload_slot(col.position, col.column_index)
                            .ok_or(DbError::PayloadCorrupted)?;
                        let blob = blobs.get(slot).ok_or(DbError::PayloadCorrupted)?;
                        let v = self.client.open_value(
                            &lowered.tables[col.position],
                            row_idx,
                            col.column_index,
                            blob,
                        )?;
                        opened.insert(key, v.clone());
                        v
                    }
                };
                values.push(value);
            }
            for (position, &row_idx) in tuple.iter().enumerate() {
                if let Some(cols) = &wanted[position] {
                    if seen_rows.insert((position, row_idx)) {
                        let total = self.catalog[&lowered.tables[position]].len();
                        self.client
                            .note_skipped_column_decrypts((total - cols.len()) as u64);
                    }
                }
            }
            rows.push(Row(values));
        }

        let pairs = tuples
            .iter()
            .map(|t| (t[0], *t.last().expect("tuples are non-empty")))
            .collect();
        let mut stats = ServerStats::default();
        for s in &stage_results {
            stats.merge(&s.stats);
        }
        Ok(ResultSet {
            columns: lowered.projection.iter().map(|c| c.id.clone()).collect(),
            rows,
            tuples,
            pairs,
            stats,
            stage_stats: stage_results.into_iter().map(|r| r.stats).collect(),
            series_index,
            cache_hit: stage_cache_hits.iter().all(|&h| h),
            stage_cache_hits,
        })
    }

    /// Execute a query end-to-end: per-stage tokens (cached on repeats)
    /// → backend joins (a chain ships as **one** batched round trip) →
    /// stitch → per-column decrypt → leakage ledger.
    pub fn execute(&mut self, input: impl Into<QueryInput>) -> Result<ResultSet, DbError> {
        let prepared = self.prepare(input)?;
        let mut results = self.run_series(vec![prepared])?;
        Ok(results.pop().expect("one plan in, one result out"))
    }

    /// Execute a whole prepared series in **one round trip**: every
    /// stage of every plan is resolved up front (cache consulted per
    /// stage — a repeat later in the slice reuses the tokens its first
    /// occurrence just generated), the series ships as a single
    /// [`Request::Batch`] of pairwise joins, and the backend answers
    /// with one same-arity [`Response::Batch`]. Over a
    /// [`RemoteBackend`](crate::backend::RemoteBackend) that is exactly
    /// one TCP round trip for the entire series.
    ///
    /// Results come back in input order. If any query fails, the first
    /// failure (in series order) is returned — but every join the
    /// server *did* execute is recorded in the leakage ledger first.
    /// The one unknowable case is a transport failure after dispatch:
    /// no observation comes back to record, so the affected joins are
    /// counted in [`SessionStats::queries_unaccounted`] instead.
    pub fn execute_all(&mut self, inputs: &[QueryInput]) -> Result<Vec<ResultSet>, DbError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let prepared = inputs
            .iter()
            .map(|input| self.prepare(input.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        self.run_series(prepared)
    }

    /// Degraded-mode variant of [`execute_all`](Self::execute_all):
    /// every query gets its **own** outcome instead of the first
    /// failure poisoning the batch. A query whose stages all came back
    /// yields `Ok(ResultSet)` even when its neighbors hit a lost shard,
    /// a timeout, or a per-element server error; only failures that
    /// predate the fan-out (planning, token generation, or a
    /// whole-batch transport loss) reach every slot. Leakage
    /// accounting is identical to `execute_all` — every join the
    /// server executed is recorded before results are assembled.
    pub fn execute_all_partial(
        &mut self,
        inputs: &[QueryInput],
    ) -> Vec<Result<ResultSet, DbError>> {
        let prepared = inputs
            .iter()
            .map(|input| self.prepare(input.clone()))
            .collect();
        self.run_series_partial(prepared)
    }

    /// The shared execution core with all-or-nothing semantics: the
    /// first per-slot failure (in series order) fails the whole series.
    fn run_series(&mut self, prepared: Vec<PreparedQuery>) -> Result<Vec<ResultSet>, DbError> {
        self.run_series_partial(prepared.into_iter().map(Ok).collect())
            .into_iter()
            .collect()
    }

    /// The per-slot execution core: dispatch every stage of every
    /// still-viable plan (one plain request for a single pairwise
    /// stage, one batch otherwise), ledger every observation that came
    /// back, then stitch + decrypt per plan — each slot succeeding or
    /// failing on its own.
    fn run_series_partial(
        &mut self,
        prepared: Vec<Result<PreparedQuery, DbError>>,
    ) -> Vec<Result<ResultSet, DbError>> {
        // One record per dispatch: for `execute` this is exactly the
        // per-query end-to-end latency (tokens → backend → stitch →
        // decrypt); a batched series records its whole round trip once.
        let _span = eqjoin_obs::span!("session_query");
        // A slot that failed before dispatch keeps its own error and
        // ships no stages; the rest share one batch.
        enum Slot {
            Failed(DbError),
            Pending {
                prepared: PreparedQuery,
                cache_hits: Vec<bool>,
            },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(prepared.len());
        let mut requests = Vec::new();
        for entry in prepared {
            let p = match entry {
                Ok(p) => p,
                Err(e) => {
                    slots.push(Slot::Failed(e));
                    continue;
                }
            };
            match self.dispatch_stages(&p) {
                Ok(dispatches) => {
                    let mut cache_hits = Vec::with_capacity(dispatches.len());
                    for d in dispatches {
                        cache_hits.push(d.cache_hit);
                        requests.push(Request::ExecuteJoin {
                            tokens: d.tokens,
                            options: self.config.options,
                            projection: d.projection,
                        });
                    }
                    slots.push(Slot::Pending {
                        prepared: p,
                        cache_hits,
                    });
                }
                Err(e) => slots.push(Slot::Failed(e)),
            }
        }
        let total_stages = requests.len();
        // Failures that hit the batch as a whole (nothing dispatched,
        // or the one response lost) land in every pending slot;
        // pre-dispatch failures keep their own error.
        let fail_pending = |slots: Vec<Slot>, e: DbError| -> Vec<Result<ResultSet, DbError>> {
            slots
                .into_iter()
                .map(|slot| match slot {
                    Slot::Failed(own) => Err(own),
                    Slot::Pending { .. } => Err(e.clone()),
                })
                .collect()
        };
        if total_stages == 0 {
            return fail_pending(
                slots,
                DbError::Protocol("plan lowered to zero stages".into()),
            );
        }

        let sent_before = self.backend.transport_stats().bytes_sent;
        let responses: Vec<Response> = if total_stages == 1 {
            let response = self.dispatch(requests.pop().expect("exactly one request"));
            vec![response]
        } else {
            match self.dispatch(Request::Batch(requests)) {
                Response::Batch(responses) => {
                    if responses.len() != total_stages {
                        return fail_pending(
                            slots,
                            DbError::Protocol(format!(
                                "batch arity mismatch: {total_stages} requests, {} responses",
                                responses.len()
                            )),
                        );
                    }
                    responses
                }
                Response::Error(e) => {
                    // If the batch reached the wire, a transport failure
                    // leaves every join's server-side outcome unknown;
                    // if nothing was sent, nothing was dispatched.
                    if matches!(e, DbError::Transport(_))
                        && self.backend.transport_stats().bytes_sent > sent_before
                    {
                        self.stats.queries_unaccounted += total_stages as u64;
                    }
                    return fail_pending(slots, e);
                }
                _ => {
                    return fail_pending(
                        slots,
                        DbError::Protocol(
                            "backend answered Batch with the wrong response kind".into(),
                        ),
                    )
                }
            }
        };

        // Pass 1 — leakage: the server observed *every* executed join
        // in the series, so record them all before any error or decrypt
        // failure can cut the processing short.
        let dispatched = self.backend.transport_stats().bytes_sent > sent_before;
        let mut executed: Vec<Result<(EncryptedJoinResult, u64), DbError>> =
            Vec::with_capacity(responses.len());
        for response in responses {
            match response {
                Response::JoinExecuted {
                    result,
                    observation,
                } => {
                    self.stats.decrypt_cache_hits += result.stats.decrypt_cache_hits;
                    let series_index = self.record_observation(&observation);
                    executed.push(Ok((result, series_index)));
                }
                Response::Error(e) => {
                    // Per-element transport errors reach here when the
                    // connection died mid-exchange, a remote *shard*
                    // failed mid-batch, or a response outgrew the frame
                    // cap after the joins ran.
                    if matches!(e, DbError::Transport(_)) && dispatched {
                        self.stats.queries_unaccounted += 1;
                    }
                    executed.push(Err(e));
                }
                _ => executed.push(Err(DbError::Protocol(
                    "backend answered ExecuteJoin with the wrong response kind".into(),
                ))),
            }
        }

        // Pass 2 — stitch and decrypt per plan, in series order. A
        // failed stage fails its own plan's slot; every other plan
        // still assembles (its stage responses are all consumed either
        // way, so slots stay aligned).
        let mut executed = executed.into_iter();
        let mut results = Vec::with_capacity(slots.len());
        for slot in slots {
            let (p, stage_cache_hits) = match slot {
                Slot::Failed(e) => {
                    results.push(Err(e));
                    continue;
                }
                Slot::Pending {
                    prepared,
                    cache_hits,
                } => (prepared, cache_hits),
            };
            let n_stages = stage_cache_hits.len();
            let mut stage_results = Vec::with_capacity(n_stages);
            let mut first_error = None;
            let mut first_series_index = None;
            for _ in 0..n_stages {
                match executed.next().expect("stage arity checked") {
                    Ok((result, series_index)) => {
                        first_series_index.get_or_insert(series_index);
                        stage_results.push(result);
                    }
                    Err(e) => {
                        first_error.get_or_insert(e);
                    }
                }
            }
            results.push(match first_error {
                Some(e) => Err(e),
                None => self.assemble_result_set(
                    &p,
                    stage_results,
                    first_series_index.expect("plans have at least one stage"),
                    stage_cache_hits,
                ),
            });
        }
        results
    }

    /// The embedded per-query ledger (full history and growth series).
    pub fn ledger(&self) -> &LeakageLedger {
        &self.ledger
    }

    /// Everything the adversarial server can currently derive about
    /// equality pairs (the closure of all observations so far).
    pub fn visible_pairs(&self) -> PairSet {
        closure(&self.observed_union)
    }

    /// The Corollary 5.2.2 verdict for the series executed so far.
    ///
    /// Exact while every dispatched join's observation came back; if
    /// [`SessionStats::queries_unaccounted`] is non-zero (a transport
    /// failure after dispatch), the report is a lower bound on what
    /// the server observed.
    pub fn leakage_report(&self) -> LeakageReport {
        LeakageReport {
            queries: self.ledger.len(),
            visible_pairs: self.ledger.visible_now().len(),
            closure_bound: self.ledger.closure_bound().len(),
            within_bound: self.ledger.is_within_closure_bound(),
            super_additive_excess: self.ledger.super_additive_excess().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Schema, Value};
    use eqjoin_pairing::MockEngine;

    fn tables() -> (Table, Table) {
        let mut left = Table::new(Schema::new("L", &["k", "color"]));
        left.push_row(vec![Value::Int(1), "red".into()]);
        left.push_row(vec![Value::Int(2), "blue".into()]);
        left.push_row(vec![Value::Int(1), "red".into()]);
        let mut right = Table::new(Schema::new("R", &["k", "shape"]));
        right.push_row(vec![Value::Int(1), "disc".into()]);
        right.push_row(vec![Value::Int(3), "cube".into()]);
        (left, right)
    }

    fn third_table() -> Table {
        let mut t = Table::new(Schema::new("S", &["k", "tag"]));
        t.push_row(vec![Value::Int(1), "a".into()]);
        t.push_row(vec![Value::Int(1), "b".into()]);
        t.push_row(vec![Value::Int(2), "c".into()]);
        t
    }

    fn cfg(name: &str) -> TableConfig {
        TableConfig {
            join_column: "k".into(),
            filter_columns: vec![match name {
                "L" => "color",
                "R" => "shape",
                _ => "tag",
            }
            .to_owned()],
        }
    }

    fn session() -> Session<MockEngine> {
        let mut s = Session::local(SessionConfig::new(1, 3).seed(99));
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        s
    }

    fn session3() -> Session<MockEngine> {
        let mut s = session();
        s.create_table(&third_table(), cfg("S")).unwrap();
        s
    }

    fn chain() -> QueryPlan {
        QueryPlan::scan("L")
            .join_on("L", "k", "R", "k")
            .join_on("R", "k", "S", "k")
    }

    #[test]
    fn create_execute_and_ledger() {
        let mut s = session();
        assert_eq!(s.catalog().len(), 2);
        let q = JoinQuery::on("L", "k", "R", "k");
        let result = s.execute(&q).unwrap();
        assert_eq!(result.rows.len(), 2, "both k=1 rows of L match R row 0");
        assert!(!result.cache_hit);
        assert_eq!(result.series_index, 0);
        // SELECT *: all columns of both tables, in join order.
        assert_eq!(
            result.columns,
            vec![
                ColumnId::new("L", "k"),
                ColumnId::new("L", "color"),
                ColumnId::new("R", "k"),
                ColumnId::new("R", "shape"),
            ]
        );
        assert_eq!(result.rows[0].0.len(), 4);
        assert_eq!(result.pairs, vec![(0, 0), (2, 0)]);
        assert_eq!(result.tuples, vec![vec![0, 0], vec![2, 0]]);
        let report = s.leakage_report();
        assert_eq!(report.queries, 1);
        assert!(report.within_bound);
        assert_eq!(report.super_additive_excess, 0);
    }

    #[test]
    fn chain_executes_as_pipelined_pairwise_stages() {
        let mut s = session3();
        let result = s.execute(chain()).unwrap();
        // k=1: L rows {0,2} × R row 0 × S rows {0,1} = 4 tuples.
        assert_eq!(result.stage_stats.len(), 2);
        assert_eq!(
            result.tuples,
            vec![vec![0, 0, 0], vec![0, 0, 1], vec![2, 0, 0], vec![2, 0, 1]]
        );
        assert_eq!(result.rows.len(), 4);
        assert_eq!(result.rows[0].0.len(), 6, "SELECT *: 2 + 2 + 2 columns");
        assert_eq!(result.pairs, vec![(0, 0), (0, 1), (2, 0), (2, 1)]);
        // Both stages are ledgered individually.
        let report = s.leakage_report();
        assert_eq!(report.queries, 2);
        assert!(report.within_bound);
        assert_eq!(s.stats().queries_executed, 2);
        // One round trip for the whole chain.
        assert_eq!(s.transport_stats().round_trips, 4, "3 uploads + 1 chain");
    }

    #[test]
    fn projection_decrypts_only_selected_columns() {
        let mut star = session3();
        let all = star.execute(chain()).unwrap();
        let star_opens = star.stats().client.column_decrypts;
        assert_eq!(star.stats().client.column_decrypts_skipped, 0);

        let mut s = session3();
        let plan = chain().project(&[("S", "tag"), ("L", "color")]);
        let result = s.execute(&plan).unwrap();
        assert_eq!(
            result.columns,
            vec![ColumnId::new("S", "tag"), ColumnId::new("L", "color")]
        );
        assert_eq!(result.tuples, all.tuples, "projection changes no matches");
        assert_eq!(
            result.rows[0],
            Row(vec!["a".into(), "red".into()]),
            "projection order respected"
        );
        // Opened: unique (L row, color) ∈ {0,2} → 2, (S row, tag) ∈ {0,1} → 2.
        let stats = s.stats().client;
        assert_eq!(stats.column_decrypts, 4);
        assert!(stats.column_decrypts < star_opens);
        // Skipped: L rows 0,2 skip 1 column each; R row 0 skips 2; S rows
        // 0,1 skip 1 each = 6.
        assert_eq!(stats.column_decrypts_skipped, 6);
    }

    #[test]
    fn overlapping_chains_share_stage_tokens() {
        let mut s = session3();
        s.execute(chain()).unwrap();
        assert_eq!(s.stats().token_cache_misses, 2);
        // A different plan sharing the L⋈R stage: only the new stage
        // generates tokens.
        let overlapping = QueryPlan::scan("L").join_on("L", "k", "R", "k");
        let r = s.execute(&overlapping).unwrap();
        assert!(r.cache_hit, "the shared stage must come from the cache");
        assert_eq!(s.stats().token_cache_hits, 1);
        assert_eq!(s.stats().token_cache_misses, 2);
        // Re-running the whole chain hits on every stage.
        let again = s.execute(chain()).unwrap();
        assert!(again.cache_hit);
        assert_eq!(again.stage_cache_hits, vec![true, true]);
        assert_eq!(s.stats().token_cache_hits, 3);
    }

    #[test]
    fn filter_naming_foreign_table_is_rejected() {
        let mut s = session();
        // Typo'd table: must error, not silently drop the filter.
        let q = JoinQuery::on("L", "k", "R", "k").filter("Lx", "color", vec!["red".into()]);
        assert_eq!(
            s.execute(&q).unwrap_err(),
            DbError::FilterTableNotInQuery {
                table: "Lx".into(),
                column: "color".into(),
            }
        );
        // Same guard on the low-level client path.
        let mut client = DbClient::<MockEngine>::with_config(ClientConfig::new(1, 3).seed(1));
        let (left, _) = tables();
        client.encrypt_table(&left, cfg("L")).unwrap();
        assert!(matches!(
            client.query_tokens(&q),
            Err(DbError::FilterTableNotInQuery { .. })
        ));
    }

    #[test]
    fn repeated_query_hits_cache_and_skips_tkgen() {
        let mut s = session();
        let q = JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["red".into()]);
        let r1 = s.execute(&q).unwrap();
        let tkgen_after_first = s.stats().client.tkgen_calls;
        assert_eq!(tkgen_after_first, 2);
        let r2 = s.execute(&q).unwrap();
        assert!(r2.cache_hit);
        assert_eq!(
            s.stats().client.tkgen_calls,
            tkgen_after_first,
            "repeat must not re-run SJ.TkGen"
        );
        assert_eq!(r1.rows, r2.rows);
        assert_eq!(s.stats().token_cache_hits, 1);
        assert_eq!(s.stats().token_cache_misses, 1);
    }

    #[test]
    fn duplicate_column_filters_intersect_and_cache_safely() {
        // Two IN filters on one column are a conjunction; execution must
        // intersect them (not last-wins), and the cache must never serve
        // one ordering's tokens for the other unless they really are the
        // same query. (Regression: order-sorted fingerprints used to
        // collide while execution was order-dependent.)
        let q_ab = JoinQuery::on("L", "k", "R", "k")
            .filter("L", "color", vec!["red".into(), "blue".into()])
            .filter("L", "color", vec!["blue".into()]);
        let q_ba = JoinQuery::on("L", "k", "R", "k")
            .filter("L", "color", vec!["blue".into()])
            .filter("L", "color", vec!["red".into(), "blue".into()]);
        let plain = JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["blue".into()]);
        assert_eq!(fingerprint(&q_ab), fingerprint(&q_ba));
        assert_eq!(fingerprint(&q_ab), fingerprint(&plain));

        let mut s = session();
        let r1 = s.execute(&q_ab).unwrap();
        let r2 = s.execute(&q_ba).unwrap();
        let r3 = s.execute(&plain).unwrap();
        assert!(r2.cache_hit && r3.cache_hit);
        assert_eq!(r1.pairs, r2.pairs);
        assert_eq!(r1.pairs, r3.pairs);
        // And the intersection is really what executes: only blue rows
        // of L (row 1, k=2) — no R row has k=2, so the join is empty,
        // whereas color IN (red, blue) alone would match.
        assert!(r1.rows.is_empty());
        let red = s
            .execute(JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["red".into()]))
            .unwrap();
        assert!(!red.rows.is_empty());
    }

    #[test]
    fn in_clause_bound_applies_to_effective_values_deterministically() {
        // t = 3; four literal values but only one distinct: valid, and
        // identically valid whether or not the cache is warm.
        let dup4 = JoinQuery::on("L", "k", "R", "k").filter(
            "L",
            "color",
            vec!["red".into(), "red".into(), "red".into(), "red".into()],
        );
        let mut cold = session();
        let r_cold = cold.execute(&dup4).unwrap();
        let mut warm = session();
        warm.execute(JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["red".into()]))
            .unwrap();
        let r_warm = warm.execute(&dup4).unwrap();
        assert!(r_warm.cache_hit);
        assert_eq!(r_cold.pairs, r_warm.pairs);
        // Four *distinct* values still exceed t = 3, cold or warm.
        let distinct4 = JoinQuery::on("L", "k", "R", "k").filter(
            "L",
            "color",
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
        );
        assert!(matches!(
            cold.execute(&distinct4),
            Err(DbError::InClauseTooLarge { got: 4, max: 3 })
        ));
        // A contradictory conjunction selects nothing and is rejected
        // like an empty IN list.
        let contradiction = JoinQuery::on("L", "k", "R", "k")
            .filter("L", "color", vec!["red".into()])
            .filter("L", "color", vec!["blue".into()]);
        assert!(matches!(
            cold.execute(&contradiction),
            Err(DbError::EmptyInClause)
        ));
    }

    #[test]
    fn leakage_recorded_even_when_decryption_fails() {
        // The server observed the join whether or not the client can
        // open the payloads; a decrypt failure must not erase the
        // observation from the ledger. Stage the failure with a backend
        // that corrupts sealed payloads on the way back — also the
        // smallest example of plugging a custom ServerApi into Session.
        struct CorruptingBackend(LocalBackend<MockEngine>);
        impl ServerApi<MockEngine> for CorruptingBackend {
            fn handle(&self, request: Request<MockEngine>) -> Response {
                let mut response = self.0.handle(request);
                if let Response::JoinExecuted { result, .. } = &mut response {
                    for pair in &mut result.pairs {
                        if let Some(b) = pair.left_payloads.first_mut().and_then(|p| p.first_mut())
                        {
                            *b ^= 0xff;
                        }
                    }
                }
                response
            }
        }

        let mut s = Session::<MockEngine>::with_backend(
            SessionConfig::new(1, 3).seed(99),
            Box::new(CorruptingBackend(LocalBackend::new())),
        );
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        let err = s.execute(JoinQuery::on("L", "k", "R", "k")).unwrap_err();
        assert_eq!(err, DbError::PayloadCorrupted);
        let report = s.leakage_report();
        assert_eq!(report.queries, 1, "observation recorded despite the error");
        assert!(report.visible_pairs > 0, "the matched pairs were observed");
    }

    #[test]
    fn fingerprint_is_order_and_duplicate_insensitive() {
        let a = JoinQuery::on("L", "k", "R", "k")
            .filter("L", "color", vec!["red".into(), "blue".into()])
            .filter("R", "shape", vec!["disc".into()]);
        let b = JoinQuery::on("L", "k", "R", "k")
            .filter("R", "shape", vec!["disc".into(), "disc".into()])
            .filter("L", "color", vec!["blue".into(), "red".into()]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["red".into()]);
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn plan_fingerprint_distinguishes_projections() {
        let mut s = session3();
        let star = s.prepare(chain()).unwrap();
        let projected = s.prepare(chain().project(&[("L", "color")])).unwrap();
        assert_eq!(star.stage_fingerprints(), projected.stage_fingerprints());
        assert_ne!(star.fingerprint(), projected.fingerprint());
    }

    #[test]
    fn distinct_queries_draw_fresh_tokens() {
        let mut s = session();
        let q1 = JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["red".into()]);
        let q2 = JoinQuery::on("L", "k", "R", "k").filter("L", "color", vec!["blue".into()]);
        s.execute(&q1).unwrap();
        s.execute(&q2).unwrap();
        assert_eq!(
            s.stats().client.tkgen_calls,
            4,
            "2 sides × 2 distinct queries"
        );
        assert_eq!(s.stats().token_cache_hits, 0);
    }

    #[test]
    fn cache_off_always_regenerates() {
        let mut s =
            Session::<MockEngine>::local(SessionConfig::new(1, 3).seed(99).token_cache(false));
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        let q = JoinQuery::on("L", "k", "R", "k");
        s.execute(&q).unwrap();
        s.execute(&q).unwrap();
        assert_eq!(s.stats().client.tkgen_calls, 4);
        assert_eq!(s.stats().token_cache_hits, 0);
    }

    #[test]
    fn repeated_prepared_query_skips_all_server_decrypts() {
        let mut s = session();
        let q = s.prepare(JoinQuery::on("L", "k", "R", "k")).unwrap();
        let inputs = vec![QueryInput::from(&q), QueryInput::from(&q)];
        let results = s.execute_all(&inputs).unwrap();
        assert_eq!(results[0].stats.decrypt_cache_hits, 0, "cold first run");
        assert_eq!(
            results[1].stats.decrypt_cache_hits as usize, results[1].stats.rows_decrypted,
            "the repeat must serve every row from the server cache"
        );
        assert_eq!(results[0].rows, results[1].rows);
        assert_eq!(
            s.stats().decrypt_cache_hits,
            results[1].stats.decrypt_cache_hits,
            "session accumulates the per-query counters"
        );
        // With the decrypt cache off the repeat recomputes everything.
        let mut off =
            Session::<MockEngine>::local(SessionConfig::new(1, 3).seed(99).decrypt_cache(false));
        let (left, right) = tables();
        off.create_table(&left, cfg("L")).unwrap();
        off.create_table(&right, cfg("R")).unwrap();
        let q2 = off.prepare(JoinQuery::on("L", "k", "R", "k")).unwrap();
        let off_results = off
            .execute_all(&[QueryInput::from(&q2), QueryInput::from(&q2)])
            .unwrap();
        assert_eq!(off.stats().decrypt_cache_hits, 0);
        // Cache on vs off: identical rows, pairs and leakage.
        for (a, b) in results.iter().zip(&off_results) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.pairs, b.pairs);
        }
        assert_eq!(s.leakage_report(), off.leakage_report());
    }

    #[test]
    fn recreating_a_table_invalidates_the_server_decrypt_cache() {
        let mut s = session();
        let q = JoinQuery::on("L", "k", "R", "k");
        s.execute(&q).unwrap();
        let warm = s.execute(&q).unwrap();
        assert!(warm.stats.decrypt_cache_hits > 0);
        // Re-create L: the token cache still serves the old bundle, but
        // the server must re-decrypt L (only R's 2 rows may hit).
        let (left, _) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        let after = s.execute(&q).unwrap();
        assert!(after.cache_hit, "token cache unaffected by the upload");
        assert_eq!(
            after.stats.decrypt_cache_hits, 2,
            "L entries invalidated; only R served from cache"
        );
    }

    #[test]
    fn sql_without_planner_is_an_error() {
        let mut s = session();
        assert!(matches!(
            s.execute("SELECT * FROM L JOIN R ON k = k"),
            Err(DbError::NoSqlPlanner)
        ));
    }

    #[test]
    fn executing_against_missing_table_is_rejected_at_prepare_time() {
        let mut s = session();
        let q = JoinQuery::on("Ghost", "k", "R", "k");
        assert!(matches!(s.execute(&q), Err(DbError::UnknownTable(_))));
    }

    fn series_inputs() -> Vec<QueryInput> {
        vec![
            QueryInput::from(JoinQuery::on("L", "k", "R", "k")),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k").filter(
                "L",
                "color",
                vec!["red".into()],
            )),
            // A repeat of the first query: must hit the cache entry the
            // first element of this very batch created.
            QueryInput::from(JoinQuery::on("L", "k", "R", "k")),
        ]
    }

    #[test]
    fn execute_all_matches_sequential_execute() {
        let mut batched = session();
        let mut sequential = session();
        let results = batched.execute_all(&series_inputs()).unwrap();
        let mut expected = Vec::new();
        for input in series_inputs() {
            expected.push(sequential.execute(input).unwrap());
        }
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(&expected) {
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.pairs, want.pairs);
            assert_eq!(got.series_index, want.series_index);
            assert_eq!(got.cache_hit, want.cache_hit);
        }
        assert!(results[2].cache_hit, "repeat inside the batch hits");
        assert_eq!(batched.leakage_report(), sequential.leakage_report());
        assert_eq!(
            batched.stats().client.tkgen_calls,
            sequential.stats().client.tkgen_calls
        );
    }

    #[test]
    fn execute_all_is_one_backend_round_trip() {
        let mut s = session();
        let before = s.transport_stats();
        s.execute_all(&series_inputs()).unwrap();
        let after = s.transport_stats();
        assert_eq!(after.round_trips - before.round_trips, 1);
        assert_eq!(after.batches - before.batches, 1);
        assert_eq!(after.requests - before.requests, 3);
    }

    #[test]
    fn execute_all_empty_series_skips_the_backend() {
        let mut s = session();
        let before = s.transport_stats();
        assert!(s.execute_all(&[]).unwrap().is_empty());
        assert_eq!(s.transport_stats(), before);
    }

    #[test]
    fn transport_failures_after_dispatch_are_counted_as_unaccounted() {
        // A backend whose connection dies after the request bytes go
        // out (bytes_sent grows, then a transport error): the session
        // cannot ledger what it never received, but it must flag that
        // the report is now a lower bound. If instead *nothing* was
        // sent (fail-fast on a dead connection), the ledger stays
        // exact and the flag must stay at zero.
        struct FlakyTransport {
            counters: crate::backend::TransportCounters,
            dispatches: std::sync::atomic::AtomicBool,
        }
        impl ServerApi<MockEngine> for FlakyTransport {
            fn handle(&self, request: Request<MockEngine>) -> Response {
                match request {
                    Request::InsertTable(t) => Response::TableInserted {
                        table: t.name.clone(),
                        rows: t.len(),
                    },
                    _ => {
                        if self.dispatches.load(std::sync::atomic::Ordering::SeqCst) {
                            // The request reached the wire before the
                            // connection died.
                            self.counters.add_bytes_sent(64);
                        }
                        Response::Error(DbError::Transport("connection reset".into()))
                    }
                }
            }
            fn transport_stats(&self) -> crate::backend::TransportStats {
                self.counters.snapshot()
            }
        }

        let mut s = Session::<MockEngine>::with_backend(
            SessionConfig::new(1, 3).seed(99),
            Box::new(FlakyTransport {
                counters: crate::backend::TransportCounters::default(),
                dispatches: std::sync::atomic::AtomicBool::new(true),
            }),
        );
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        let q = JoinQuery::on("L", "k", "R", "k");
        assert!(matches!(s.execute(&q), Err(DbError::Transport(_))));
        assert_eq!(s.stats().queries_unaccounted, 1);
        let inputs = vec![QueryInput::from(&q), QueryInput::from(&q)];
        assert!(matches!(s.execute_all(&inputs), Err(DbError::Transport(_))));
        assert_eq!(s.stats().queries_unaccounted, 3, "1 single + 2 batched");
        assert_eq!(
            s.leakage_report().queries,
            0,
            "nothing ledgered — lower bound"
        );

        // Same failures with zero bytes dispatched (fail-fast path):
        // the server provably executed nothing, so nothing becomes
        // unaccounted.
        let mut dead = Session::<MockEngine>::with_backend(
            SessionConfig::new(1, 3).seed(99),
            Box::new(FlakyTransport {
                counters: crate::backend::TransportCounters::default(),
                dispatches: std::sync::atomic::AtomicBool::new(false),
            }),
        );
        let (left, right) = tables();
        dead.create_table(&left, cfg("L")).unwrap();
        dead.create_table(&right, cfg("R")).unwrap();
        assert!(matches!(dead.execute(&q), Err(DbError::Transport(_))));
        assert!(matches!(
            dead.execute_all(&inputs),
            Err(DbError::Transport(_))
        ));
        assert_eq!(dead.stats().queries_unaccounted, 0);
    }

    #[test]
    fn execute_all_records_leakage_for_executed_joins_despite_an_error() {
        // A backend that executes every join except the second one in
        // the series, which it rejects — the client must still record
        // the joins the server *did* observe.
        struct FailSecondJoin(LocalBackend<MockEngine>, std::sync::atomic::AtomicUsize);
        impl ServerApi<MockEngine> for FailSecondJoin {
            fn handle(&self, request: Request<MockEngine>) -> Response {
                match request {
                    Request::Batch(requests) => {
                        Response::Batch(requests.into_iter().map(|r| self.handle(r)).collect())
                    }
                    Request::ExecuteJoin { .. } => {
                        let n = self.1.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if n == 1 {
                            Response::Error(DbError::PayloadCorrupted)
                        } else {
                            self.0.handle(request)
                        }
                    }
                    other => self.0.handle(other),
                }
            }
        }

        let mut s = Session::<MockEngine>::with_backend(
            SessionConfig::new(1, 3).seed(99),
            Box::new(FailSecondJoin(
                LocalBackend::new(),
                std::sync::atomic::AtomicUsize::new(0),
            )),
        );
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        let inputs = vec![
            QueryInput::from(JoinQuery::on("L", "k", "R", "k")),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k").filter(
                "L",
                "color",
                vec!["red".into()],
            )),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k").filter(
                "L",
                "color",
                vec!["blue".into()],
            )),
        ];
        assert!(matches!(
            s.execute_all(&inputs),
            Err(DbError::PayloadCorrupted)
        ));
        // Queries 0 and 2 executed server-side; both must be in the
        // ledger even though the series as a whole failed.
        assert_eq!(s.leakage_report().queries, 2);
    }

    #[test]
    fn execute_all_partial_isolates_per_query_failures() {
        // Same shape as above, but through the degraded-mode API: the
        // rejected query fails alone, its neighbors still answer, and
        // a query that cannot even plan gets its own slot error.
        struct FailSecondJoin(LocalBackend<MockEngine>, std::sync::atomic::AtomicUsize);
        impl ServerApi<MockEngine> for FailSecondJoin {
            fn handle(&self, request: Request<MockEngine>) -> Response {
                match request {
                    Request::Batch(requests) => {
                        Response::Batch(requests.into_iter().map(|r| self.handle(r)).collect())
                    }
                    Request::ExecuteJoin { .. } => {
                        let n = self.1.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        if n == 1 {
                            Response::Error(DbError::PayloadCorrupted)
                        } else {
                            self.0.handle(request)
                        }
                    }
                    other => self.0.handle(other),
                }
            }
        }

        let mut s = Session::<MockEngine>::with_backend(
            SessionConfig::new(1, 3).seed(99),
            Box::new(FailSecondJoin(
                LocalBackend::new(),
                std::sync::atomic::AtomicUsize::new(0),
            )),
        );
        let (left, right) = tables();
        s.create_table(&left, cfg("L")).unwrap();
        s.create_table(&right, cfg("R")).unwrap();
        let inputs = vec![
            QueryInput::from(JoinQuery::on("L", "k", "R", "k")),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k").filter(
                "L",
                "color",
                vec!["red".into()],
            )),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k").filter(
                "L",
                "color",
                vec!["blue".into()],
            )),
            QueryInput::from(JoinQuery::on("L", "k", "NoSuchTable", "k")),
        ];
        let outcomes = s.execute_all_partial(&inputs);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[0].is_ok(), "unaffected query must still answer");
        assert!(matches!(outcomes[1], Err(DbError::PayloadCorrupted)));
        assert!(
            outcomes[2].is_ok(),
            "later slots survive an earlier failure"
        );
        assert!(
            matches!(outcomes[3], Err(DbError::UnknownTable(_))),
            "a plan-time failure stays in its own slot"
        );
        // Both executed joins are in the ledger, exactly as with
        // `execute_all`.
        assert_eq!(s.leakage_report().queries, 2);
        // The session is not poisoned: the same series succeeds once
        // the fault clears (the flaky backend only rejects call #1).
        let ok = s
            .execute_all(&inputs[..3])
            .expect("series succeeds after the fault clears");
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn execute_all_partial_on_nothing_is_empty() {
        let mut s = session();
        assert!(s.execute_all_partial(&[]).is_empty());
    }

    #[test]
    fn chain_in_execute_all_mixes_with_pairwise_queries() {
        let mut s = session3();
        let inputs = vec![
            QueryInput::from(chain()),
            QueryInput::from(JoinQuery::on("L", "k", "R", "k")),
            QueryInput::from(chain().project(&[("S", "tag")])),
        ];
        let before = s.transport_stats();
        let results = s.execute_all(&inputs).unwrap();
        let after = s.transport_stats();
        assert_eq!(after.round_trips - before.round_trips, 1);
        assert_eq!(after.requests - before.requests, 5, "2 + 1 + 2 stages");
        assert_eq!(results.len(), 3);
        // The pairwise query and the projected chain both reuse stage
        // tokens the first chain generated in this very batch.
        assert!(results[1].cache_hit);
        assert!(results[2].cache_hit);
        assert_eq!(results[2].tuples, results[0].tuples);
        assert_eq!(
            results[0].series_index + u64::try_from(results[0].stage_stats.len()).unwrap(),
            results[1].series_index
        );
    }
}
