//! The client↔server message protocol behind [`Session`], and the
//! [`ServerApi`] transport abstraction any backend implements.
//!
//! [`Session`]: crate::session::Session
//!
//! The session never touches a [`DbServer`](crate::server::DbServer)
//! directly; it speaks a small request/response protocol:
//!
//! ```text
//!   Session ── Request::InsertTable ──────▶ ServerApi
//!   Session ── Request::Batch[Execute…] ──▶ ServerApi
//!   Session ◀─ Response::Batch[Join…] ──── ServerApi
//! ```
//!
//! [`ServerApi`] is a real transport trait: `handle` takes `&self` and
//! implementations synchronize internally, so one backend instance can
//! serve many sessions, connections or shard workers concurrently. A
//! whole query series travels as one [`Request::Batch`] — over TCP
//! ([`RemoteBackend`](crate::backend::RemoteBackend)) that is a single
//! round trip for the entire series.
//!
//! Backends living in [`crate::backend`]:
//!
//! * [`LocalBackend`](crate::backend::LocalBackend) — in-process, a
//!   [`DbServer`](crate::server::DbServer) behind an `RwLock`.
//! * [`RemoteBackend`](crate::backend::RemoteBackend) — the same
//!   messages ([`Request::to_bytes`] / [`Response::from_bytes`] define
//!   the wire format) length-framed over a TCP socket to an `eqjoind`
//!   server.
//! * [`ShardedBackend`](crate::backend::ShardedBackend) — fans requests
//!   out across N inner backends by table placement.
//!
//! The wire codec is deliberately dependency-free: length-prefixed
//! fields, group elements via the engine's canonical (validated)
//! encodings.
//!
//! # Batch semantics
//!
//! `handle(Request::Batch(v))` answers with `Response::Batch(w)` where
//! `w.len() == v.len()` and `w[i]` answers `v[i]`; element failures
//! surface as `Response::Error` *inside* the batch, never as a
//! top-level error. Batches do not nest: a `Request::Batch` inside a
//! batch is rejected by the codec and answered with a protocol error by
//! every backend.

use crate::backend::TransportStats;
use crate::encrypted::{EncryptedRow, EncryptedTable, QueryTokens, SideTokens};
use crate::error::DbError;
use crate::join::JoinAlgorithm;
use crate::server::{
    EncryptedJoinResult, JoinObservation, JoinOptions, MatchedPair, PayloadProjection, ServerStats,
};
use eqjoin_core::{SjRowCiphertext, SjTableSide, SjToken};
use eqjoin_pairing::Engine;
use std::time::Duration;

/// A client→server message.
#[derive(Clone)]
pub enum Request<E: Engine> {
    /// Liveness / version probe.
    Ping,
    /// Upload one encrypted table.
    InsertTable(EncryptedTable<E>),
    /// Execute a join query for the given token bundle.
    ExecuteJoin {
        /// The two-sided token bundle.
        tokens: QueryTokens<E>,
        /// Execution options.
        options: JoinOptions,
        /// Which sealed payload columns each side should ship back
        /// (projection pushdown; the default asks for everything).
        projection: PayloadProjection,
    },
    /// Append encrypted rows to an existing table **without** resetting
    /// its stored state: untouched rows keep their decrypt-cache
    /// entries and prepared pairing state, so a warm series stays warm
    /// across the update. `start_row` is the client-assigned id of the
    /// first new row (ids bind the sealed payloads, so the client — who
    /// encrypted them — dictates the numbering).
    InsertRows {
        /// Target table (must exist).
        table: String,
        /// Row id of `rows[0]`; `rows[i]` gets `start_row + i`.
        start_row: u64,
        /// The new encrypted rows.
        rows: Vec<EncryptedRow<E>>,
    },
    /// Delete rows by id. Like [`Request::InsertRows`], only the
    /// touched rows' cached state is invalidated.
    DeleteRows {
        /// Target table (must exist).
        table: String,
        /// Row ids to delete (each must exist).
        rows: Vec<u64>,
    },
    /// One chunk of a COPY-style streaming bulk load. Unlike
    /// [`Request::InsertRows`] the chunk is self-describing: it carries
    /// the table's join-key and payload-column metadata, so the first
    /// chunk *creates* the table and every later chunk appends after
    /// validating that its metadata matches the stored table. A loader
    /// can therefore stream a table it has never announced, chunk by
    /// chunk, pipelined inside a [`Request::Batch`], and a replayed
    /// chunk is rejected by its `start_row` collision instead of
    /// double-applying.
    CopyRows {
        /// Target table (created on first chunk).
        table: String,
        /// Join column the rows were encrypted under.
        join_column: String,
        /// Sealed payload columns, in row order.
        filter_columns: Vec<String>,
        /// Row id of `rows[0]`; `rows[i]` gets `start_row + i`.
        start_row: u64,
        /// The encrypted rows of this chunk.
        rows: Vec<EncryptedRow<E>>,
    },
    /// A pipelined series of requests, answered by one
    /// [`Response::Batch`] of the same arity. Must not nest, and must
    /// not contain [`Request::WithTenant`] or [`Request::Drain`] — a
    /// tenant envelope wraps the whole batch, not its elements.
    Batch(Vec<Request<E>>),
    /// A tenant envelope: execute `inner` against the named tenant's
    /// isolated namespace (its own store, snapshot directory and
    /// server-side stats). `inner` may be a [`Request::Batch`] (a whole
    /// series for one tenant in one round trip) but not another
    /// envelope or a drain. Backends without tenant support answer with
    /// a protocol error rather than silently collapsing namespaces.
    WithTenant {
        /// The tenant name (`[A-Za-z0-9_-]{1,64}` — it becomes a
        /// snapshot subdirectory, so the codec rejects anything that
        /// could traverse paths).
        tenant: String,
        /// The wrapped request.
        inner: Box<Request<E>>,
    },
    /// Ask the server to drain: flush durable state and — on servers
    /// with a connection layer that supports it — stop accepting new
    /// connections, finish in-flight work, then exit. In-process
    /// backends flush and answer [`Response::Pong`].
    Drain,
    /// Ask the server for its observability snapshot: cumulative
    /// transport counters plus a full Prometheus-text metrics
    /// exposition ([`Response::Stats`]). Read-only, so unlike
    /// [`Request::Drain`] it may ride inside a batch or a tenant
    /// envelope (a tenant envelope scopes the transport counters to
    /// that tenant's namespace).
    Stats,
}

impl<E: Engine> Request<E> {
    /// Number of leaf requests this message carries (batch contents
    /// counted individually, tenant envelopes transparently).
    pub fn request_count(&self) -> u64 {
        match self {
            Request::Batch(reqs) => reqs.len() as u64,
            Request::WithTenant { inner, .. } => inner.request_count(),
            _ => 1,
        }
    }

    /// The tenant a [`Request::WithTenant`] envelope names, if any.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Request::WithTenant { tenant, .. } => Some(tenant),
            _ => None,
        }
    }
}

/// Is `name` a well-formed tenant name? Tenant names become snapshot
/// subdirectories, so only `[A-Za-z0-9_-]`, nonempty, at most 64 bytes
/// — no separators, no dots, no traversal.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// What a cheap peek at a request frame's envelope found — see
/// [`peek_envelope`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RequestEnvelope {
    /// The frame is a [`Request::Drain`].
    Drain,
    /// The frame is a [`Request::WithTenant`] naming this tenant.
    Tenant(String),
    /// Any other (or malformed) frame — tenantless.
    Plain,
}

/// Engine-independent peek at a request frame's envelope: the tag byte
/// and, for a tenant envelope, the name — WITHOUT decoding the body
/// (which validates group elements, the expensive part). Connection
/// layers use this for admission control and drain detection before
/// handing the frame to a worker; a malformed frame peeks as
/// [`RequestEnvelope::Plain`] and fails properly in the full decode.
pub fn peek_envelope(payload: &[u8]) -> RequestEnvelope {
    match payload.first() {
        Some(7) => RequestEnvelope::Drain,
        Some(6) => {
            // Tag, then the codec's string encoding: u64 LE length +
            // UTF-8 bytes.
            let Some(len_bytes) = payload.get(1..9).and_then(|s| <[u8; 8]>::try_from(s).ok())
            else {
                return RequestEnvelope::Plain;
            };
            let len = u64::from_le_bytes(len_bytes);
            if len > 64 {
                // Longer than any valid tenant name: don't even slice.
                return RequestEnvelope::Plain;
            }
            match payload.get(9..9 + len as usize) {
                Some(name_bytes) => match std::str::from_utf8(name_bytes) {
                    Ok(name) if valid_tenant_name(name) => RequestEnvelope::Tenant(name.to_owned()),
                    _ => RequestEnvelope::Plain,
                },
                None => RequestEnvelope::Plain,
            }
        }
        _ => RequestEnvelope::Plain,
    }
}

/// What a server reports for [`Request::Stats`]: the programmatic
/// counter snapshot plus the same Prometheus-text exposition the
/// `--metrics-addr` listener serves, so a client can introspect a live
/// server over the ordinary wire without a second endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// Cumulative transport counters, scoped to the answering backend
    /// (the whole server, or one tenant under a tenant envelope).
    pub transport: TransportStats,
    /// Prometheus text exposition of the server process's registry.
    pub exposition: String,
}

/// A server→client message.
///
/// No variant carries engine-typed data (matched pairs are returned as
/// sealed payload bytes), so the response side of the protocol is not
/// generic over the engine.
#[derive(Clone, Debug)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Table stored.
    TableInserted {
        /// Table name as stored.
        table: String,
        /// Number of encrypted rows stored.
        rows: usize,
    },
    /// Join executed: the encrypted result and the equality pattern the
    /// server (unavoidably) observed while matching.
    JoinExecuted {
        /// Matched pairs + execution statistics.
        result: EncryptedJoinResult,
        /// The server's leakage observation for this query.
        observation: JoinObservation,
    },
    /// Rows appended ([`Request::InsertRows`]).
    RowsInserted {
        /// Table name.
        table: String,
        /// Number of rows appended.
        rows: usize,
    },
    /// Rows deleted ([`Request::DeleteRows`]).
    RowsDeleted {
        /// Table name.
        table: String,
        /// Number of rows deleted.
        rows: usize,
    },
    /// One bulk-load chunk applied ([`Request::CopyRows`]).
    CopyRows {
        /// Table name.
        table: String,
        /// Rows appended by this chunk.
        rows: usize,
        /// Total rows the table holds after the chunk (lets a streaming
        /// loader confirm progress without a separate stats probe).
        total_rows: u64,
    },
    /// The request failed.
    Error(DbError),
    /// Answer to [`Request::Batch`], element `i` answering request `i`.
    Batch(Vec<Response>),
    /// Answer to [`Request::Stats`].
    Stats(ServerMetrics),
}

/// A join-database backend: anything that can answer the protocol.
///
/// This is a *transport* trait: `handle` takes `&self` and
/// implementations synchronize internally (`RwLock` around storage,
/// `Mutex` around a socket, …), so a single backend instance can be
/// shared — behind an `Arc` across server connection threads, or as a
/// shard inside [`ShardedBackend`](crate::backend::ShardedBackend)
/// fanning a batch out with scoped threads. The message-enum shape
/// (rather than one trait method per operation) is what lets a remote
/// or sharded backend forward requests byte-for-byte.
pub trait ServerApi<E: Engine>: Send + Sync {
    /// Handle one request (which may be a [`Request::Batch`]).
    /// Implementations must map internal failures to
    /// [`Response::Error`] rather than panicking, and must answer a
    /// batch with a same-arity [`Response::Batch`].
    fn handle(&self, request: Request<E>) -> Response;

    /// Cumulative transport-level counters for this backend. In-process
    /// backends report zero bytes; networked backends report real frame
    /// sizes. The default is all-zero for backends that do not count.
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

// ---------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------

/// Byte-writer half of the wire codec (shared with the snapshot codec
/// in [`crate::store`]).
pub(crate) struct Writer {
    pub(crate) out: Vec<u8>,
}

impl Writer {
    pub(crate) fn new(tag: u8) -> Self {
        Writer { out: vec![tag] }
    }

    /// An empty writer with no message tag (snapshot bodies).
    pub(crate) fn raw() -> Self {
        Writer { out: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.out.extend_from_slice(b);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Byte-reader half of the wire codec (shared with the snapshot codec
/// in [`crate::store`]).
pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn err<T>(what: &str) -> Result<T, DbError> {
        Err(DbError::Protocol(format!("truncated or invalid {what}")))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DbError> {
        let v = self.buf.get(self.pos).copied();
        self.pos += 1;
        v.map_or_else(|| Self::err("u8"), Ok)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DbError> {
        let end = self.pos + 8;
        let slice = self.buf.get(self.pos..end);
        self.pos = end;
        match slice.and_then(|s| <[u8; 8]>::try_from(s).ok()) {
            Some(a) => Ok(u64::from_le_bytes(a)),
            None => Self::err("u64"),
        }
    }

    pub(crate) fn len(&mut self, what: &str) -> Result<usize, DbError> {
        let n = self.u64()? as usize;
        // A length can never exceed the bytes remaining; reject early so
        // corrupt lengths cannot trigger huge allocations.
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(DbError::Protocol(format!("implausible length for {what}")));
        }
        Ok(n)
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8], DbError> {
        let n = self.len("byte string")?;
        let end = self.pos + n;
        let slice = self.buf.get(self.pos..end);
        self.pos = end;
        slice.map_or_else(|| Self::err("byte string"), Ok)
    }

    pub(crate) fn str(&mut self) -> Result<String, DbError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| DbError::Protocol("non-UTF-8 string".into()))
    }

    pub(crate) fn finish(self) -> Result<(), DbError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DbError::Protocol("trailing bytes after message".into()))
        }
    }
}

fn put_g1<E: Engine>(w: &mut Writer, p: &E::G1) {
    w.bytes(&E::g1_bytes(p));
}

fn get_g1<E: Engine>(r: &mut Reader<'_>) -> Result<E::G1, DbError> {
    E::g1_from_bytes(r.bytes()?)
        .ok_or_else(|| DbError::Protocol("invalid G1 element (curve/subgroup check)".into()))
}

fn put_g2<E: Engine>(w: &mut Writer, p: &E::G2) {
    w.bytes(&E::g2_bytes(p));
}

fn get_g2<E: Engine>(r: &mut Reader<'_>) -> Result<E::G2, DbError> {
    E::g2_from_bytes(r.bytes()?)
        .ok_or_else(|| DbError::Protocol("invalid G2 element (curve/subgroup check)".into()))
}

fn put_side_tokens<E: Engine>(w: &mut Writer, side: &SideTokens<E>) {
    w.str(&side.table);
    w.u8(match side.token.side() {
        SjTableSide::A => 0,
        SjTableSide::B => 1,
    });
    w.u64(side.token.elements().len() as u64);
    for e in side.token.elements() {
        put_g1::<E>(w, e);
    }
    w.u64(side.prefilter.len() as u64);
    for (col, tags) in &side.prefilter {
        w.u64(*col as u64);
        w.u64(tags.len() as u64);
        for tag in tags {
            w.out.extend_from_slice(tag);
        }
    }
}

fn get_side_tokens<E: Engine>(r: &mut Reader<'_>) -> Result<SideTokens<E>, DbError> {
    let table = r.str()?;
    let side = match r.u8()? {
        0 => SjTableSide::A,
        1 => SjTableSide::B,
        other => return Err(DbError::Protocol(format!("unknown table side {other}"))),
    };
    let n = r.len("token elements")?;
    let elements = (0..n).map(|_| get_g1::<E>(r)).collect::<Result<_, _>>()?;
    let n_filters = r.len("prefilter sets")?;
    let mut prefilter = Vec::with_capacity(n_filters);
    for _ in 0..n_filters {
        let col = r.u64()? as usize;
        let n_tags = r.len("prefilter tags")?;
        let mut tags = Vec::with_capacity(n_tags);
        for _ in 0..n_tags {
            let mut tag = [0u8; 16];
            let end = r.pos + 16;
            let slice = r
                .buf
                .get(r.pos..end)
                .ok_or_else(|| DbError::Protocol("truncated tag".into()))?;
            tag.copy_from_slice(slice);
            r.pos = end;
            tags.push(tag);
        }
        prefilter.push((col, tags));
    }
    Ok(SideTokens {
        table,
        token: SjToken::from_elements(side, elements),
        prefilter,
    })
}

fn put_query_tokens<E: Engine>(w: &mut Writer, tokens: &QueryTokens<E>) {
    w.u64(tokens.query_id);
    put_side_tokens(w, &tokens.left);
    put_side_tokens(w, &tokens.right);
}

fn get_query_tokens<E: Engine>(r: &mut Reader<'_>) -> Result<QueryTokens<E>, DbError> {
    Ok(QueryTokens {
        query_id: r.u64()?,
        left: get_side_tokens(r)?,
        right: get_side_tokens(r)?,
    })
}

fn put_options(w: &mut Writer, options: &JoinOptions) {
    w.u8(match options.algorithm {
        JoinAlgorithm::Hash => 0,
        JoinAlgorithm::NestedLoop => 1,
    });
    w.u8(options.use_prefilter as u8);
    w.u64(options.threads as u64);
    w.u8(options.decrypt_cache as u8);
    w.u64(options.decrypt_cache_cap as u64);
}

fn get_options(r: &mut Reader<'_>) -> Result<JoinOptions, DbError> {
    let algorithm = match r.u8()? {
        0 => JoinAlgorithm::Hash,
        1 => JoinAlgorithm::NestedLoop,
        other => return Err(DbError::Protocol(format!("unknown join algorithm {other}"))),
    };
    let use_prefilter = r.u8()? != 0;
    let threads = r.u64()? as usize;
    let decrypt_cache = r.u8()? != 0;
    let decrypt_cache_cap = r.u64()? as usize;
    Ok(JoinOptions {
        algorithm,
        use_prefilter,
        threads,
        decrypt_cache,
        decrypt_cache_cap,
    })
}

fn put_column_list(w: &mut Writer, cols: &Option<Vec<usize>>) {
    match cols {
        None => w.u8(0),
        Some(cols) => {
            w.u8(1);
            w.u64(cols.len() as u64);
            for &c in cols {
                w.u64(c as u64);
            }
        }
    }
}

fn get_column_list(r: &mut Reader<'_>) -> Result<Option<Vec<usize>>, DbError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let n = r.len("projection columns")?;
            (0..n)
                .map(|_| Ok(r.u64()? as usize))
                .collect::<Result<Vec<_>, _>>()
                .map(Some)
        }
        other => Err(DbError::Protocol(format!("bad projection marker {other}"))),
    }
}

fn put_projection(w: &mut Writer, projection: &PayloadProjection) {
    put_column_list(w, &projection.left);
    put_column_list(w, &projection.right);
}

fn get_projection(r: &mut Reader<'_>) -> Result<PayloadProjection, DbError> {
    Ok(PayloadProjection {
        left: get_column_list(r)?,
        right: get_column_list(r)?,
    })
}

fn put_payloads(w: &mut Writer, payloads: &[Vec<u8>]) {
    w.u64(payloads.len() as u64);
    for p in payloads {
        w.bytes(p);
    }
}

fn get_payloads(r: &mut Reader<'_>) -> Result<Vec<Vec<u8>>, DbError> {
    let n = r.len("column payloads")?;
    (0..n).map(|_| Ok(r.bytes()?.to_vec())).collect()
}

pub(crate) fn put_row<E: Engine>(w: &mut Writer, row: &EncryptedRow<E>) {
    w.u64(row.cipher.elements().len() as u64);
    for e in row.cipher.elements() {
        put_g2::<E>(w, e);
    }
    put_payloads(w, &row.payloads);
    match &row.tags {
        None => w.u8(0),
        Some(tags) => {
            w.u8(1);
            w.u64(tags.len() as u64);
            for tag in tags {
                w.out.extend_from_slice(tag);
            }
        }
    }
}

pub(crate) fn get_row<E: Engine>(r: &mut Reader<'_>) -> Result<EncryptedRow<E>, DbError> {
    let n_elems = r.len("ciphertext elements")?;
    let elements = (0..n_elems)
        .map(|_| get_g2::<E>(r))
        .collect::<Result<_, _>>()?;
    let payloads = get_payloads(r)?;
    let tags = match r.u8()? {
        0 => None,
        1 => {
            let n_tags = r.len("row tags")?;
            let mut tags = Vec::with_capacity(n_tags);
            for _ in 0..n_tags {
                let end = r.pos + 16;
                let slice = r
                    .buf
                    .get(r.pos..end)
                    .ok_or_else(|| DbError::Protocol("truncated tag".into()))?;
                let mut tag = [0u8; 16];
                tag.copy_from_slice(slice);
                r.pos = end;
                tags.push(tag);
            }
            Some(tags)
        }
        other => return Err(DbError::Protocol(format!("bad tags marker {other}"))),
    };
    Ok(EncryptedRow {
        cipher: SjRowCiphertext::from_elements(elements),
        payloads,
        tags,
    })
}

fn put_table<E: Engine>(w: &mut Writer, table: &EncryptedTable<E>) {
    w.str(&table.name);
    w.str(&table.join_column);
    w.u64(table.filter_columns.len() as u64);
    for c in &table.filter_columns {
        w.str(c);
    }
    w.u64(table.rows.len() as u64);
    for row in &table.rows {
        put_row(w, row);
    }
}

fn get_table<E: Engine>(r: &mut Reader<'_>) -> Result<EncryptedTable<E>, DbError> {
    let name = r.str()?;
    let join_column = r.str()?;
    let n_cols = r.len("filter columns")?;
    let filter_columns = (0..n_cols).map(|_| r.str()).collect::<Result<_, _>>()?;
    let n_rows = r.len("rows")?;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        rows.push(get_row(r)?);
    }
    Ok(EncryptedTable {
        name,
        join_column,
        filter_columns,
        rows,
    })
}

fn put_error(w: &mut Writer, e: &DbError) {
    // Compact structured encoding so a remote backend's errors survive
    // the wire without collapsing into strings.
    match e {
        DbError::UnknownTable(t) => {
            w.u8(0);
            w.str(t);
        }
        DbError::UnknownColumn { table, column } => {
            w.u8(1);
            w.str(table);
            w.str(column);
        }
        DbError::JoinColumnMismatch {
            table,
            requested,
            encrypted,
        } => {
            w.u8(2);
            w.str(table);
            w.str(requested);
            w.str(encrypted);
        }
        DbError::NotAFilterColumn { table, column } => {
            w.u8(3);
            w.str(table);
            w.str(column);
        }
        DbError::InClauseTooLarge { got, max } => {
            w.u8(4);
            w.u64(*got as u64);
            w.u64(*max as u64);
        }
        DbError::EmptyInClause => w.u8(5),
        DbError::PayloadCorrupted => w.u8(6),
        DbError::TooManyFilterColumns { table, got, max } => {
            w.u8(7);
            w.str(table);
            w.u64(*got as u64);
            w.u64(*max as u64);
        }
        DbError::Protocol(msg) => {
            w.u8(8);
            w.str(msg);
        }
        DbError::Sql(msg) => {
            w.u8(9);
            w.str(msg);
        }
        DbError::NoSqlPlanner => w.u8(10),
        DbError::Transport(msg) => {
            w.u8(11);
            w.str(msg);
        }
        DbError::FilterTableNotInQuery { table, column } => {
            w.u8(12);
            w.str(table);
            w.str(column);
        }
        DbError::DuplicateProjectionColumn { table, column } => {
            w.u8(13);
            w.str(table);
            w.str(column);
        }
        DbError::InvalidPlan(msg) => {
            w.u8(14);
            w.str(msg);
        }
        DbError::UnknownRow { table, row } => {
            w.u8(15);
            w.str(table);
            w.u64(*row);
        }
        DbError::Snapshot(msg) => {
            w.u8(16);
            w.str(msg);
        }
        DbError::Overloaded {
            tenant,
            in_flight,
            cap,
        } => {
            w.u8(17);
            match tenant {
                None => w.u8(0),
                Some(t) => {
                    w.u8(1);
                    w.str(t);
                }
            }
            w.u64(*in_flight as u64);
            w.u64(*cap as u64);
        }
        DbError::Timeout(msg) => {
            w.u8(18);
            w.str(msg);
        }
        DbError::DimensionMismatch {
            what,
            expected,
            got,
        } => {
            w.u8(19);
            w.str(what);
            w.u64(*expected as u64);
            w.u64(*got as u64);
        }
    }
}

fn get_error(r: &mut Reader<'_>) -> Result<DbError, DbError> {
    Ok(match r.u8()? {
        0 => DbError::UnknownTable(r.str()?),
        1 => DbError::UnknownColumn {
            table: r.str()?,
            column: r.str()?,
        },
        2 => DbError::JoinColumnMismatch {
            table: r.str()?,
            requested: r.str()?,
            encrypted: r.str()?,
        },
        3 => DbError::NotAFilterColumn {
            table: r.str()?,
            column: r.str()?,
        },
        4 => DbError::InClauseTooLarge {
            got: r.u64()? as usize,
            max: r.u64()? as usize,
        },
        5 => DbError::EmptyInClause,
        6 => DbError::PayloadCorrupted,
        7 => DbError::TooManyFilterColumns {
            table: r.str()?,
            got: r.u64()? as usize,
            max: r.u64()? as usize,
        },
        8 => DbError::Protocol(r.str()?),
        9 => DbError::Sql(r.str()?),
        10 => DbError::NoSqlPlanner,
        11 => DbError::Transport(r.str()?),
        12 => DbError::FilterTableNotInQuery {
            table: r.str()?,
            column: r.str()?,
        },
        13 => DbError::DuplicateProjectionColumn {
            table: r.str()?,
            column: r.str()?,
        },
        14 => DbError::InvalidPlan(r.str()?),
        15 => DbError::UnknownRow {
            table: r.str()?,
            row: r.u64()?,
        },
        16 => DbError::Snapshot(r.str()?),
        17 => DbError::Overloaded {
            tenant: match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => {
                    return Err(DbError::Protocol(format!("bad tenant marker {other}")));
                }
            },
            in_flight: r.u64()? as usize,
            cap: r.u64()? as usize,
        },
        18 => DbError::Timeout(r.str()?),
        19 => DbError::DimensionMismatch {
            what: r.str()?,
            expected: r.u64()? as usize,
            got: r.u64()? as usize,
        },
        other => return Err(DbError::Protocol(format!("unknown error tag {other}"))),
    })
}

impl<E: Engine> Request<E> {
    /// Serialize for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Request::Ping => Writer::new(0).out,
            Request::InsertTable(table) => {
                let mut w = Writer::new(1);
                put_table(&mut w, table);
                w.out
            }
            Request::ExecuteJoin {
                tokens,
                options,
                projection,
            } => {
                let mut w = Writer::new(2);
                put_query_tokens(&mut w, tokens);
                put_options(&mut w, options);
                put_projection(&mut w, projection);
                w.out
            }
            Request::Batch(requests) => {
                let mut w = Writer::new(3);
                w.u64(requests.len() as u64);
                for request in requests {
                    debug_assert!(
                        !matches!(request, Request::Batch(_)),
                        "batches must not nest"
                    );
                    w.bytes(&request.to_bytes());
                }
                w.out
            }
            Request::InsertRows {
                table,
                start_row,
                rows,
            } => {
                let mut w = Writer::new(4);
                w.str(table);
                w.u64(*start_row);
                w.u64(rows.len() as u64);
                for row in rows {
                    put_row(&mut w, row);
                }
                w.out
            }
            Request::DeleteRows { table, rows } => {
                let mut w = Writer::new(5);
                w.str(table);
                w.u64(rows.len() as u64);
                for row in rows {
                    w.u64(*row);
                }
                w.out
            }
            Request::WithTenant { tenant, inner } => {
                debug_assert!(
                    !matches!(**inner, Request::WithTenant { .. } | Request::Drain),
                    "tenant envelopes must not nest or wrap a drain"
                );
                let mut w = Writer::new(6);
                w.str(tenant);
                w.bytes(&inner.to_bytes());
                w.out
            }
            Request::Drain => Writer::new(7).out,
            Request::Stats => Writer::new(8).out,
            Request::CopyRows {
                table,
                join_column,
                filter_columns,
                start_row,
                rows,
            } => {
                let mut w = Writer::new(9);
                w.str(table);
                w.str(join_column);
                w.u64(filter_columns.len() as u64);
                for c in filter_columns {
                    w.str(c);
                }
                w.u64(*start_row);
                w.u64(rows.len() as u64);
                for row in rows {
                    put_row(&mut w, row);
                }
                w.out
            }
        }
    }

    /// Parse a wire message (rejects trailing bytes, invalid group
    /// elements, and nested batches).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DbError> {
        let mut r = Reader::new(bytes);
        let req = match r.u8()? {
            0 => Request::Ping,
            1 => Request::InsertTable(get_table(&mut r)?),
            2 => Request::ExecuteJoin {
                tokens: get_query_tokens(&mut r)?,
                options: get_options(&mut r)?,
                projection: get_projection(&mut r)?,
            },
            3 => {
                let n = r.len("batch requests")?;
                let mut requests = Vec::with_capacity(n);
                for _ in 0..n {
                    let sub = Request::from_bytes(r.bytes()?)?;
                    match sub {
                        Request::Batch(_) => {
                            return Err(DbError::Protocol("nested request batch".into()))
                        }
                        Request::WithTenant { .. } => {
                            return Err(DbError::Protocol(
                                "tenant envelope inside a batch (wrap the whole batch instead)"
                                    .into(),
                            ))
                        }
                        Request::Drain => {
                            return Err(DbError::Protocol("drain inside a batch".into()))
                        }
                        _ => {}
                    }
                    requests.push(sub);
                }
                Request::Batch(requests)
            }
            4 => {
                let table = r.str()?;
                let start_row = r.u64()?;
                let n_rows = r.len("inserted rows")?;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    rows.push(get_row(&mut r)?);
                }
                Request::InsertRows {
                    table,
                    start_row,
                    rows,
                }
            }
            5 => {
                let table = r.str()?;
                let n_rows = r.len("deleted row ids")?;
                let rows = (0..n_rows).map(|_| r.u64()).collect::<Result<_, _>>()?;
                Request::DeleteRows { table, rows }
            }
            6 => {
                let tenant = r.str()?;
                if !valid_tenant_name(&tenant) {
                    return Err(DbError::Protocol(format!(
                        "invalid tenant name {tenant:?} (want [A-Za-z0-9_-]{{1,64}})"
                    )));
                }
                let inner = Request::from_bytes(r.bytes()?)?;
                if matches!(inner, Request::WithTenant { .. } | Request::Drain) {
                    return Err(DbError::Protocol(
                        "tenant envelope wrapping another envelope or a drain".into(),
                    ));
                }
                Request::WithTenant {
                    tenant,
                    inner: Box::new(inner),
                }
            }
            7 => Request::Drain,
            8 => Request::Stats,
            9 => {
                let table = r.str()?;
                let join_column = r.str()?;
                let n_cols = r.len("copy filter columns")?;
                let filter_columns = (0..n_cols).map(|_| r.str()).collect::<Result<_, _>>()?;
                let start_row = r.u64()?;
                let n_rows = r.len("copied rows")?;
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    rows.push(get_row(&mut r)?);
                }
                Request::CopyRows {
                    table,
                    join_column,
                    filter_columns,
                    start_row,
                    rows,
                }
            }
            other => return Err(DbError::Protocol(format!("unknown request tag {other}"))),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialize for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Response::Pong => Writer::new(0).out,
            Response::TableInserted { table, rows } => {
                let mut w = Writer::new(1);
                w.str(table);
                w.u64(*rows as u64);
                w.out
            }
            Response::JoinExecuted {
                result,
                observation,
            } => {
                let mut w = Writer::new(2);
                w.u64(result.pairs.len() as u64);
                for p in &result.pairs {
                    w.u64(p.left_row as u64);
                    w.u64(p.right_row as u64);
                    put_payloads(&mut w, &p.left_payloads);
                    put_payloads(&mut w, &p.right_payloads);
                }
                let s = &result.stats;
                w.u64(s.rows_decrypted as u64);
                w.u64(s.rows_prefiltered_out as u64);
                w.u64(s.comparisons);
                w.u64(s.matched_pairs as u64);
                w.u64(s.decrypt_time.as_nanos() as u64);
                w.u64(s.match_time.as_nanos() as u64);
                w.u64(s.decrypt_cache_hits);
                w.u64(observation.query_id);
                w.u64(observation.equality_classes.len() as u64);
                for class in &observation.equality_classes {
                    w.u64(class.len() as u64);
                    for (table, row) in class {
                        w.str(table);
                        w.u64(*row as u64);
                    }
                }
                w.out
            }
            Response::Error(e) => {
                let mut w = Writer::new(3);
                put_error(&mut w, e);
                w.out
            }
            Response::Batch(responses) => {
                let mut w = Writer::new(4);
                w.u64(responses.len() as u64);
                for response in responses {
                    debug_assert!(
                        !matches!(response, Response::Batch(_)),
                        "batches must not nest"
                    );
                    w.bytes(&response.to_bytes());
                }
                w.out
            }
            Response::RowsInserted { table, rows } => {
                let mut w = Writer::new(5);
                w.str(table);
                w.u64(*rows as u64);
                w.out
            }
            Response::RowsDeleted { table, rows } => {
                let mut w = Writer::new(6);
                w.str(table);
                w.u64(*rows as u64);
                w.out
            }
            Response::CopyRows {
                table,
                rows,
                total_rows,
            } => {
                let mut w = Writer::new(8);
                w.str(table);
                w.u64(*rows as u64);
                w.u64(*total_rows);
                w.out
            }
            Response::Stats(metrics) => {
                let mut w = Writer::new(7);
                let t = &metrics.transport;
                w.u64(t.round_trips);
                w.u64(t.requests);
                w.u64(t.batches);
                w.u64(t.bytes_sent);
                w.u64(t.bytes_received);
                w.u64(t.reconnects);
                w.u64(t.retries);
                w.u64(t.gave_up);
                w.str(&metrics.exposition);
                w.out
            }
        }
    }

    /// Parse a wire message (rejects trailing bytes and nested batches).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DbError> {
        let mut r = Reader::new(bytes);
        let resp = match r.u8()? {
            0 => Response::Pong,
            1 => Response::TableInserted {
                table: r.str()?,
                rows: r.u64()? as usize,
            },
            2 => {
                let n_pairs = r.len("matched pairs")?;
                let mut pairs = Vec::with_capacity(n_pairs);
                for _ in 0..n_pairs {
                    pairs.push(MatchedPair {
                        left_row: r.u64()? as usize,
                        right_row: r.u64()? as usize,
                        left_payloads: get_payloads(&mut r)?,
                        right_payloads: get_payloads(&mut r)?,
                    });
                }
                let stats = ServerStats {
                    rows_decrypted: r.u64()? as usize,
                    rows_prefiltered_out: r.u64()? as usize,
                    comparisons: r.u64()?,
                    matched_pairs: r.u64()? as usize,
                    decrypt_time: Duration::from_nanos(r.u64()?),
                    match_time: Duration::from_nanos(r.u64()?),
                    decrypt_cache_hits: r.u64()?,
                };
                let query_id = r.u64()?;
                let n_classes = r.len("equality classes")?;
                let mut equality_classes = Vec::with_capacity(n_classes);
                for _ in 0..n_classes {
                    let n_members = r.len("class members")?;
                    let mut class = Vec::with_capacity(n_members);
                    for _ in 0..n_members {
                        let table = r.str()?;
                        class.push((table, r.u64()? as usize));
                    }
                    equality_classes.push(class);
                }
                Response::JoinExecuted {
                    result: EncryptedJoinResult { pairs, stats },
                    observation: JoinObservation {
                        query_id,
                        equality_classes,
                    },
                }
            }
            3 => Response::Error(get_error(&mut r)?),
            4 => {
                let n = r.len("batch responses")?;
                let mut responses = Vec::with_capacity(n);
                for _ in 0..n {
                    let sub = Response::from_bytes(r.bytes()?)?;
                    if matches!(sub, Response::Batch(_)) {
                        return Err(DbError::Protocol("nested response batch".into()));
                    }
                    responses.push(sub);
                }
                Response::Batch(responses)
            }
            5 => Response::RowsInserted {
                table: r.str()?,
                rows: r.u64()? as usize,
            },
            6 => Response::RowsDeleted {
                table: r.str()?,
                rows: r.u64()? as usize,
            },
            7 => Response::Stats(ServerMetrics {
                transport: TransportStats {
                    round_trips: r.u64()?,
                    requests: r.u64()?,
                    batches: r.u64()?,
                    bytes_sent: r.u64()?,
                    bytes_received: r.u64()?,
                    reconnects: r.u64()?,
                    retries: r.u64()?,
                    gave_up: r.u64()?,
                },
                exposition: r.str()?,
            }),
            8 => Response::CopyRows {
                table: r.str()?,
                rows: r.u64()? as usize,
                total_rows: r.u64()?,
            },
            other => return Err(DbError::Protocol(format!("unknown response tag {other}"))),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;
    use crate::client::DbClient;
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use crate::TableConfig;
    use eqjoin_pairing::MockEngine;

    fn sample() -> (DbClient<MockEngine>, EncryptedTable<MockEngine>, JoinQuery) {
        let mut client = DbClient::<MockEngine>::new(1, 2, 11);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        t.push_row(vec![Value::Int(1), "x".into()]);
        t.push_row(vec![Value::Int(2), "y".into()]);
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let q = JoinQuery::on("T", "k", "T", "k").filter("T", "a", vec!["x".into()]);
        (client, enc, q)
    }

    #[test]
    fn local_backend_round_trip() {
        let (mut client, enc, q) = sample();
        let backend = LocalBackend::<MockEngine>::new();
        assert!(matches!(backend.handle(Request::Ping), Response::Pong));
        match backend.handle(Request::InsertTable(enc)) {
            Response::TableInserted { table, rows } => {
                assert_eq!(table, "T");
                assert_eq!(rows, 2);
            }
            _ => panic!("expected TableInserted"),
        }
        let tokens = client.query_tokens(&q).unwrap();
        match backend.handle(Request::ExecuteJoin {
            tokens,
            options: JoinOptions::default(),
            projection: Default::default(),
        }) {
            Response::JoinExecuted { result, .. } => assert_eq!(result.pairs.len(), 1),
            _ => panic!("expected JoinExecuted"),
        }
    }

    #[test]
    fn backend_errors_are_responses_not_panics() {
        let (mut client, _enc, q) = sample();
        let backend = LocalBackend::<MockEngine>::new();
        let tokens = client.query_tokens(&q).unwrap();
        match backend.handle(Request::ExecuteJoin {
            tokens,
            options: JoinOptions::default(),
            projection: Default::default(),
        }) {
            Response::Error(DbError::UnknownTable(t)) => assert_eq!(t, "T"),
            _ => panic!("expected UnknownTable error response"),
        }
    }

    #[test]
    fn batched_series_matches_one_at_a_time() {
        let (mut client, enc, q) = sample();
        let tokens_a = client.query_tokens(&q).unwrap();
        let tokens_b = client.query_tokens(&q).unwrap();

        let sequential = LocalBackend::<MockEngine>::new();
        sequential.handle(Request::InsertTable(enc.clone()));
        let seq_pairs =
            |tokens: QueryTokens<MockEngine>| match sequential.handle(Request::ExecuteJoin {
                tokens,
                options: JoinOptions::default(),
                projection: Default::default(),
            }) {
                Response::JoinExecuted { result, .. } => result
                    .pairs
                    .iter()
                    .map(|p| (p.left_row, p.right_row))
                    .collect::<Vec<_>>(),
                _ => panic!("expected JoinExecuted"),
            };
        let expected = (seq_pairs(tokens_a.clone()), seq_pairs(tokens_b.clone()));

        let batched = LocalBackend::<MockEngine>::new();
        let response = batched.handle(Request::Batch(vec![
            Request::Ping,
            Request::InsertTable(enc),
            Request::ExecuteJoin {
                tokens: tokens_a,
                options: JoinOptions::default(),
                projection: Default::default(),
            },
            Request::ExecuteJoin {
                tokens: tokens_b,
                options: JoinOptions::default(),
                projection: Default::default(),
            },
        ]));
        let Response::Batch(responses) = response else {
            panic!("batch must be answered by a batch");
        };
        assert_eq!(responses.len(), 4);
        assert!(matches!(responses[0], Response::Pong));
        assert!(matches!(responses[1], Response::TableInserted { .. }));
        let got: Vec<Vec<(usize, usize)>> = responses[2..]
            .iter()
            .map(|r| match r {
                Response::JoinExecuted { result, .. } => result
                    .pairs
                    .iter()
                    .map(|p| (p.left_row, p.right_row))
                    .collect(),
                _ => panic!("expected JoinExecuted"),
            })
            .collect();
        assert_eq!((got[0].clone(), got[1].clone()), expected);
    }

    #[test]
    fn batch_wire_round_trip_and_nesting_rejected() {
        let (mut client, enc, q) = sample();
        let tokens = client.query_tokens(&q).unwrap();
        let batch = Request::Batch(vec![
            Request::Ping,
            Request::InsertTable(enc),
            Request::ExecuteJoin {
                tokens,
                options: JoinOptions::default(),
                projection: Default::default(),
            },
        ]);
        let bytes = batch.to_bytes();
        let back = Request::<MockEngine>::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes, "byte-identical round trip");

        let resp = Response::Batch(vec![
            Response::Pong,
            Response::Error(DbError::EmptyInClause),
            Response::TableInserted {
                table: "T".into(),
                rows: 2,
            },
        ]);
        let resp_bytes = resp.to_bytes();
        let resp_back = Response::from_bytes(&resp_bytes).unwrap();
        assert_eq!(resp_back.to_bytes(), resp_bytes);

        // Hand-craft a nested batch (tag 3 wrapping a batch message):
        // the codec must reject it rather than recurse.
        let mut w = Writer::new(3);
        w.u64(1);
        w.bytes(&Request::<MockEngine>::Batch(vec![Request::Ping]).to_bytes());
        assert!(matches!(
            Request::<MockEngine>::from_bytes(&w.out),
            Err(DbError::Protocol(_))
        ));
        let mut w = Writer::new(4);
        w.u64(1);
        w.bytes(&Response::Batch(vec![Response::Pong]).to_bytes());
        assert!(matches!(
            Response::from_bytes(&w.out),
            Err(DbError::Protocol(_))
        ));
    }

    #[test]
    fn request_wire_round_trip_preserves_execution() {
        let (mut client, enc, q) = sample();
        let tokens = client.query_tokens(&q).unwrap();

        // Serialize both requests, parse them back, execute, and compare
        // with the direct execution path.
        let insert = Request::InsertTable(enc);
        let exec = Request::ExecuteJoin {
            tokens,
            options: JoinOptions {
                algorithm: JoinAlgorithm::NestedLoop,
                use_prefilter: false,
                threads: 3,
                decrypt_cache: true,
                decrypt_cache_cap: 16,
            },
            projection: Default::default(),
        };
        let insert2 = Request::<MockEngine>::from_bytes(&insert.to_bytes()).unwrap();
        let exec2 = Request::<MockEngine>::from_bytes(&exec.to_bytes()).unwrap();
        match (&exec, &exec2) {
            (Request::ExecuteJoin { options: a, .. }, Request::ExecuteJoin { options: b, .. }) => {
                assert_eq!(a.algorithm, b.algorithm);
                assert_eq!(a.use_prefilter, b.use_prefilter);
                assert_eq!(a.threads, b.threads);
            }
            _ => panic!("round trip changed the message kind"),
        }

        let direct = LocalBackend::<MockEngine>::new();
        let wired = LocalBackend::<MockEngine>::new();
        match (direct.handle(insert), wired.handle(insert2)) {
            (
                Response::TableInserted { table: a, rows: ra },
                Response::TableInserted { table: b, rows: rb },
            ) => {
                assert_eq!(a, b);
                assert_eq!(ra, rb);
            }
            _ => panic!("insert failed"),
        }
        let (r1, r2) = (direct.handle(exec), wired.handle(exec2));
        match (r1, r2) {
            (
                Response::JoinExecuted { result: a, .. },
                Response::JoinExecuted { result: b, .. },
            ) => {
                let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
                    r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
                };
                assert_eq!(key(&a), key(&b));
            }
            _ => panic!("join failed"),
        }
    }

    #[test]
    fn corrupt_messages_rejected() {
        assert!(Request::<MockEngine>::from_bytes(&[]).is_err());
        assert!(Request::<MockEngine>::from_bytes(&[9]).is_err());
        let mut ping = Request::<MockEngine>::Ping.to_bytes();
        ping.push(0); // trailing byte
        assert!(Request::<MockEngine>::from_bytes(&ping).is_err());
        // A length field pointing past the end of the buffer must error,
        // not allocate.
        let bad = [1u8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            Request::<MockEngine>::from_bytes(&bad),
            Err(DbError::Protocol(_))
        ));
    }

    #[test]
    fn update_and_envelope_requests_round_trip() {
        let del = Request::<MockEngine>::DeleteRows {
            table: "orders".into(),
            rows: vec![1, 5, 9],
        };
        match Request::<MockEngine>::from_bytes(&del.to_bytes()).unwrap() {
            Request::DeleteRows { table, rows } => {
                assert_eq!(table, "orders");
                assert_eq!(rows, vec![1, 5, 9]);
            }
            _ => panic!("round trip changed the message kind"),
        }

        let wrapped = Request::<MockEngine>::WithTenant {
            tenant: "acme".into(),
            inner: Box::new(Request::Ping),
        };
        match Request::<MockEngine>::from_bytes(&wrapped.to_bytes()).unwrap() {
            Request::WithTenant { tenant, inner } => {
                assert_eq!(tenant, "acme");
                assert!(matches!(*inner, Request::Ping));
            }
            _ => panic!("round trip changed the message kind"),
        }

        let drain = Request::<MockEngine>::Drain;
        assert!(matches!(
            Request::<MockEngine>::from_bytes(&drain.to_bytes()).unwrap(),
            Request::Drain
        ));
    }

    #[test]
    fn error_responses_round_trip_structurally() {
        let errors = vec![
            DbError::UnknownTable("X".into()),
            DbError::UnknownColumn {
                table: "T".into(),
                column: "c".into(),
            },
            DbError::JoinColumnMismatch {
                table: "T".into(),
                requested: "a".into(),
                encrypted: "b".into(),
            },
            DbError::NotAFilterColumn {
                table: "T".into(),
                column: "c".into(),
            },
            DbError::InClauseTooLarge { got: 9, max: 3 },
            DbError::EmptyInClause,
            DbError::PayloadCorrupted,
            DbError::TooManyFilterColumns {
                table: "T".into(),
                got: 4,
                max: 2,
            },
            DbError::Protocol("p".into()),
            DbError::Sql("s".into()),
            DbError::NoSqlPlanner,
            DbError::Transport("connection reset".into()),
            DbError::Snapshot("checksum mismatch".into()),
            DbError::FilterTableNotInQuery {
                table: "T".into(),
                column: "c".into(),
            },
            DbError::DuplicateProjectionColumn {
                table: "T".into(),
                column: "c".into(),
            },
            DbError::InvalidPlan("projection below join".into()),
            DbError::Overloaded {
                tenant: Some("acme".into()),
                in_flight: 8,
                cap: 8,
            },
            DbError::Overloaded {
                tenant: None,
                in_flight: 64,
                cap: 64,
            },
            DbError::Timeout("read deadline of 250ms elapsed".into()),
            DbError::DimensionMismatch {
                what: "row attributes".into(),
                expected: 2,
                got: 5,
            },
        ];
        for e in errors {
            let resp = Response::Error(e.clone());
            match Response::from_bytes(&resp.to_bytes()).unwrap() {
                Response::Error(back) => assert_eq!(back, e),
                _ => panic!("changed kind"),
            }
        }
    }
}
