//! Server-side encrypted artifacts: tables, rows and query tokens.

use eqjoin_core::{SjRowCiphertext, SjToken};
use eqjoin_pairing::Engine;

/// One encrypted row as stored by the server.
#[derive(Clone, Debug)]
pub struct EncryptedRow<E: Engine> {
    /// The Secure Join ciphertext vector `C_r = g2^{w_r·B*}`.
    pub cipher: SjRowCiphertext<E>,
    /// AEAD-sealed row payload, one blob **per column** (associated
    /// data binds table, row index and column index). Sealing columns
    /// individually is what makes projections real: the client opens
    /// only the selected columns and the server ships only those blobs.
    pub payloads: Vec<Vec<u8>>,
    /// Optional pre-filter tags, one per filter column
    /// (`PRF(k_col, value)`, 16 bytes). Present only if the client
    /// enabled the selectivity pre-filter for this table.
    pub tags: Option<Vec<[u8; 16]>>,
}

/// An encrypted table.
#[derive(Clone, Debug)]
pub struct EncryptedTable<E: Engine> {
    /// Table name.
    pub name: String,
    /// Join column fixed at encryption time (plaintext metadata).
    pub join_column: String,
    /// Filter columns in encryption order (plaintext metadata).
    pub filter_columns: Vec<String>,
    /// The encrypted rows.
    pub rows: Vec<EncryptedRow<E>>,
}

impl<E: Engine> EncryptedTable<E> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate ciphertext size in bytes (for storage-overhead
    /// reporting).
    pub fn ciphertext_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| {
                r.cipher
                    .elements()
                    .iter()
                    .map(|e| E::g2_bytes(e).len())
                    .sum::<usize>()
                    + r.payloads.iter().map(Vec::len).sum::<usize>()
                    + r.tags.as_ref().map_or(0, |t| t.len() * 16)
            })
            .sum()
    }
}

/// The token bundle for one side of a join query.
#[derive(Clone, Debug)]
pub struct SideTokens<E: Engine> {
    /// Target table name.
    pub table: String,
    /// The Secure Join token `Tk = g1^{v·B}`.
    pub token: SjToken<E>,
    /// Pre-filter tag sets: `(filter column index, allowed tags)` for
    /// each constrained column. Empty when the pre-filter is unused.
    pub prefilter: Vec<(usize, Vec<[u8; 16]>)>,
}

/// Everything the server needs to execute one join query.
#[derive(Clone, Debug)]
pub struct QueryTokens<E: Engine> {
    /// Monotonic query identifier (leakage bookkeeping).
    pub query_id: u64,
    /// Tokens for the left table.
    pub left: SideTokens<E>,
    /// Tokens for the right table.
    pub right: SideTokens<E>,
}
