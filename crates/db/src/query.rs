//! Logical equi-join queries — the shape the paper supports:
//!
//! ```sql
//! SELECT * FROM T_A JOIN T_B ON A0 = B0
//! WHERE A1 IN (φ…) AND B3 IN (ψ…)
//! ```

use crate::data::Value;

/// One `column IN (values…)` predicate on a specific table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InFilter {
    /// Table the predicate applies to.
    pub table: String,
    /// Filter column name.
    pub column: String,
    /// The `IN`-clause values (an equality predicate is a 1-element list).
    pub values: Vec<Value>,
}

/// A logical equi-join query over two encrypted tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    /// Left table name (`T_A`).
    pub left_table: String,
    /// Right table name (`T_B`).
    pub right_table: String,
    /// Join column of the left table.
    pub left_join_column: String,
    /// Join column of the right table.
    pub right_join_column: String,
    /// Conjunction of `IN` predicates (each bound to one table).
    pub filters: Vec<InFilter>,
}

impl JoinQuery {
    /// Convenience constructor for the unfiltered join.
    pub fn on(
        left_table: &str,
        left_join_column: &str,
        right_table: &str,
        right_join_column: &str,
    ) -> Self {
        JoinQuery {
            left_table: left_table.to_owned(),
            right_table: right_table.to_owned(),
            left_join_column: left_join_column.to_owned(),
            right_join_column: right_join_column.to_owned(),
            filters: Vec::new(),
        }
    }

    /// Add an `IN` predicate (builder style).
    pub fn filter(mut self, table: &str, column: &str, values: Vec<Value>) -> Self {
        self.filters.push(InFilter {
            table: table.to_owned(),
            column: column.to_owned(),
            values,
        });
        self
    }

    /// All predicates bound to `table`.
    pub fn filters_for(&self, table: &str) -> Vec<&InFilter> {
        self.filters.iter().filter(|f| f.table == table).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let q = JoinQuery::on("Employees", "Team", "Teams", "Key")
            .filter("Teams", "Name", vec!["Web Application".into()])
            .filter("Employees", "Role", vec!["Tester".into()]);
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters_for("Teams").len(), 1);
        assert_eq!(q.filters_for("Employees")[0].column, "Role");
        assert!(q.filters_for("Nope").is_empty());
    }
}
