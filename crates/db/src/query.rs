//! Logical two-table equi-join queries — the shape the paper's scheme
//! executes natively:
//!
//! ```sql
//! SELECT * FROM T_A JOIN T_B ON A0 = B0
//! WHERE A1 IN (φ…) AND B3 IN (ψ…)
//! ```
//!
//! A [`JoinQuery`] is the pairwise special case of the session's
//! [`QueryPlan`](crate::plan::QueryPlan) IR
//! ([`QueryPlan::pairwise`](crate::plan::QueryPlan::pairwise) embeds
//! one); multi-way chains and projections live in [`crate::plan`].

use crate::data::Value;

/// One `column IN (values…)` predicate on a specific table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InFilter {
    /// Table the predicate applies to.
    pub table: String,
    /// Filter column name.
    pub column: String,
    /// The `IN`-clause values (an equality predicate is a 1-element list).
    pub values: Vec<Value>,
}

/// A logical equi-join query over two encrypted tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    /// Left table name (`T_A`).
    pub left_table: String,
    /// Right table name (`T_B`).
    pub right_table: String,
    /// Join column of the left table.
    pub left_join_column: String,
    /// Join column of the right table.
    pub right_join_column: String,
    /// Conjunction of `IN` predicates (each bound to one table).
    pub filters: Vec<InFilter>,
}

impl JoinQuery {
    /// Convenience constructor for the unfiltered join.
    pub fn on(
        left_table: &str,
        left_join_column: &str,
        right_table: &str,
        right_join_column: &str,
    ) -> Self {
        JoinQuery {
            left_table: left_table.to_owned(),
            right_table: right_table.to_owned(),
            left_join_column: left_join_column.to_owned(),
            right_join_column: right_join_column.to_owned(),
            filters: Vec::new(),
        }
    }

    /// Add an `IN` predicate (builder style).
    pub fn filter(mut self, table: &str, column: &str, values: Vec<Value>) -> Self {
        self.filters.push(InFilter {
            table: table.to_owned(),
            column: column.to_owned(),
            values,
        });
        self
    }

    /// All predicates bound to `table`.
    pub fn filters_for(&self, table: &str) -> Vec<&InFilter> {
        self.filters.iter().filter(|f| f.table == table).collect()
    }

    /// The query's *effective* IN sets, canonicalized: values are sorted
    /// and deduplicated, and multiple filters on one `(table, column)`
    /// are intersected (`x IN (a,b) AND x IN (b,c)` ≡ `x IN (b)`).
    /// Returned sorted by `(table, column)`. A declared-empty list or a
    /// contradictory conjunction yields an empty value set (token
    /// generation rejects it as [`EmptyInClause`]).
    ///
    /// Token generation and the session token cache both key off this
    /// canonical form, so two queries with equal canonical sets are
    /// guaranteed to select the same rows.
    ///
    /// [`EmptyInClause`]: crate::error::DbError::EmptyInClause
    pub fn canonical_filter_sets(&self) -> Vec<((String, String), Vec<Value>)> {
        let mut map: std::collections::BTreeMap<(String, String), Option<Vec<Value>>> =
            std::collections::BTreeMap::new();
        for f in &self.filters {
            let key = (f.table.clone(), f.column.clone());
            let mut values = f.values.clone();
            values.sort();
            values.dedup();
            let entry = map.entry(key).or_insert(None);
            *entry = Some(match entry.take() {
                None => values,
                Some(mut prev) => {
                    prev.retain(|v| values.contains(v));
                    prev
                }
            });
        }
        map.into_iter()
            .map(|(key, values)| (key, values.unwrap_or_default()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sets_dedupe_and_intersect() {
        let q = JoinQuery::on("A", "k", "B", "k")
            .filter("A", "x", vec![2.into(), 1.into(), 2.into()])
            .filter("A", "x", vec![3.into(), 2.into()])
            .filter("B", "y", vec!["u".into()]);
        let sets = q.canonical_filter_sets();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].0, ("A".into(), "x".into()));
        assert_eq!(sets[0].1, vec![crate::data::Value::Int(2)]);
        assert_eq!(sets[1].0, ("B".into(), "y".into()));
        // Contradictory conjunction → empty effective set.
        let q = JoinQuery::on("A", "k", "B", "k")
            .filter("A", "x", vec![1.into()])
            .filter("A", "x", vec![2.into()]);
        assert!(q.canonical_filter_sets()[0].1.is_empty());
    }

    #[test]
    fn builder_and_lookup() {
        let q = JoinQuery::on("Employees", "Team", "Teams", "Key")
            .filter("Teams", "Name", vec!["Web Application".into()])
            .filter("Employees", "Role", vec!["Tester".into()]);
        assert_eq!(q.filters.len(), 2);
        assert_eq!(q.filters_for("Teams").len(), 1);
        assert_eq!(q.filters_for("Employees")[0].column, "Role");
        assert!(q.filters_for("Nope").is_empty());
    }
}
