//! The [`QueryPlan`] IR: logical select-project-join trees over
//! encrypted tables, and their lowering to pairwise join stages.
//!
//! The paper's scheme executes one shape natively — a pairwise
//! equi-join with `IN` filters. Real query series mix projections and
//! multi-table chains, so the session plans queries as a small logical
//! tree first:
//!
//! ```text
//!   Project(cols…)                SELECT n.name, o.total
//!     Join(on B.k = C.k)          FROM A JOIN B ON … JOIN C ON …
//!       Join(on A.k = B.k)        WHERE A.x IN (…)
//!         Filter(A.x IN …)
//!           Scan(A)   Scan(B)
//!       Scan(C)
//! ```
//!
//! [`QueryPlan::lower`] validates the tree against the session
//! [`Catalog`] and flattens it into a [`LoweredPlan`]: an ordered table
//! list, one pairwise [`JoinQuery`] **stage** per join edge, and a
//! resolved projection. A multi-way chain `A⋈B⋈C` therefore executes
//! as pipelined pairwise joins (`A⋈B`, then `B⋈C`) — each stage is an
//! ordinary `ExecuteJoin` for every backend, each stage's equality
//! pattern is recorded in the leakage ledger, and the session token
//! cache is keyed **per stage**, so overlapping chains across a series
//! reuse each other's stage tokens. The client stitches the pairwise
//! results back into chain tuples (see
//! [`stitch_stages`](crate::join::stitch_stages)) and decrypts only the
//! projected columns.
//!
//! [`JoinQuery`] remains as the two-table special case;
//! [`QueryPlan::pairwise`] embeds it, so existing callers migrate
//! mechanically.

use crate::data::Value;
use crate::error::DbError;
use crate::query::{InFilter, JoinQuery};
use crate::session::Catalog;

/// A qualified column reference `table.column`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct ColumnId {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
}

impl ColumnId {
    /// Construct from string slices.
    pub fn new(table: &str, column: &str) -> Self {
        ColumnId {
            table: table.to_owned(),
            column: column.to_owned(),
        }
    }
}

impl std::fmt::Display for ColumnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

impl From<(&str, &str)> for ColumnId {
    fn from((table, column): (&str, &str)) -> Self {
        ColumnId::new(table, column)
    }
}

/// One node of the logical plan tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanNode {
    /// Read one encrypted table.
    Scan {
        /// Table name.
        table: String,
    },
    /// Keep rows whose filter column is in the `IN` set. Filters may
    /// sit anywhere above their table's scan; lowering pushes them down
    /// to the stages that touch the table.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// The `IN` predicate.
        filter: InFilter,
    },
    /// Equi-join two subtrees. The right subtree must contribute
    /// exactly one new table (left-deep trees only — that is the shape
    /// the pairwise crypto can pipeline).
    Join {
        /// Left input (the chain built so far).
        left: Box<PlanNode>,
        /// Right input (one new table, possibly filtered).
        right: Box<PlanNode>,
        /// Join column on a table of the left subtree.
        left_on: ColumnId,
        /// Join column on the right subtree's table.
        right_on: ColumnId,
    },
    /// Keep only the listed output columns (root only). Without a
    /// `Project` node the plan is `SELECT *`.
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// Output columns in order.
        columns: Vec<ColumnId>,
    },
}

/// A logical select-project-join query over encrypted tables — the
/// session's unit of execution.
///
/// Build one with the fluent constructors and hand it to
/// [`Session::execute`](crate::session::Session::execute):
///
/// ```
/// use eqjoin_db::QueryPlan;
/// let plan = QueryPlan::scan("customer")
///     .join_on("customer", "nationkey", "nation", "nationkey")
///     .join_on("nation", "nationkey", "supplier", "nationkey")
///     .filter("nation", "name", vec!["FRANCE".into()])
///     .project(&[("customer", "name"), ("supplier", "name")]);
/// assert_eq!(plan.table_names(), vec!["customer", "nation", "supplier"]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    root: PlanNode,
}

impl QueryPlan {
    /// Plan rooted at a single table scan.
    pub fn scan(table: &str) -> Self {
        QueryPlan {
            root: PlanNode::Scan {
                table: table.to_owned(),
            },
        }
    }

    /// Wrap an explicit plan tree.
    pub fn from_node(root: PlanNode) -> Self {
        QueryPlan { root }
    }

    /// The root node.
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// Add an `IN` filter on `table.column` (builder style). If the
    /// plan is already projected, the filter slides in beneath the
    /// root `Project` node, so builder order does not matter.
    pub fn filter(self, table: &str, column: &str, values: Vec<Value>) -> Self {
        let filter = InFilter {
            table: table.to_owned(),
            column: column.to_owned(),
            values,
        };
        let root = match self.root {
            PlanNode::Project { input, columns } => PlanNode::Project {
                input: Box::new(PlanNode::Filter { input, filter }),
                columns,
            },
            other => PlanNode::Filter {
                input: Box::new(other),
                filter,
            },
        };
        QueryPlan { root }
    }

    /// Join with another subtree on `left_on = right_on`.
    pub fn join(self, right: QueryPlan, left_on: ColumnId, right_on: ColumnId) -> Self {
        QueryPlan {
            root: PlanNode::Join {
                left: Box::new(self.root),
                right: Box::new(right.root),
                left_on,
                right_on,
            },
        }
    }

    /// Attach a fresh scan of `right_table`, joined on
    /// `left_table.left_column = right_table.right_column` — the
    /// convenient way to grow a chain one table at a time.
    pub fn join_on(
        self,
        left_table: &str,
        left_column: &str,
        right_table: &str,
        right_column: &str,
    ) -> Self {
        self.join(
            QueryPlan::scan(right_table),
            ColumnId::new(left_table, left_column),
            ColumnId::new(right_table, right_column),
        )
    }

    /// Project onto the listed `(table, column)` output columns. A plan
    /// without a projection is `SELECT *` (every column of every table,
    /// in join order).
    pub fn project(self, columns: &[(&str, &str)]) -> Self {
        QueryPlan {
            root: PlanNode::Project {
                input: Box::new(self.root),
                columns: columns.iter().map(|&(t, c)| ColumnId::new(t, c)).collect(),
            },
        }
    }

    /// Embed a two-table [`JoinQuery`] as a plan — the thin shim that
    /// keeps the legacy API one constructor away from the IR.
    pub fn pairwise(query: &JoinQuery) -> Self {
        let mut plan = QueryPlan::scan(&query.left_table).join(
            QueryPlan::scan(&query.right_table),
            ColumnId::new(&query.left_table, &query.left_join_column),
            ColumnId::new(&query.right_table, &query.right_join_column),
        );
        for f in &query.filters {
            plan = plan.filter(&f.table, &f.column, f.values.clone());
        }
        plan
    }

    /// The scanned table names in join order (left-deep walk).
    pub fn table_names(&self) -> Vec<String> {
        fn walk(node: &PlanNode, out: &mut Vec<String>) {
            match node {
                PlanNode::Scan { table } => out.push(table.clone()),
                PlanNode::Filter { input, .. } | PlanNode::Project { input, .. } => {
                    walk(input, out)
                }
                PlanNode::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// Validate against the catalog and flatten into pairwise stages.
    /// See [`LoweredPlan`] for what comes out.
    pub fn lower(&self, catalog: &Catalog) -> Result<LoweredPlan, DbError> {
        lower(self, catalog)
    }
}

impl From<JoinQuery> for QueryPlan {
    fn from(query: JoinQuery) -> Self {
        QueryPlan::pairwise(&query)
    }
}

impl From<&JoinQuery> for QueryPlan {
    fn from(query: &JoinQuery) -> Self {
        QueryPlan::pairwise(query)
    }
}

/// One pairwise join stage of a lowered plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stage {
    /// The pairwise query the backend executes (filters of both touched
    /// tables included, so every stage prunes as early as possible).
    pub query: JoinQuery,
    /// Position (in [`LoweredPlan::tables`]) of the stage's left table —
    /// the *anchor* already joined by earlier stages.
    pub left_position: usize,
    /// Position of the table this stage attaches (always `stage index
    /// + 1`).
    pub right_position: usize,
}

/// One resolved output column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputColumn {
    /// Position of the source table in [`LoweredPlan::tables`].
    pub position: usize,
    /// Column index within that table's schema.
    pub column_index: usize,
    /// The qualified name (header for result rendering).
    pub id: ColumnId,
}

/// A validated, flattened plan: what the session actually executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoweredPlan {
    /// Tables in join order; positions index this list.
    pub tables: Vec<String>,
    /// Pairwise stages in execution order (`stages.len() == tables.len()
    /// - 1`).
    pub stages: Vec<Stage>,
    /// Output columns in order (all columns of all tables for
    /// `SELECT *`).
    pub projection: Vec<OutputColumn>,
    /// Whether the plan was `SELECT *` (no explicit `Project` node).
    pub select_star: bool,
}

impl LoweredPlan {
    /// The payload columns the client needs from table `position`:
    /// `None` for all of them (`SELECT *`), else the sorted, distinct
    /// schema indices of the projected columns.
    pub fn wanted_columns(&self, position: usize) -> Option<Vec<usize>> {
        if self.select_star {
            return None;
        }
        let mut cols: Vec<usize> = self
            .projection
            .iter()
            .filter(|c| c.position == position)
            .map(|c| c.column_index)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        Some(cols)
    }
}

/// Everything gathered from one subtree during lowering.
struct Walked {
    tables: Vec<String>,
    edges: Vec<(ColumnId, ColumnId)>,
    filters: Vec<InFilter>,
}

fn lower(plan: &QueryPlan, catalog: &Catalog) -> Result<LoweredPlan, DbError> {
    // Peel the optional root projection first; a Project anywhere else
    // is a shape error.
    let (projection_cols, body) = match &plan.root {
        PlanNode::Project { input, columns } => (Some(columns.clone()), input.as_ref()),
        other => (None, other),
    };

    let walked = walk(body)?;
    if walked.tables.len() < 2 {
        return Err(DbError::InvalidPlan(
            "a plan must join at least two tables".into(),
        ));
    }
    for table in &walked.tables {
        if !catalog.contains_key(table) {
            return Err(DbError::UnknownTable(table.clone()));
        }
    }
    let duplicated = walked
        .tables
        .iter()
        .enumerate()
        .any(|(i, t)| walked.tables[..i].contains(t));
    if duplicated && walked.tables.len() > 2 {
        return Err(DbError::InvalidPlan(
            "a table may be scanned twice only in a two-table self-join".into(),
        ));
    }

    let column_index = |id: &ColumnId| -> Result<usize, DbError> {
        catalog
            .get(&id.table)
            .and_then(|cols| cols.iter().position(|c| *c == id.column))
            .ok_or_else(|| DbError::UnknownColumn {
                table: id.table.clone(),
                column: id.column.clone(),
            })
    };

    // Filters must name a table of the plan (the satellite bugfix: a
    // typo'd table used to silently leave that side unfiltered) and an
    // existing column.
    for f in &walked.filters {
        if !walked.tables.contains(&f.table) {
            return Err(DbError::FilterTableNotInQuery {
                table: f.table.clone(),
                column: f.column.clone(),
            });
        }
        column_index(&ColumnId::new(&f.table, &f.column))?;
    }

    // Stages: edge i attaches table position i + 1; its anchor is
    // whichever earlier table the edge's left column names.
    let mut stages = Vec::with_capacity(walked.edges.len());
    for (i, (left_on, right_on)) in walked.edges.iter().enumerate() {
        column_index(left_on)?;
        column_index(right_on)?;
        let right_position = i + 1;
        // Accept the edge written in either orientation.
        let (left_on, right_on) = if right_on.table == walked.tables[right_position] {
            (left_on, right_on)
        } else if left_on.table == walked.tables[right_position] {
            (right_on, left_on)
        } else {
            return Err(DbError::InvalidPlan(format!(
                "join edge {left_on} = {right_on} does not reference the newly joined table {:?}",
                walked.tables[right_position]
            )));
        };
        let left_position = walked.tables[..right_position]
            .iter()
            .position(|t| *t == left_on.table)
            .ok_or_else(|| {
                DbError::InvalidPlan(format!(
                    "join edge references {:?}, which is not joined yet",
                    left_on.table
                ))
            })?;
        let mut query = JoinQuery::on(
            &left_on.table,
            &left_on.column,
            &right_on.table,
            &right_on.column,
        );
        for f in &walked.filters {
            if f.table == left_on.table || f.table == right_on.table {
                query.filters.push(f.clone());
            }
        }
        stages.push(Stage {
            query,
            left_position,
            right_position,
        });
    }

    // Projection: resolve explicit columns, or expand `SELECT *`.
    let select_star = projection_cols.is_none();
    let projection = match projection_cols {
        None => {
            let mut out = Vec::new();
            for (position, table) in walked.tables.iter().enumerate() {
                for (column_index, column) in catalog[table].iter().enumerate() {
                    out.push(OutputColumn {
                        position,
                        column_index,
                        id: ColumnId::new(table, column),
                    });
                }
            }
            out
        }
        Some(columns) => {
            if duplicated {
                return Err(DbError::InvalidPlan(
                    "projections over a self-join are ambiguous; use SELECT *".into(),
                ));
            }
            let mut out = Vec::with_capacity(columns.len());
            for id in columns {
                let position = walked
                    .tables
                    .iter()
                    .position(|t| *t == id.table)
                    .ok_or_else(|| DbError::UnknownColumn {
                        table: id.table.clone(),
                        column: id.column.clone(),
                    })?;
                let column_index = column_index(&id)?;
                if out.iter().any(|c: &OutputColumn| {
                    c.position == position && c.column_index == column_index
                }) {
                    return Err(DbError::DuplicateProjectionColumn {
                        table: id.table,
                        column: id.column,
                    });
                }
                out.push(OutputColumn {
                    position,
                    column_index,
                    id,
                });
            }
            out
        }
    };

    Ok(LoweredPlan {
        tables: walked.tables,
        stages,
        projection,
        select_star,
    })
}

fn walk(node: &PlanNode) -> Result<Walked, DbError> {
    match node {
        PlanNode::Scan { table } => Ok(Walked {
            tables: vec![table.clone()],
            edges: Vec::new(),
            filters: Vec::new(),
        }),
        PlanNode::Filter { input, filter } => {
            let mut walked = walk(input)?;
            walked.filters.push(filter.clone());
            Ok(walked)
        }
        PlanNode::Project { .. } => Err(DbError::InvalidPlan(
            "Project is only allowed at the plan root".into(),
        )),
        PlanNode::Join {
            left,
            right,
            left_on,
            right_on,
        } => {
            let mut walked = walk(left)?;
            let right_walked = walk(right)?;
            if right_walked.tables.len() != 1 {
                return Err(DbError::InvalidPlan(
                    "only left-deep join trees are supported (the right join input \
                     must be a single scan, possibly filtered)"
                        .into(),
                ));
            }
            walked.tables.extend(right_walked.tables);
            walked.filters.extend(right_walked.filters);
            walked.edges.push((left_on.clone(), right_on.clone()));
            Ok(walked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.insert("A".into(), vec!["k".into(), "x".into()]);
        c.insert("B".into(), vec!["k".into(), "j".into(), "y".into()]);
        c.insert("C".into(), vec!["j".into(), "z".into()]);
        c
    }

    fn chain() -> QueryPlan {
        QueryPlan::scan("A")
            .join_on("A", "k", "B", "k")
            .join_on("B", "j", "C", "j")
    }

    #[test]
    fn chain_lowers_to_pipelined_pairwise_stages() {
        let lowered = chain()
            .filter("B", "y", vec![1.into()])
            .lower(&catalog())
            .unwrap();
        assert_eq!(lowered.tables, vec!["A", "B", "C"]);
        assert_eq!(lowered.stages.len(), 2);
        let s0 = &lowered.stages[0];
        assert_eq!((s0.left_position, s0.right_position), (0, 1));
        assert_eq!(s0.query.left_table, "A");
        assert_eq!(s0.query.right_table, "B");
        assert_eq!(s0.query.filters.len(), 1, "B filter rides stage 0");
        let s1 = &lowered.stages[1];
        assert_eq!((s1.left_position, s1.right_position), (1, 2));
        assert_eq!(s1.query.left_table, "B");
        assert_eq!(s1.query.left_join_column, "j");
        assert_eq!(s1.query.filters.len(), 1, "…and stage 1 (both touch B)");
        // SELECT *: every column of every table, in join order.
        assert!(lowered.select_star);
        assert_eq!(lowered.projection.len(), 2 + 3 + 2);
        assert_eq!(lowered.wanted_columns(0), None);
    }

    #[test]
    fn projection_resolves_and_rejects_duplicates() {
        let lowered = chain()
            .project(&[("C", "z"), ("A", "x")])
            .lower(&catalog())
            .unwrap();
        assert!(!lowered.select_star);
        assert_eq!(lowered.projection.len(), 2);
        assert_eq!(lowered.projection[0].position, 2);
        assert_eq!(lowered.projection[0].column_index, 1);
        assert_eq!(lowered.wanted_columns(0), Some(vec![1]));
        assert_eq!(lowered.wanted_columns(1), Some(vec![]));
        let dup = chain().project(&[("A", "x"), ("A", "x")]).lower(&catalog());
        assert_eq!(
            dup.unwrap_err(),
            DbError::DuplicateProjectionColumn {
                table: "A".into(),
                column: "x".into(),
            }
        );
        let ghost = chain().project(&[("A", "ghost")]).lower(&catalog());
        assert!(matches!(ghost, Err(DbError::UnknownColumn { .. })));
    }

    #[test]
    fn filter_on_foreign_table_is_rejected() {
        let bad = chain().filter("Zz", "y", vec![1.into()]).lower(&catalog());
        assert_eq!(
            bad.unwrap_err(),
            DbError::FilterTableNotInQuery {
                table: "Zz".into(),
                column: "y".into(),
            }
        );
    }

    #[test]
    fn pairwise_embeds_join_query() {
        let q = JoinQuery::on("A", "k", "B", "k").filter("A", "x", vec![1.into()]);
        let lowered = QueryPlan::pairwise(&q).lower(&catalog()).unwrap();
        assert_eq!(lowered.stages.len(), 1);
        assert_eq!(lowered.stages[0].query.left_table, "A");
        assert_eq!(lowered.stages[0].query.filters, q.filters);
        // Self-joins stay legal in the two-table shape.
        let self_join = QueryPlan::pairwise(&JoinQuery::on("A", "k", "A", "k"));
        assert!(self_join.lower(&catalog()).is_ok());
    }

    #[test]
    fn shape_errors() {
        // Single table, no join.
        assert!(matches!(
            QueryPlan::scan("A").lower(&catalog()),
            Err(DbError::InvalidPlan(_))
        ));
        // Bushy tree: right input with two tables.
        let bushy = QueryPlan::scan("A").join(
            QueryPlan::scan("B").join_on("B", "j", "C", "j"),
            ColumnId::new("A", "k"),
            ColumnId::new("B", "k"),
        );
        assert!(matches!(
            bushy.lower(&catalog()),
            Err(DbError::InvalidPlan(_))
        ));
        // Edge referencing a table joined later.
        let forward = QueryPlan::scan("A")
            .join_on("C", "j", "B", "k")
            .join_on("B", "j", "C", "j");
        assert!(matches!(
            forward.lower(&catalog()),
            Err(DbError::InvalidPlan(_))
        ));
        // Unknown table.
        assert!(matches!(
            QueryPlan::scan("A")
                .join_on("A", "k", "Zz", "k")
                .lower(&catalog()),
            Err(DbError::UnknownTable(_))
        ));
        // Project below a join.
        let buried = QueryPlan::from_node(PlanNode::Join {
            left: Box::new(PlanNode::Project {
                input: Box::new(PlanNode::Scan { table: "A".into() }),
                columns: vec![ColumnId::new("A", "k")],
            }),
            right: Box::new(PlanNode::Scan { table: "B".into() }),
            left_on: ColumnId::new("A", "k"),
            right_on: ColumnId::new("B", "k"),
        });
        assert!(matches!(
            buried.lower(&catalog()),
            Err(DbError::InvalidPlan(_))
        ));
        // Chains joining the same table twice are rejected (ambiguous).
        let twice = chain().join_on("B", "k", "A", "k");
        assert!(matches!(
            twice.lower(&catalog()),
            Err(DbError::InvalidPlan(_))
        ));
    }

    #[test]
    fn filter_after_project_slides_beneath_the_projection() {
        let lowered = chain()
            .project(&[("A", "x")])
            .filter("B", "y", vec![1.into()])
            .lower(&catalog())
            .unwrap();
        assert_eq!(lowered.projection.len(), 1);
        assert_eq!(lowered.stages[0].query.filters.len(), 1);
    }

    #[test]
    fn reversed_edge_orientation_is_accepted() {
        let plan = QueryPlan::scan("A").join(
            QueryPlan::scan("B"),
            ColumnId::new("B", "k"), // written backwards
            ColumnId::new("A", "k"),
        );
        let lowered = plan.lower(&catalog()).unwrap();
        assert_eq!(lowered.stages[0].query.left_table, "A");
        assert_eq!(lowered.stages[0].query.right_table, "B");
    }
}
