//! One source of truth for metric exposition: converts the crate's
//! pre-existing stats structs ([`TransportStats`], [`ServerStats`],
//! [`ClientStats`]) into canonical [`eqjoin_obs`] samples and registers
//! them as *snapshot sources* — closures the registry evaluates at
//! scrape time against the live counters.
//!
//! The point is that the scrape surface and the programmatic snapshots
//! can never disagree: both read the same atomics at the moment they
//! are asked, instead of a second hand-maintained copy drifting. The
//! metric names below are the canonical catalog (see the README's
//! Observability section); tests assert that a scraped delta equals the
//! corresponding snapshot delta.

use crate::backend::TransportStats;
use crate::client::ClientStats;
use crate::protocol::ServerApi;
use crate::server::ServerStats;
use eqjoin_obs::{Sample, SampleKind};
use eqjoin_pairing::Engine;
use std::sync::Arc;

fn counter(name: &str, label: Option<(&str, &str)>, value: u64) -> Sample {
    Sample {
        name: name.to_owned(),
        labels: label
            .map(|(k, v)| vec![(k.to_owned(), v.to_owned())])
            .unwrap_or_default(),
        kind: SampleKind::Counter,
        value: value as f64,
    }
}

/// [`TransportStats`] under canonical names, optionally labeled (the
/// tenant registry labels each namespace's counters by tenant).
pub fn transport_samples(stats: &TransportStats, label: Option<(&str, &str)>) -> Vec<Sample> {
    vec![
        counter(
            "eqjoin_transport_round_trips_total",
            label,
            stats.round_trips,
        ),
        counter("eqjoin_transport_requests_total", label, stats.requests),
        counter("eqjoin_transport_batches_total", label, stats.batches),
        counter("eqjoin_transport_bytes_sent_total", label, stats.bytes_sent),
        counter(
            "eqjoin_transport_bytes_received_total",
            label,
            stats.bytes_received,
        ),
        counter("eqjoin_transport_reconnects_total", label, stats.reconnects),
        counter("eqjoin_transport_retries_total", label, stats.retries),
        counter("eqjoin_transport_gave_up_total", label, stats.gave_up),
    ]
}

/// [`ServerStats`] (cumulative across joins) under canonical names.
pub fn server_samples(stats: &ServerStats, label: Option<(&str, &str)>) -> Vec<Sample> {
    vec![
        counter(
            "eqjoin_server_rows_decrypted_total",
            label,
            stats.rows_decrypted as u64,
        ),
        counter(
            "eqjoin_server_rows_prefiltered_out_total",
            label,
            stats.rows_prefiltered_out as u64,
        ),
        counter("eqjoin_server_comparisons_total", label, stats.comparisons),
        counter(
            "eqjoin_server_matched_pairs_total",
            label,
            stats.matched_pairs as u64,
        ),
        counter(
            "eqjoin_server_decrypt_cache_hits_total",
            label,
            stats.decrypt_cache_hits,
        ),
    ]
}

/// [`ClientStats`] under canonical names.
pub fn client_samples(stats: &ClientStats, label: Option<(&str, &str)>) -> Vec<Sample> {
    vec![
        counter("eqjoin_client_tkgen_calls_total", label, stats.tkgen_calls),
        counter(
            "eqjoin_client_rows_encrypted_total",
            label,
            stats.rows_encrypted,
        ),
        counter(
            "eqjoin_client_column_decrypts_total",
            label,
            stats.column_decrypts,
        ),
        counter(
            "eqjoin_client_column_decrypts_skipped_total",
            label,
            stats.column_decrypts_skipped,
        ),
    ]
}

/// Register `backend`'s transport counters as the scrape source named
/// `source` — each scrape calls `transport_stats()` live. Re-registering
/// the same source name replaces the previous closure (a restarted
/// server keeps one source, not a pile of dead ones).
pub fn register_transport_source<E, B>(source: &str, backend: Arc<B>)
where
    E: Engine,
    B: ServerApi<E> + ?Sized + 'static,
{
    eqjoin_obs::registry().register_source(
        source,
        Box::new(move || transport_samples(&backend.transport_stats(), None)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;
    use crate::protocol::Request;
    use eqjoin_pairing::MockEngine;

    /// Pull one metric's value back out of a rendered exposition.
    fn scraped_value(text: &str, metric: &str) -> Option<f64> {
        text.lines().find_map(|line| {
            let (name, value) = line.split_once(' ')?;
            (name == metric).then(|| value.parse().ok())?
        })
    }

    #[test]
    fn scraped_transport_counters_track_snapshot_deltas() {
        let backend = Arc::new(LocalBackend::<MockEngine>::new());
        register_transport_source("test_transport_bridge", Arc::clone(&backend));
        let registry = eqjoin_obs::registry();

        let before_snap = ServerApi::<MockEngine>::transport_stats(backend.as_ref());
        let before_scrape =
            scraped_value(&registry.render(), "eqjoin_transport_round_trips_total").unwrap();

        for _ in 0..5 {
            backend.handle(Request::Ping);
        }

        let after_snap = ServerApi::<MockEngine>::transport_stats(backend.as_ref());
        let after_scrape =
            scraped_value(&registry.render(), "eqjoin_transport_round_trips_total").unwrap();
        assert_eq!(after_snap.round_trips - before_snap.round_trips, 5);
        assert_eq!(
            (after_scrape - before_scrape) as u64,
            5,
            "scraped delta must equal the programmatic snapshot delta"
        );

        // Drop the source so other tests' renders don't see this backend.
        registry.register_source("test_transport_bridge", Box::new(Vec::new));
    }

    #[test]
    fn sample_sets_cover_every_struct_field() {
        // One sample per field: if a field is ever added to a stats
        // struct without a canonical metric, these counts go stale and
        // point straight at the omission.
        let t = transport_samples(&TransportStats::default(), None);
        assert_eq!(t.len(), 8);
        let s = server_samples(&ServerStats::default(), None);
        assert_eq!(s.len(), 5);
        let c = client_samples(&ClientStats::default(), None);
        assert_eq!(c.len(), 4);
        for sample in t.iter().chain(&s).chain(&c) {
            assert!(sample.name.starts_with("eqjoin_"), "{}", sample.name);
            assert!(sample.name.ends_with("_total"), "{}", sample.name);
        }
        let labeled = transport_samples(&TransportStats::default(), Some(("tenant", "acme")));
        assert_eq!(
            labeled[0].labels,
            vec![("tenant".to_owned(), "acme".to_owned())]
        );
    }
}
