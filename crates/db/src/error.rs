//! Error type for the encrypted database engine.

use std::fmt;

/// Errors surfaced by the client/server engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Referenced table was never registered/encrypted.
    UnknownTable(String),
    /// Referenced column does not exist in the table's schema.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// The query joins on a column other than the one fixed at
    /// encryption time.
    JoinColumnMismatch {
        /// Table name.
        table: String,
        /// The column the query asked for.
        requested: String,
        /// The join column baked into the ciphertexts.
        encrypted: String,
    },
    /// A filter references a column that was not registered as a filter
    /// attribute (only filter columns carry encrypted power ladders).
    NotAFilterColumn {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// An `IN` clause exceeds the degree bound `t` fixed at setup.
    InClauseTooLarge {
        /// Values supplied.
        got: usize,
        /// Maximum supported (`t`).
        max: usize,
    },
    /// An `IN` clause with no values selects nothing.
    EmptyInClause,
    /// An incremental update referenced a row id the table does not
    /// hold (`DELETE` of an unknown/already-deleted row, or an `INSERT`
    /// whose ids collide with stored rows).
    UnknownRow {
        /// Table name.
        table: String,
        /// The offending row id.
        row: u64,
    },
    /// A store snapshot could not be written, or an on-disk snapshot
    /// was rejected at load time (I/O failure, bad magic, unsupported
    /// format version, engine mismatch, truncation, or checksum
    /// mismatch). Loading never panics on corrupt input — it returns
    /// this.
    Snapshot(String),
    /// A filter names a table that is not part of the query. (Without
    /// this check a typo'd table name would silently leave that side of
    /// the join unfiltered.)
    FilterTableNotInQuery {
        /// The table the filter names.
        table: String,
        /// The filter column.
        column: String,
    },
    /// The projection lists the same output column twice.
    DuplicateProjectionColumn {
        /// Table of the duplicated column.
        table: String,
        /// The duplicated column.
        column: String,
    },
    /// A [`QueryPlan`](crate::plan::QueryPlan) is structurally invalid
    /// (e.g. a join edge references a table that is not yet part of the
    /// plan, or a projection sits below a join).
    InvalidPlan(String),
    /// Payload authentication failed during result decryption.
    PayloadCorrupted,
    /// A table declares more filter columns than the `m` fixed at setup.
    TooManyFilterColumns {
        /// Table name.
        table: String,
        /// Filter columns the table config declared.
        got: usize,
        /// Maximum supported (`m`).
        max: usize,
    },
    /// The server refused to admit the request because a load-shedding
    /// cap was reached — either the global job queue is full or the
    /// named tenant already has its maximum number of decrypt jobs in
    /// flight. The request was **not** executed; retrying after
    /// in-flight work drains is safe. Admission control rejects new
    /// work instead of queueing unboundedly, so in-flight responses
    /// are never dropped under overload.
    Overloaded {
        /// The tenant whose in-flight cap was hit, or `None` when the
        /// global queue-depth cap tripped.
        tenant: Option<String>,
        /// Jobs in flight (admitted and not yet completed) when the
        /// request was rejected.
        in_flight: usize,
        /// The configured cap that was reached.
        cap: usize,
    },
    /// A protocol message could not be decoded, or a backend answered a
    /// request with a response of the wrong kind.
    Protocol(String),
    /// The transport to a remote backend failed — connecting, framing,
    /// sending or receiving. Distinguished from every other variant,
    /// which the *server* reported after receiving the request intact.
    Transport(String),
    /// A deadline elapsed before the operation completed: a stream
    /// read/write timed out ([`SessionConfig::deadline`]
    /// (crate::session::SessionConfig::deadline) or a server idle
    /// timeout), or a retry budget was exhausted retrying timeouts.
    /// Unlike [`DbError::Transport`], the peer may still be working on
    /// the request — whether a retry is safe depends on idempotency.
    Timeout(String),
    /// SQL text could not be parsed or resolved against the session
    /// catalog.
    Sql(String),
    /// SQL text was submitted to a session without an installed
    /// [`SqlPlanner`](crate::session::SqlPlanner).
    NoSqlPlanner,
    /// A vector handed to an FHIPE/Secure Join algorithm had the wrong
    /// length for the master key (converted from
    /// [`eqjoin_core::DimensionMismatch`] — the scheme layer rejects
    /// typed instead of asserting, so no panic is reachable from a
    /// request path).
    DimensionMismatch {
        /// Which input was malformed (e.g. `"row attributes"`).
        what: String,
        /// The dimension fixed at setup.
        expected: usize,
        /// The dimension actually supplied.
        got: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            DbError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            DbError::JoinColumnMismatch {
                table,
                requested,
                encrypted,
            } => write!(
                f,
                "table {table} is encrypted for joins on {encrypted:?}, not {requested:?}"
            ),
            DbError::NotAFilterColumn { table, column } => write!(
                f,
                "column {table}.{column} was not registered as a filter attribute"
            ),
            DbError::InClauseTooLarge { got, max } => {
                write!(
                    f,
                    "IN clause has {got} values, the scheme supports at most {max}"
                )
            }
            DbError::EmptyInClause => write!(f, "IN clause must contain at least one value"),
            DbError::UnknownRow { table, row } => {
                write!(f, "table {table} holds no row with id {row}")
            }
            DbError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            DbError::FilterTableNotInQuery { table, column } => write!(
                f,
                "filter on {table}.{column} names a table that is not part of the query"
            ),
            DbError::DuplicateProjectionColumn { table, column } => {
                write!(f, "column {table}.{column} appears twice in the projection")
            }
            DbError::InvalidPlan(msg) => write!(f, "invalid query plan: {msg}"),
            DbError::PayloadCorrupted => write!(f, "row payload failed authentication"),
            DbError::TooManyFilterColumns { table, got, max } => write!(
                f,
                "table {table} declares {got} filter columns, the join context supports m = {max}"
            ),
            DbError::Overloaded {
                tenant,
                in_flight,
                cap,
            } => match tenant {
                Some(t) => write!(
                    f,
                    "tenant {t:?} is overloaded: {in_flight} decrypt jobs in flight (cap {cap})"
                ),
                None => write!(
                    f,
                    "server is overloaded: {in_flight} jobs queued (queue depth cap {cap})"
                ),
            },
            DbError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DbError::Transport(msg) => write!(f, "transport error: {msg}"),
            DbError::Timeout(msg) => write!(f, "deadline exceeded: {msg}"),
            DbError::Sql(msg) => write!(f, "SQL error: {msg}"),
            DbError::NoSqlPlanner => {
                write!(
                    f,
                    "session has no SQL planner installed (use prepare with a JoinQuery)"
                )
            }
            DbError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} has dimension {got}, the master key expects {expected}"
            ),
        }
    }
}

impl From<eqjoin_core::DimensionMismatch> for DbError {
    fn from(e: eqjoin_core::DimensionMismatch) -> Self {
        DbError::DimensionMismatch {
            what: e.what.to_string(),
            expected: e.expected,
            got: e.got,
        }
    }
}

impl std::error::Error for DbError {}
