//! [`EncryptedStore`] — the server's storage core: column-oriented,
//! row-versioned encrypted tables carrying **prepared pairing state**,
//! a row-granular LRU decrypt cache, and a checksummed snapshot format
//! that lets a restarted server resume a query series *warm*.
//!
//! # Why a store, not a `HashMap`
//!
//! The paper's subject is a **series** of queries against tables
//! encrypted once. Three kinds of state are worth keeping between
//! queries — and, with [`EncryptedStore::save`]/[`EncryptedStore::load`],
//! between server processes:
//!
//! 1. **Prepared pairing state.** Each stored ciphertext element keeps
//!    its precomputed Miller-loop line coefficients
//!    ([`Engine::G2Prepared`]); every `SJ.Dec` then skips the per-step
//!    slope inversions. Preparation happens once per row, at insert.
//! 2. **The decrypt cache**, memoizing `SJ.Dec` output per
//!    `(token fingerprint, row)`. Entries are keyed down to the *row
//!    version*, so incremental updates invalidate exactly the touched
//!    rows: after `InsertRows` a repeated query re-decrypts only the
//!    new rows, after `DeleteRows` nothing at all, and untouched
//!    tables stay fully warm. Eviction is true LRU with a configurable
//!    cap.
//! 3. **The tables themselves**, stored column-oriented: per-row
//!    ciphertexts/prepared state next to per-*column* sealed payload
//!    and pre-filter tag vectors, so the pre-filter scans only the
//!    constrained columns and a payload projection ships straight from
//!    the selected column vectors.
//!
//! # Rows, ids and versions
//!
//! Rows are identified by a **stable id** assigned by the client at
//! encryption time (the AEAD associated data of the sealed payloads
//! binds it, so the server cannot renumber). Every inserted row also
//! gets a store-wide monotonically increasing **version**; replacing a
//! table re-versions every row. A cache entry remembers `(id, version)`
//! per memoized row and a lookup accepts only exact matches — this is
//! the entire invalidation story, no epochs or purge walks required.
//!
//! # Snapshot format
//!
//! `save` writes `magic ‖ format version ‖ engine name ‖ body length ‖
//! SHA-256(body) ‖ body`, everything inside length-prefixed. `load`
//! rejects wrong magic, unsupported versions, engine mismatches,
//! truncation and any body corruption (checksum) with a clean
//! [`DbError::Snapshot`] — never a panic. What a snapshot persists is
//! exactly what the server already held in memory: ciphertexts,
//! prepared state and memoized `SJ.Dec` outputs. It leaks nothing
//! beyond the ciphertexts themselves.

use crate::encrypted::{EncryptedRow, EncryptedTable, SideTokens};
use crate::error::DbError;
use crate::protocol::{Reader, Writer};
use crate::server::{JoinOptions, ServerStats};
use eqjoin_core::{SecureJoin, SjPreparedCiphertext, SjRowCiphertext, SjTableSide};
use eqjoin_pairing::Engine;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default decrypt-cache capacity (entries = query sides), used when
/// neither the store nor the request configures one.
pub const DEFAULT_DECRYPT_CACHE_CAP: usize = 64;

/// Snapshot magic bytes.
const SNAPSHOT_MAGIC: &[u8; 8] = b"EQJSNAP\x01";
/// Snapshot format version this build writes and accepts.
const SNAPSHOT_VERSION: u32 = 1;

/// One stored table, column-oriented.
pub struct TableStore<E: Engine> {
    name: String,
    join_column: String,
    filter_columns: Vec<String>,
    /// Stable client-assigned row ids, ascending.
    ids: Vec<u64>,
    /// Store-wide row versions (the decrypt cache's invalidation
    /// handle), parallel to `ids`.
    versions: Vec<u64>,
    /// Per-row `SJ.Enc` ciphertexts.
    ciphers: Vec<SjRowCiphertext<E>>,
    /// Per-row prepared pairing state (same order).
    prepared: Vec<SjPreparedCiphertext<E>>,
    /// Sealed payloads, **column-major**: `payload_columns[c][r]`.
    payload_columns: Vec<Vec<Vec<u8>>>,
    /// Pre-filter tags, column-major per *filter* column (present iff
    /// the client enabled the pre-filter for this table).
    tag_columns: Option<Vec<Vec<[u8; 16]>>>,
}

impl<E: Engine> TableStore<E> {
    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The join column fixed at encryption time.
    pub fn join_column(&self) -> &str {
        &self.join_column
    }

    /// Filter columns in encryption order.
    pub fn filter_columns(&self) -> &[String] {
        &self.filter_columns
    }

    /// Number of sealed payload columns.
    pub fn payload_column_count(&self) -> usize {
        self.payload_columns.len()
    }

    /// Stable row ids, ascending.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Position of a row id (ids are kept sorted).
    fn position_of(&self, id: u64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Storage positions surviving the pre-filter — a column-oriented
    /// scan: only the constrained tag columns are touched.
    fn candidate_positions(
        &self,
        prefilter: &[(usize, Vec<[u8; 16]>)],
        use_prefilter: bool,
    ) -> Vec<usize> {
        let tag_columns = match (&self.tag_columns, use_prefilter, prefilter.is_empty()) {
            (Some(cols), true, false) => cols,
            _ => return (0..self.len()).collect(),
        };
        let mut alive = vec![true; self.len()];
        for (col, allowed) in prefilter {
            // A constraint on a column this table carries no tags for
            // cannot pre-filter; it stays a full scan (the cryptographic
            // filter still applies during SJ.Dec).
            if let Some(tags) = tag_columns.get(*col) {
                for (keep, tag) in alive.iter_mut().zip(tags) {
                    if *keep && !allowed.contains(tag) {
                        *keep = false;
                    }
                }
            }
        }
        alive
            .iter()
            .enumerate()
            .filter(|(_, keep)| **keep)
            .map(|(i, _)| i)
            .collect()
    }

    /// The requested payload columns of one row (`None` = all), read
    /// straight out of the column vectors.
    pub fn payloads_of(
        &self,
        pos: usize,
        wanted: Option<&[usize]>,
    ) -> Result<Vec<Vec<u8>>, DbError> {
        let row_at = |col: &Vec<Vec<u8>>| {
            col.get(pos).cloned().ok_or_else(|| {
                DbError::Protocol(format!(
                    "row position {pos} out of range ({} rows stored)",
                    col.len()
                ))
            })
        };
        match wanted {
            None => self.payload_columns.iter().map(row_at).collect(),
            Some(indices) => indices
                .iter()
                .map(|&c| {
                    let col = self.payload_columns.get(c).ok_or_else(|| {
                        DbError::Protocol(format!(
                            "payload projection index {c} out of range ({} columns stored)",
                            self.payload_columns.len()
                        ))
                    })?;
                    row_at(col)
                })
                .collect(),
        }
    }

    /// Append rows (arity-checked against the stored layout).
    fn push_rows(
        &mut self,
        start_row: u64,
        rows: Vec<EncryptedRow<E>>,
        versions: impl Iterator<Item = u64>,
    ) -> Result<usize, DbError> {
        if rows.is_empty() {
            return Ok(0);
        }
        if let Some(&last) = self.ids.last() {
            if start_row <= last {
                return Err(DbError::UnknownRow {
                    table: self.name.clone(),
                    row: start_row,
                });
            }
        }
        if self.ciphers.is_empty() {
            // An empty table has no layout yet; adopt the first row's
            // (`rows` is non-empty — checked at entry).
            if let Some(first) = rows.first() {
                self.payload_columns = vec![Vec::new(); first.payloads.len()];
                self.tag_columns = first.tags.as_ref().map(|t| vec![Vec::new(); t.len()]);
            }
        }
        let n_cols = self.payload_columns.len();
        let n_elems = self.ciphers.first().map(|c| c.elements().len());
        let n_tag_cols = self.tag_columns.as_ref().map(Vec::len);
        for row in &rows {
            if row.payloads.len() != n_cols {
                return Err(DbError::Protocol(format!(
                    "inserted row has {} payload columns, table {} stores {}",
                    row.payloads.len(),
                    self.name,
                    n_cols
                )));
            }
            if let Some(n) = n_elems {
                if row.cipher.elements().len() != n {
                    return Err(DbError::Protocol(format!(
                        "inserted row has {} ciphertext elements, table {} stores {}",
                        row.cipher.elements().len(),
                        self.name,
                        n
                    )));
                }
            }
            if row.tags.as_ref().map(Vec::len) != n_tag_cols {
                return Err(DbError::Protocol(format!(
                    "inserted row's pre-filter tags do not match table {}'s layout",
                    self.name
                )));
            }
        }

        let inserted = rows.len();
        // Preparation is the one-time cost the whole refactor exists to
        // amortize: batch it across every element of every new row.
        let elements: Vec<E::G2> = rows
            .iter()
            .flat_map(|row| row.cipher.elements().iter().cloned())
            .collect();
        eqjoin_obs::counter!("eqjoin_store_prepared_pairings_total").add(elements.len() as u64);
        let mut prepared_elements = E::g2_prepare_batch(&elements).into_iter();
        for (i, (row, version)) in rows.into_iter().zip(versions).enumerate() {
            self.ids.push(start_row + i as u64);
            self.versions.push(version);
            let n = row.cipher.elements().len();
            self.prepared.push(SjPreparedCiphertext::from_elements(
                prepared_elements.by_ref().take(n).collect(),
            ));
            self.ciphers.push(row.cipher);
            for (col, payload) in self.payload_columns.iter_mut().zip(row.payloads) {
                col.push(payload);
            }
            if let (Some(cols), Some(tags)) = (&mut self.tag_columns, row.tags) {
                for (col, tag) in cols.iter_mut().zip(tags) {
                    col.push(tag);
                }
            }
        }
        Ok(inserted)
    }

    /// Remove rows by id; every id must exist.
    fn remove_rows(&mut self, ids: &[u64]) -> Result<usize, DbError> {
        let mut positions = Vec::with_capacity(ids.len());
        for &id in ids {
            positions.push(self.position_of(id).ok_or_else(|| DbError::UnknownRow {
                table: self.name.clone(),
                row: id,
            })?);
        }
        positions.sort_unstable();
        positions.dedup();
        let mut keep = vec![true; self.len()];
        for &pos in &positions {
            // audit-allow(panic-freedom): position_of() only returns positions < self.len(), which sized `keep`
            keep[pos] = false;
        }
        retain_by_mask(&mut self.ids, &keep);
        retain_by_mask(&mut self.versions, &keep);
        retain_by_mask(&mut self.ciphers, &keep);
        retain_by_mask(&mut self.prepared, &keep);
        for col in &mut self.payload_columns {
            retain_by_mask(col, &keep);
        }
        if let Some(cols) = &mut self.tag_columns {
            for col in cols {
                retain_by_mask(col, &keep);
            }
        }
        Ok(positions.len())
    }
}

/// `vec.retain` driven by a precomputed per-position mask.
fn retain_by_mask<T>(vec: &mut Vec<T>, keep: &[bool]) {
    let mut pos = 0;
    vec.retain(|_| {
        // audit-allow(panic-freedom): every caller passes a mask of exactly vec.len() entries
        let k = keep[pos];
        pos += 1;
        k
    });
}

/// One memoized `SJ.Dec` side: per-row match keys, each valid for the
/// exact row version it was computed against.
struct CacheEntry {
    table: String,
    /// `row id → (row version, match key)`.
    rows: HashMap<u64, (u64, Vec<u8>)>,
    /// LRU recency stamp.
    last_used: u64,
}

/// True-LRU memo of decrypt sides keyed by token fingerprint.
#[derive(Default)]
struct DecryptCache {
    entries: HashMap<[u8; 32], CacheEntry>,
    tick: u64,
}

impl DecryptCache {
    fn touch(&mut self, key: &[u8; 32]) -> Option<&mut CacheEntry> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry)
    }

    fn insert(&mut self, key: [u8; 32], entry: CacheEntry, cap: usize) {
        self.entries.insert(key, entry);
        while self.entries.len() > cap.max(1) {
            // True LRU: evict the least recently used entry.
            let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break; // unreachable: the loop guard keeps the map non-empty
            };
            self.entries.remove(&oldest);
            eqjoin_obs::counter!("eqjoin_store_decrypt_cache_evictions_total").inc();
        }
    }

    fn purge_table(&mut self, table: &str) {
        self.entries.retain(|_, e| e.table != table);
    }
}

/// The server's storage core. See the [module docs](self).
pub struct EncryptedStore<E: Engine> {
    tables: HashMap<String, TableStore<E>>,
    cache: Mutex<DecryptCache>,
    cache_cap: usize,
    next_version: u64,
    /// Set on any state change worth persisting (mutations *and* fresh
    /// cache entries); [`EncryptedStore::take_dirty`] claims it.
    dirty: AtomicBool,
}

impl<E: Engine> Default for EncryptedStore<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Engine> EncryptedStore<E> {
    /// Empty store with the default decrypt-cache cap.
    pub fn new() -> Self {
        EncryptedStore {
            tables: HashMap::new(),
            cache: Mutex::new(DecryptCache::default()),
            cache_cap: DEFAULT_DECRYPT_CACHE_CAP,
            next_version: 0,
            dirty: AtomicBool::new(false),
        }
    }

    /// Set the decrypt-cache capacity used when a request does not pin
    /// one (`eqjoind --decrypt-cache-cap`). Clamped to at least 1.
    pub fn set_decrypt_cache_cap(&mut self, cap: usize) {
        self.cache_cap = cap.max(1);
    }

    /// The configured default decrypt-cache capacity.
    pub fn decrypt_cache_cap(&self) -> usize {
        self.cache_cap
    }

    /// Number of live decrypt-cache entries.
    pub fn decrypt_cache_len(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entries
            .len()
    }

    /// Stored table names (unordered).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Access one stored table.
    pub fn table(&self, name: &str) -> Option<&TableStore<E>> {
        self.tables.get(name)
    }

    fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Relaxed);
    }

    /// Claim the dirty flag (used by persistent backends to decide when
    /// to rewrite the snapshot).
    pub fn take_dirty(&self) -> bool {
        self.dirty.swap(false, Ordering::Relaxed)
    }

    /// Peek at the dirty flag without claiming it — O(delta) backends
    /// that defer a snapshot rewrite must leave it armed for the
    /// eventual compaction.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Relaxed)
    }

    /// Re-arm the dirty flag — a persistent backend failed to flush and
    /// wants the next request to retry.
    pub fn mark_dirty_again(&self) {
        self.mark_dirty();
    }

    fn next_versions(&mut self, n: usize) -> std::ops::Range<u64> {
        let start = self.next_version;
        self.next_version += n as u64;
        start..self.next_version
    }

    /// Store a whole encrypted table (replacing any table of the same
    /// name). Every row is re-versioned, so stale cache entries die by
    /// version mismatch; the old table's entries are also dropped
    /// eagerly to free memory. Rows get ids `0..n`. Ragged tables
    /// (rows disagreeing on column arity) are rejected.
    pub fn insert_table(&mut self, table: EncryptedTable<E>) -> Result<(), DbError> {
        let n_rows = table.rows.len();
        let n_cols = table.rows.first().map_or(0, |r| r.payloads.len());
        let tagged = table.rows.first().is_some_and(|r| r.tags.is_some());
        let n_tag_cols = if tagged {
            table.filter_columns.len()
        } else {
            0
        };
        for row in &table.rows {
            let row_tags = row.tags.as_ref().map_or(0, Vec::len);
            if row.payloads.len() != n_cols
                || row.tags.is_some() != tagged
                || row_tags != if tagged { n_tag_cols } else { 0 }
            {
                return Err(DbError::Protocol(format!(
                    "ragged table {:?}: rows disagree on column layout",
                    table.name
                )));
            }
        }

        let mut store = TableStore {
            name: table.name.clone(),
            join_column: table.join_column,
            filter_columns: table.filter_columns,
            ids: Vec::with_capacity(n_rows),
            versions: Vec::with_capacity(n_rows),
            ciphers: Vec::with_capacity(n_rows),
            prepared: Vec::with_capacity(n_rows),
            payload_columns: vec![Vec::with_capacity(n_rows); n_cols],
            tag_columns: tagged.then(|| vec![Vec::with_capacity(n_rows); n_tag_cols]),
        };
        let versions = self.next_versions(n_rows);
        store.push_rows(0, table.rows, versions)?;
        eqjoin_obs::counter!("eqjoin_rows_ingested_total").add(n_rows as u64);
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .purge_table(&store.name);
        self.tables.insert(store.name.clone(), store);
        self.mark_dirty();
        Ok(())
    }

    /// Append encrypted rows to an existing table. Stored rows keep
    /// their versions — and therefore their decrypt-cache entries and
    /// prepared state; only the new rows cost anything.
    pub fn insert_rows(
        &mut self,
        table: &str,
        start_row: u64,
        rows: Vec<EncryptedRow<E>>,
    ) -> Result<usize, DbError> {
        let versions = self.next_versions(rows.len());
        let stored = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_owned()))?;
        let inserted = stored.push_rows(start_row, rows, versions)?;
        eqjoin_obs::counter!("eqjoin_rows_ingested_total").add(inserted as u64);
        self.mark_dirty();
        Ok(inserted)
    }

    /// Apply one COPY-style bulk-load chunk
    /// ([`Request::CopyRows`](crate::Request::CopyRows)).
    ///
    /// The chunk is self-describing: on first contact it *creates* the
    /// table with the chunk's metadata (a zero-row chunk is a pure
    /// "create table" declaration); afterwards it appends, but only if
    /// the chunk's join column and filter columns match what the table
    /// was created with — a loader pointed at the wrong table fails
    /// loudly instead of splicing rows encrypted under a different key
    /// column. A replayed chunk collides on `start_row` and is rejected
    /// by [`TableStore::push_rows`], which is what makes journal replay
    /// of a bulk load idempotent. Returns `(rows appended, total rows
    /// now stored)`.
    pub fn copy_rows(
        &mut self,
        table: &str,
        join_column: &str,
        filter_columns: &[String],
        start_row: u64,
        rows: Vec<EncryptedRow<E>>,
    ) -> Result<(usize, u64), DbError> {
        let versions = self.next_versions(rows.len());
        match self.tables.get_mut(table) {
            Some(stored) => {
                if stored.join_column != join_column {
                    return Err(DbError::JoinColumnMismatch {
                        table: table.to_owned(),
                        requested: join_column.to_owned(),
                        encrypted: stored.join_column.clone(),
                    });
                }
                if stored.filter_columns != filter_columns {
                    return Err(DbError::Protocol(format!(
                        "COPY chunk for table {table:?} names filter columns {:?}, \
                         stored table has {:?}",
                        filter_columns, stored.filter_columns
                    )));
                }
                let inserted = stored.push_rows(start_row, rows, versions)?;
                let total = stored.len() as u64;
                eqjoin_obs::counter!("eqjoin_rows_ingested_total").add(inserted as u64);
                self.mark_dirty();
                Ok((inserted, total))
            }
            None => {
                // First chunk: build the table off to the side and only
                // publish it if the rows go in cleanly, so a malformed
                // first chunk leaves no half-created table behind.
                let mut store = TableStore {
                    name: table.to_owned(),
                    join_column: join_column.to_owned(),
                    filter_columns: filter_columns.to_vec(),
                    ids: Vec::new(),
                    versions: Vec::new(),
                    ciphers: Vec::new(),
                    prepared: Vec::new(),
                    payload_columns: Vec::new(),
                    tag_columns: None,
                };
                let inserted = store.push_rows(start_row, rows, versions)?;
                let total = store.len() as u64;
                self.tables.insert(store.name.clone(), store);
                eqjoin_obs::counter!("eqjoin_rows_ingested_total").add(inserted as u64);
                self.mark_dirty();
                Ok((inserted, total))
            }
        }
    }

    /// Delete rows by id. Cache entries for other rows stay valid (a
    /// lookup simply no longer proposes the deleted ids); the dropped
    /// match keys are pruned from the entries to free memory.
    pub fn delete_rows(&mut self, table: &str, ids: &[u64]) -> Result<usize, DbError> {
        let stored = self
            .tables
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_owned()))?;
        let deleted = stored.remove_rows(ids)?;
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        for entry in cache.entries.values_mut() {
            if entry.table == table {
                for id in ids {
                    entry.rows.remove(id);
                }
            }
        }
        drop(cache);
        self.mark_dirty();
        Ok(deleted)
    }

    /// Decrypt one side of a join: `(row id, match key)` for every
    /// candidate row surviving the pre-filter. Rows whose exact version
    /// was already decrypted under this token are served from the
    /// cache; the rest run `SJ.Dec` on the prepared ciphertexts, in
    /// parallel chunks with the final exponentiation batched per chunk.
    pub fn decrypt_side(
        &self,
        side: &SideTokens<E>,
        opts: &JoinOptions,
        threads: usize,
        stats: &mut ServerStats,
    ) -> Result<Vec<(usize, Vec<u8>)>, DbError> {
        let _span = eqjoin_obs::span!("store_sj_dec", "table" => side.table);
        let table = self
            .tables
            .get(&side.table)
            .ok_or_else(|| DbError::UnknownTable(side.table.clone()))?;
        let candidates = table.candidate_positions(&side.prefilter, opts.use_prefilter);
        stats.rows_prefiltered_out += table.len() - candidates.len();
        stats.rows_decrypted += candidates.len();

        let key = opts
            .decrypt_cache
            .then(|| side_fingerprint::<E>(side, opts.use_prefilter));

        // Phase 1 — serve what the cache already knows (exact row
        // version match), collect the misses.
        let mut out: Vec<(usize, Option<Vec<u8>>)> = Vec::with_capacity(candidates.len());
        let mut misses: Vec<usize> = Vec::new();
        if let Some(key) = &key {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            let entry = cache.touch(key).filter(|e| e.table == side.table);
            for &pos in &candidates {
                // audit-allow(panic-freedom): `pos` comes from candidate_positions(), bounded by table.len() which sizes `ids`
                let id = table.ids[pos];
                // audit-allow(panic-freedom): same bound as `id` above; `versions` is parallel to `ids`
                let version = table.versions[pos];
                match entry
                    .as_ref()
                    .and_then(|e| e.rows.get(&id))
                    .filter(|(v, _)| *v == version)
                {
                    Some((_, match_key)) => {
                        stats.decrypt_cache_hits += 1;
                        out.push((id as usize, Some(match_key.clone())));
                    }
                    None => {
                        misses.push(pos);
                        out.push((id as usize, None));
                    }
                }
            }
        } else {
            misses.extend(&candidates);
            out.extend(
                candidates
                    .iter()
                    // audit-allow(panic-freedom): candidate positions are bounded by table.len() which sizes `ids`
                    .map(|&pos| (table.ids[pos] as usize, None)),
            );
        }

        eqjoin_obs::counter!("eqjoin_store_decrypt_cache_hits_total")
            .add((candidates.len() - misses.len()) as u64);
        eqjoin_obs::counter!("eqjoin_store_decrypt_cache_misses_total").add(misses.len() as u64);

        // Phase 2 — decrypt the misses against the prepared rows.
        let fresh = decrypt_positions(table, &side.token, &misses, threads);

        // Phase 3 — merge and refresh the cache entry with the side's
        // current candidate set.
        let mut fresh_iter = fresh.into_iter();
        for slot in &mut out {
            if slot.1.is_none() {
                let Some(fresh_key) = fresh_iter.next() else {
                    return Err(DbError::Protocol(
                        "decrypt pass returned fewer keys than cache misses".into(),
                    ));
                };
                slot.1 = Some(fresh_key);
            }
        }
        let out: Vec<(usize, Vec<u8>)> = out
            .into_iter()
            .map(|(id, key)| {
                key.map(|k| (id, k)).ok_or_else(|| {
                    DbError::Protocol("decrypt slot left unfilled after merge".into())
                })
            })
            .collect::<Result<_, _>>()?;

        // A fully-warm side changes nothing: the entry already holds
        // every (id, version, key) this pass produced, and `touch`
        // refreshed its LRU stamp. Rebuilding it — and above all
        // marking the store dirty — would make every warm repeat of a
        // persistent server rewrite the whole snapshot to disk, the
        // exact steady state the cache exists to make cheap. Only a
        // pass with fresh decrypts updates the entry and the flag.
        if let (Some(key), false) = (key, misses.is_empty()) {
            let rows: HashMap<u64, (u64, Vec<u8>)> = candidates
                .iter()
                .zip(&out)
                .map(|(&pos, (_, match_key))| {
                    // audit-allow(panic-freedom): candidate positions are bounded by table.len()
                    (table.ids[pos], (table.versions[pos], match_key.clone()))
                })
                .collect();
            let cap = if opts.decrypt_cache_cap > 0 {
                opts.decrypt_cache_cap
            } else {
                self.cache_cap
            };
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            cache.tick += 1;
            let entry = CacheEntry {
                table: side.table.clone(),
                rows,
                last_used: cache.tick,
            };
            cache.insert(key, entry, cap);
            drop(cache);
            self.mark_dirty();
        }
        Ok(out)
    }

    // -----------------------------------------------------------------
    // Snapshot persistence
    // -----------------------------------------------------------------

    /// Serialize the full store — tables, prepared pairing state and
    /// the decrypt cache — into the snapshot wire format.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut body = Writer::raw();
        body.u64(self.next_version);
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        body.u64(names.len() as u64);
        for name in names {
            // audit-allow(panic-freedom): `names` are this map's own keys
            let t = &self.tables[name];
            body.str(&t.name);
            body.str(&t.join_column);
            body.u64(t.filter_columns.len() as u64);
            for c in &t.filter_columns {
                body.str(c);
            }
            body.u64(t.len() as u64);
            for &id in &t.ids {
                body.u64(id);
            }
            for &version in &t.versions {
                body.u64(version);
            }
            for cipher in &t.ciphers {
                body.u64(cipher.elements().len() as u64);
                for e in cipher.elements() {
                    body.bytes(&E::g2_bytes(e));
                }
            }
            for prepared in &t.prepared {
                body.u64(prepared.elements().len() as u64);
                for e in prepared.elements() {
                    body.bytes(&E::g2_prepared_bytes(e));
                }
            }
            body.u64(t.payload_columns.len() as u64);
            for col in &t.payload_columns {
                for blob in col {
                    body.bytes(blob);
                }
            }
            match &t.tag_columns {
                None => body.u8(0),
                Some(cols) => {
                    body.u8(1);
                    body.u64(cols.len() as u64);
                    for col in cols {
                        for tag in col {
                            body.out.extend_from_slice(tag);
                        }
                    }
                }
            }
        }

        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        body.u64(cache.tick);
        let mut keys: Vec<&[u8; 32]> = cache.entries.keys().collect();
        keys.sort();
        body.u64(keys.len() as u64);
        for key in keys {
            // audit-allow(panic-freedom): `keys` are this map's own keys
            let entry = &cache.entries[key];
            body.out.extend_from_slice(key);
            body.str(&entry.table);
            body.u64(entry.last_used);
            let mut ids: Vec<&u64> = entry.rows.keys().collect();
            ids.sort();
            body.u64(ids.len() as u64);
            for id in ids {
                // audit-allow(panic-freedom): `ids` are this map's own keys
                let (version, match_key) = &entry.rows[id];
                body.u64(*id);
                body.u64(*version);
                body.bytes(match_key);
            }
        }
        drop(cache);
        let body = body.out;

        let mut out = Writer::raw();
        out.out.extend_from_slice(SNAPSHOT_MAGIC);
        out.out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.str(E::NAME);
        out.u64(body.len() as u64);
        out.out.extend_from_slice(&eqjoin_crypto::sha256(&body));
        out.out.extend_from_slice(&body);
        out.out
    }

    /// Parse [`EncryptedStore::snapshot_bytes`] output. Every rejection
    /// is a clean [`DbError::Snapshot`].
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, DbError> {
        let snap = |msg: &str| DbError::Snapshot(msg.to_owned());
        let mut r = Reader::new(bytes);
        let magic = bytes.get(..8).ok_or_else(|| snap("truncated header"))?;
        if magic != SNAPSHOT_MAGIC {
            return Err(snap("bad magic (not an eqjoin store snapshot)"));
        }
        r.pos = 8;
        let version_bytes = bytes.get(8..12).ok_or_else(|| snap("truncated header"))?;
        // audit-allow(panic-freedom): get(8..12) yields exactly 4 bytes
        let version = u32::from_le_bytes(version_bytes.try_into().expect("4 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(DbError::Snapshot(format!(
                "unsupported snapshot format version {version} (this build reads \
                 {SNAPSHOT_VERSION})"
            )));
        }
        r.pos = 12;
        let engine = r.str().map_err(|_| snap("truncated engine name"))?;
        if engine != E::NAME {
            return Err(DbError::Snapshot(format!(
                "snapshot was written by engine {engine:?}, this server runs {:?}",
                E::NAME
            )));
        }
        let body_len = r.u64().map_err(|_| snap("truncated body length"))? as usize;
        let checksum: [u8; 32] = bytes
            .get(r.pos..r.pos + 32)
            .ok_or_else(|| snap("truncated checksum"))?
            .try_into()
            // audit-allow(panic-freedom): the get() above yields exactly 32 bytes
            .expect("32 bytes");
        r.pos += 32;
        let body = bytes
            .get(r.pos..)
            .filter(|b| b.len() == body_len)
            .ok_or_else(|| snap("body length mismatch (truncated or padded snapshot)"))?;
        if eqjoin_crypto::sha256(body) != checksum {
            return Err(snap("checksum mismatch (corrupt snapshot)"));
        }

        let mut r = Reader::new(body);
        let store = Self::parse_body(&mut r)
            .map_err(|e| DbError::Snapshot(format!("malformed snapshot body: {e}")))?;
        r.finish()
            .map_err(|_| snap("trailing bytes after snapshot body"))?;
        Ok(store)
    }

    fn parse_body(r: &mut Reader<'_>) -> Result<Self, DbError> {
        let next_version = r.u64()?;
        let n_tables = r.len("tables")?;
        let mut tables = HashMap::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = r.str()?;
            let join_column = r.str()?;
            let n_filter = r.len("filter columns")?;
            let filter_columns = (0..n_filter).map(|_| r.str()).collect::<Result<_, _>>()?;
            let n_rows = r.len("rows")?;
            let ids: Vec<u64> = (0..n_rows).map(|_| r.u64()).collect::<Result<_, _>>()?;
            // audit-allow(panic-freedom): windows(2) yields exactly-2-element slices
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(DbError::Protocol("row ids not strictly ascending".into()));
            }
            let versions: Vec<u64> = (0..n_rows).map(|_| r.u64()).collect::<Result<_, _>>()?;
            let mut ciphers = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let n_elems = r.len("ciphertext elements")?;
                let elements = (0..n_elems)
                    .map(|_| {
                        E::g2_from_bytes(r.bytes()?)
                            .ok_or_else(|| DbError::Protocol("invalid G2 element".into()))
                    })
                    .collect::<Result<_, _>>()?;
                ciphers.push(SjRowCiphertext::from_elements(elements));
            }
            let mut prepared = Vec::with_capacity(n_rows);
            for cipher in ciphers.iter().take(n_rows) {
                let n_elems = r.len("prepared elements")?;
                if n_elems != cipher.elements().len() {
                    return Err(DbError::Protocol(
                        "prepared state does not match ciphertext arity".into(),
                    ));
                }
                let elements = (0..n_elems)
                    .map(|_| {
                        E::g2_prepared_from_bytes(r.bytes()?)
                            .ok_or_else(|| DbError::Protocol("invalid prepared element".into()))
                    })
                    .collect::<Result<_, _>>()?;
                prepared.push(SjPreparedCiphertext::from_elements(elements));
            }
            let n_cols = r.len("payload columns")?;
            let mut payload_columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let col = (0..n_rows)
                    .map(|_| Ok(r.bytes()?.to_vec()))
                    .collect::<Result<_, DbError>>()?;
                payload_columns.push(col);
            }
            let tag_columns = match r.u8()? {
                0 => None,
                1 => {
                    let n_tag_cols = r.len("tag columns")?;
                    let mut cols = Vec::with_capacity(n_tag_cols);
                    for _ in 0..n_tag_cols {
                        let mut col = Vec::with_capacity(n_rows);
                        for _ in 0..n_rows {
                            let end = r.pos + 16;
                            let slice = r
                                .buf
                                .get(r.pos..end)
                                .ok_or_else(|| DbError::Protocol("truncated tag".into()))?;
                            let mut tag = [0u8; 16];
                            tag.copy_from_slice(slice);
                            r.pos = end;
                            col.push(tag);
                        }
                        cols.push(col);
                    }
                    Some(cols)
                }
                other => return Err(DbError::Protocol(format!("bad tags marker {other}"))),
            };
            tables.insert(
                name.clone(),
                TableStore {
                    name,
                    join_column,
                    filter_columns,
                    ids,
                    versions,
                    ciphers,
                    prepared,
                    payload_columns,
                    tag_columns,
                },
            );
        }

        let mut cache = DecryptCache {
            entries: HashMap::new(),
            tick: r.u64()?,
        };
        let n_entries = r.len("cache entries")?;
        for _ in 0..n_entries {
            let end = r.pos + 32;
            let key: [u8; 32] = r
                .buf
                .get(r.pos..end)
                .ok_or_else(|| DbError::Protocol("truncated cache key".into()))?
                .try_into()
                // audit-allow(panic-freedom): the get() above yields exactly 32 bytes
                .expect("32 bytes");
            r.pos = end;
            let table = r.str()?;
            let last_used = r.u64()?;
            let n_rows = r.len("cache rows")?;
            let mut rows = HashMap::with_capacity(n_rows);
            for _ in 0..n_rows {
                let id = r.u64()?;
                let version = r.u64()?;
                rows.insert(id, (version, r.bytes()?.to_vec()));
            }
            cache.entries.insert(
                key,
                CacheEntry {
                    table,
                    rows,
                    last_used,
                },
            );
        }

        Ok(EncryptedStore {
            tables,
            cache: Mutex::new(cache),
            cache_cap: DEFAULT_DECRYPT_CACHE_CAP,
            next_version,
            dirty: AtomicBool::new(false),
        })
    }

    /// Write the snapshot atomically **and durably**: serialize to
    /// `path.tmp`, `sync_all` it, rename over `path`, then fsync the
    /// parent directory so the rename itself survives a power cut (on
    /// some filesystems a rename without a directory fsync can be lost,
    /// resurrecting the old snapshot — or on a fresh save, no snapshot
    /// at all).
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        let _span = eqjoin_obs::span!("store_snapshot_save");
        let bytes = self.snapshot_bytes();
        let tmp = path.with_extension("tmp");
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| DbError::Snapshot(format!("create {}: {e}", tmp.display())))?;
        std::io::Write::write_all(&mut file, &bytes)
            .map_err(|e| DbError::Snapshot(format!("write {}: {e}", tmp.display())))?;
        file.sync_all()
            .map_err(|e| DbError::Snapshot(format!("fsync {}: {e}", tmp.display())))?;
        store_failpoint("store::save::after_tmp_write")?;
        std::fs::rename(&tmp, path)
            .map_err(|e| DbError::Snapshot(format!("rename to {}: {e}", path.display())))?;
        store_failpoint("store::save::after_rename")?;
        sync_parent_dir(path)
    }

    /// Load a snapshot written by [`EncryptedStore::save`], sweeping
    /// any stale `path.tmp` a crash mid-save left behind (it is at best
    /// a complete copy of what `path` already holds, at worst a torn
    /// write — never the only copy of anything).
    pub fn load(path: &Path) -> Result<Self, DbError> {
        let _span = eqjoin_obs::span!("store_snapshot_load");
        sweep_stale_tmp(path);
        store_failpoint("store::load")?;
        let bytes = std::fs::read(path)
            .map_err(|e| DbError::Snapshot(format!("read {}: {e}", path.display())))?;
        Self::from_snapshot_bytes(&bytes)
    }
}

/// Remove a stale `path.tmp` left by a crash between serialization and
/// rename. Best-effort: a failure to remove only resurfaces on the
/// next save.
pub(crate) fn sweep_stale_tmp(path: &Path) {
    let tmp = path.with_extension("tmp");
    if tmp.exists() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Fsync the directory containing `path`, making a just-completed
/// rename durable. A missing parent (relative path with no directory
/// component) falls back to `.`.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), DbError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = std::fs::File::open(parent)
        .map_err(|e| DbError::Snapshot(format!("open dir {}: {e}", parent.display())))?;
    dir.sync_all()
        .map_err(|e| DbError::Snapshot(format!("fsync dir {}: {e}", parent.display())))
}

/// Evaluate a failpoint planted at one exact position in the save/load
/// protocol: `delay` stalls there, `abort` kills the process in its
/// tracks — a crash at exactly this point — and any failure action
/// (`return-error`, or the I/O-only `partial-write`/`drop-conn`)
/// surfaces as a typed [`DbError::Snapshot`].
fn store_failpoint(name: &str) -> Result<(), DbError> {
    match eqjoin_failpoint::failpoint!(name) {
        None => Ok(()),
        Some(eqjoin_failpoint::Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(eqjoin_failpoint::Action::Abort) => std::process::abort(),
        Some(_) => Err(DbError::Snapshot(format!(
            "failpoint {name}: injected error"
        ))),
    }
}

/// Decrypt the given storage positions with the prepared rows —
/// chunked across scoped threads, each chunk sharing one batched final
/// exponentiation via [`SecureJoin::decrypt_prepared_many`].
fn decrypt_positions<E: Engine>(
    table: &TableStore<E>,
    token: &eqjoin_core::SjToken<E>,
    positions: &[usize],
    threads: usize,
) -> Vec<Vec<u8>> {
    let decrypt_chunk = |chunk: &[usize]| -> Vec<Vec<u8>> {
        let rows: Vec<&SjPreparedCiphertext<E>> = chunk
            .iter()
            // audit-allow(panic-freedom): callers pass candidate positions bounded by table.len()
            .map(|&pos| &table.prepared[pos])
            .collect();
        SecureJoin::<E>::decrypt_prepared_many(token, &rows)
            .iter()
            .map(SecureJoin::<E>::match_key)
            .collect()
    };
    if threads <= 1 || positions.len() < 2 {
        return decrypt_chunk(positions);
    }
    let chunk_size = positions.len().div_ceil(threads);
    let mut results: Vec<Vec<Vec<u8>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = positions
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || decrypt_chunk(chunk)))
            .collect();
        for h in handles {
            // A panicked worker contributes no keys; the arity check at
            // the merge site surfaces that as a typed protocol error.
            results.push(h.join().unwrap_or_else(|_| Vec::new()));
        }
    });
    results.into_iter().flatten().collect()
}

/// Collision-resistant fingerprint of one side's decrypt inputs: the
/// token elements (byte serialization), the target table, the
/// pre-filter constraint sets and whether the pre-filter applies.
/// Byte-identical fingerprints decrypt to byte-identical outputs, which
/// is what makes the memoization sound.
pub(crate) fn side_fingerprint<E: Engine>(side: &SideTokens<E>, use_prefilter: bool) -> [u8; 32] {
    let mut h = eqjoin_crypto::Sha256::new();
    h.update(b"eqjoin-decrypt-cache-v1\0");
    h.update(&(side.table.len() as u64).to_le_bytes());
    h.update(side.table.as_bytes());
    h.update(&[
        use_prefilter as u8,
        matches!(side.token.side(), SjTableSide::A) as u8,
    ]);
    h.update(&(side.token.elements().len() as u64).to_le_bytes());
    for element in side.token.elements() {
        let bytes = E::g1_bytes(element);
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(&bytes);
    }
    h.update(&(side.prefilter.len() as u64).to_le_bytes());
    for (col, allowed) in &side.prefilter {
        h.update(&(*col as u64).to_le_bytes());
        h.update(&(allowed.len() as u64).to_le_bytes());
        for tag in allowed {
            h.update(tag);
        }
    }
    h.finalize()
}
