//! The semi-honest server: executes join queries with `SJ.Dec` +
//! `SJ.Match` over an [`EncryptedStore`] and reports the equality
//! pattern it (unavoidably) observes — the instrumentation the leakage
//! experiments consume.
//!
//! Storage, prepared pairing state, the row-granular decrypt cache and
//! snapshot persistence all live in [`crate::store`]; this module is
//! the query executor on top: thread resolution, the match phase,
//! payload projection and leakage observation.
//!
//! # The series-aware decrypt cache
//!
//! `SJ.Dec` is one pairing per row — by far the server's hottest path.
//! In the paper's *series* setting the same prepared query recurs
//! (dashboards, retried reports), and the session's token cache then
//! hands the server a **byte-identical** token bundle. Since
//! `D_r = e(Tk, C_r)` is a pure function of the token and the stored
//! ciphertext, the store memoizes the per-row decrypt output keyed by
//! `(token fingerprint, row id, row version)`: a repeat skips the
//! pairing phase entirely (visible as [`ServerStats::decrypt_cache_hits`]
//! and a zero pairing-counter delta), and an incremental
//! [`DbServer::insert_rows`] re-decrypts only the new rows. The cache
//! is LRU-capped ([`JoinOptions::decrypt_cache_cap`] /
//! [`DbServer::set_decrypt_cache_cap`]). It caches only values the
//! server would recompute from what it already stores — it observes
//! nothing new, so the leakage accounting is unchanged.

use crate::encrypted::{EncryptedTable, QueryTokens};
use crate::error::DbError;
use crate::join::{hash_join, nested_loop_join, JoinAlgorithm, MatchOutcome};
use crate::store::EncryptedStore;
use eqjoin_pairing::Engine;
use std::path::Path;
use std::time::{Duration, Instant};

/// Join execution options.
#[derive(Clone, Copy, Debug)]
pub struct JoinOptions {
    /// Matching algorithm (hash join is the paper's default).
    pub algorithm: JoinAlgorithm,
    /// Honor pre-filter tags if the ciphertexts carry them.
    pub use_prefilter: bool,
    /// Worker threads for the decryption phase. `0` (the default) means
    /// auto: one worker per available core, or the server's configured
    /// default ([`DbServer::set_default_threads`]). The paper's §6.5
    /// measures exactly this parallelism.
    pub threads: usize,
    /// Serve repeated byte-identical tokens from the server's decrypt
    /// cache (on by default; see the module docs).
    pub decrypt_cache: bool,
    /// Decrypt-cache capacity in entries (query sides). `0` (the
    /// default) defers to the server's configured cap
    /// ([`DbServer::set_decrypt_cache_cap`] / `eqjoind
    /// --decrypt-cache-cap`).
    pub decrypt_cache_cap: usize,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            algorithm: JoinAlgorithm::Hash,
            use_prefilter: true,
            threads: 0,
            decrypt_cache: true,
            decrypt_cache_cap: 0,
        }
    }
}

/// Counters and timings from one join execution.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Rows considered on each side after pre-filtering.
    pub rows_decrypted: usize,
    /// Rows skipped by the pre-filter.
    pub rows_prefiltered_out: usize,
    /// Equality comparisons / bucket probes in the match phase.
    pub comparisons: u64,
    /// Matched row pairs.
    pub matched_pairs: usize,
    /// Wall time of the `SJ.Dec` phase.
    pub decrypt_time: Duration,
    /// Wall time of the `SJ.Match` phase.
    pub match_time: Duration,
    /// Rows whose `SJ.Dec` output was served from the server's decrypt
    /// cache (each hit skips one pairing). On a full repeat of a
    /// cached query this equals `rows_decrypted`; after an incremental
    /// insert it covers exactly the untouched rows.
    pub decrypt_cache_hits: u64,
}

impl ServerStats {
    /// Accumulate another execution's counters into this one (counts
    /// add, durations add) — the single place that knows every field,
    /// so per-plan and per-stage aggregations cannot silently drop a
    /// counter added later.
    pub fn merge(&mut self, other: &ServerStats) {
        self.rows_decrypted += other.rows_decrypted;
        self.rows_prefiltered_out += other.rows_prefiltered_out;
        self.comparisons += other.comparisons;
        self.matched_pairs += other.matched_pairs;
        self.decrypt_time += other.decrypt_time;
        self.match_time += other.match_time;
        self.decrypt_cache_hits += other.decrypt_cache_hits;
    }
}

/// Which sealed payload columns each side of a join should ship back —
/// the server half of projection pushdown. `None` means every column
/// (`SELECT *`); an explicit list means exactly those schema indices,
/// in the given order (an empty list ships no payloads at all, which a
/// chain uses for tables whose payloads another stage already
/// provides). The projection only selects among *stored blobs*; it
/// never changes which rows are decrypted, matched or observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PayloadProjection {
    /// Wanted payload columns of the left table.
    pub left: Option<Vec<usize>>,
    /// Wanted payload columns of the right table.
    pub right: Option<Vec<usize>>,
}

/// One matched pair, carrying the sealed payloads back to the client.
/// Row indices are the **stable row ids** assigned at encryption time
/// (they survive deletions of other rows — the sealed payloads' AEAD
/// associated data binds them).
#[derive(Clone, Debug)]
pub struct MatchedPair {
    /// Row id in the left table.
    pub left_row: usize,
    /// Row id in the right table.
    pub right_row: usize,
    /// Sealed per-column payloads of the left row (all columns, or the
    /// subset the request's [`PayloadProjection`] asked for, in the
    /// requested order).
    pub left_payloads: Vec<Vec<u8>>,
    /// Sealed per-column payloads of the right row.
    pub right_payloads: Vec<Vec<u8>>,
}

/// The server's response to a join query.
#[derive(Clone, Debug)]
pub struct EncryptedJoinResult {
    /// Matched pairs with payloads.
    pub pairs: Vec<MatchedPair>,
    /// Execution statistics.
    pub stats: ServerStats,
}

/// What the adversary controlling the server learns from one query: the
/// equality classes among decrypted rows, labeled `(table name, row)`.
#[derive(Clone, Debug)]
pub struct JoinObservation {
    /// Query id (from the token bundle).
    pub query_id: u64,
    /// Observed equality classes (≥ 2 members) as `(table, row id)`.
    pub equality_classes: Vec<Vec<(String, usize)>>,
}

/// The semi-honest DBMS server: an [`EncryptedStore`] plus the query
/// executor.
pub struct DbServer<E: Engine> {
    store: EncryptedStore<E>,
    default_threads: Option<usize>,
}

impl<E: Engine> Default for DbServer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Engine> DbServer<E> {
    /// Empty server.
    pub fn new() -> Self {
        DbServer {
            store: EncryptedStore::new(),
            default_threads: None,
        }
    }

    /// Server over an existing store (e.g. one loaded from a snapshot).
    pub fn with_store(store: EncryptedStore<E>) -> Self {
        DbServer {
            store,
            default_threads: None,
        }
    }

    /// Restore a server from a snapshot written by [`DbServer::save`].
    pub fn load(path: &Path) -> Result<Self, DbError> {
        Ok(Self::with_store(EncryptedStore::load(path)?))
    }

    /// Persist the full server state — tables, prepared pairing state
    /// and the decrypt cache — so a restarted server resumes warm.
    pub fn save(&self, path: &Path) -> Result<(), DbError> {
        self.store.save(path)
    }

    /// The underlying store (tests and persistent backends inspect it).
    pub fn store(&self) -> &EncryptedStore<E> {
        &self.store
    }

    /// Upload an encrypted table. Re-uploading under an existing name
    /// replaces the table, re-versions every row and thereby
    /// invalidates its decrypt-cache entries.
    pub fn insert_table(&mut self, table: EncryptedTable<E>) -> Result<(), DbError> {
        self.store.insert_table(table)
    }

    /// Append encrypted rows to a stored table. Untouched rows keep
    /// their versions — their decrypt-cache entries and prepared state
    /// stay warm; only the new rows are prepared and (on the next
    /// query) decrypted.
    pub fn insert_rows(
        &mut self,
        table: &str,
        start_row: u64,
        rows: Vec<crate::encrypted::EncryptedRow<E>>,
    ) -> Result<usize, DbError> {
        self.store.insert_rows(table, start_row, rows)
    }

    /// Delete stored rows by id (row-granular cache invalidation; see
    /// [`EncryptedStore::delete_rows`]).
    pub fn delete_rows(&mut self, table: &str, rows: &[u64]) -> Result<usize, DbError> {
        self.store.delete_rows(table, rows)
    }

    /// Apply one COPY-style bulk-load chunk (create-or-append; see
    /// [`EncryptedStore::copy_rows`]).
    pub fn copy_rows(
        &mut self,
        table: &str,
        join_column: &str,
        filter_columns: &[String],
        start_row: u64,
        rows: Vec<crate::encrypted::EncryptedRow<E>>,
    ) -> Result<(usize, u64), DbError> {
        self.store
            .copy_rows(table, join_column, filter_columns, start_row, rows)
    }

    /// Fix the worker count used when a request asks for auto threads
    /// (`JoinOptions::threads == 0`). `None` (the default) resolves
    /// auto to the machine's available parallelism.
    pub fn set_default_threads(&mut self, threads: Option<usize>) {
        self.default_threads = threads.filter(|&t| t > 0);
    }

    /// Set the decrypt-cache capacity used when a request does not pin
    /// one (`JoinOptions::decrypt_cache_cap == 0`).
    pub fn set_decrypt_cache_cap(&mut self, cap: usize) {
        self.store.set_decrypt_cache_cap(cap);
    }

    /// Resolve a request's thread count: explicit > server default >
    /// available cores.
    fn resolve_threads(&self, requested: usize) -> usize {
        if requested > 0 {
            return requested;
        }
        self.default_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Execute a join query with full payloads — shorthand for
    /// [`DbServer::execute_join_projected`] with no projection.
    pub fn execute_join(
        &self,
        tokens: &QueryTokens<E>,
        opts: &JoinOptions,
    ) -> Result<(EncryptedJoinResult, JoinObservation), DbError> {
        self.execute_join_projected(tokens, opts, &PayloadProjection::default())
    }

    /// Execute a join query: per-row `SJ.Dec` on both sides (optionally
    /// pre-filtered and parallel, served from the decrypt cache where
    /// warm), then `SJ.Match` via the selected algorithm. Returns the
    /// encrypted result — matched pairs carrying only the payload
    /// columns `projection` asks for — and the leakage observation.
    pub fn execute_join_projected(
        &self,
        tokens: &QueryTokens<E>,
        opts: &JoinOptions,
        projection: &PayloadProjection,
    ) -> Result<(EncryptedJoinResult, JoinObservation), DbError> {
        let _span = eqjoin_obs::span!(
            "join",
            "left" => tokens.left.table,
            "right" => tokens.right.table,
        );
        let left_table = self
            .store
            .table(&tokens.left.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.left.table.clone()))?;
        let right_table = self
            .store
            .table(&tokens.right.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.right.table.clone()))?;

        let mut stats = ServerStats::default();
        let threads = self.resolve_threads(opts.threads);

        let t0 = Instant::now();
        let left_d = self
            .store
            .decrypt_side(&tokens.left, opts, threads, &mut stats)?;
        let right_d = self
            .store
            .decrypt_side(&tokens.right, opts, threads, &mut stats)?;
        stats.decrypt_time = t0.elapsed();

        let t1 = Instant::now();
        let outcome: MatchOutcome = match opts.algorithm {
            JoinAlgorithm::Hash => hash_join(&left_d, &right_d),
            JoinAlgorithm::NestedLoop => nested_loop_join(&left_d, &right_d),
        };
        stats.match_time = t1.elapsed();
        stats.comparisons = outcome.comparisons;
        stats.matched_pairs = outcome.pairs.len();

        let pairs = outcome
            .pairs
            .iter()
            .map(|&(l, r)| {
                let left_pos = left_table.ids().binary_search(&(l as u64)).map_err(|_| {
                    DbError::UnknownRow {
                        table: tokens.left.table.clone(),
                        row: l as u64,
                    }
                })?;
                let right_pos = right_table.ids().binary_search(&(r as u64)).map_err(|_| {
                    DbError::UnknownRow {
                        table: tokens.right.table.clone(),
                        row: r as u64,
                    }
                })?;
                Ok(MatchedPair {
                    left_row: l,
                    right_row: r,
                    left_payloads: left_table.payloads_of(left_pos, projection.left.as_deref())?,
                    right_payloads: right_table
                        .payloads_of(right_pos, projection.right.as_deref())?,
                })
            })
            .collect::<Result<Vec<_>, DbError>>()?;

        let observation = JoinObservation {
            query_id: tokens.query_id,
            equality_classes: outcome
                .equality_classes
                .iter()
                .map(|class| {
                    class
                        .iter()
                        .map(|&(side, row)| {
                            let name = if side == 0 {
                                tokens.left.table.clone()
                            } else {
                                tokens.right.table.clone()
                            };
                            (name, row)
                        })
                        .collect()
                })
                .collect(),
        };

        // The leakage account, live: each executed join is one more
        // ledger entry server-side, and the equality classes the match
        // revealed are the pattern the paper's bound is about — export
        // both so cumulative disclosure is scrapeable next to latency.
        eqjoin_obs::counter!("eqjoin_leakage_queries_total").inc();
        eqjoin_obs::counter!("eqjoin_leakage_equality_classes_total")
            .add(observation.equality_classes.len() as u64);
        eqjoin_obs::counter!("eqjoin_join_matched_pairs_total").add(stats.matched_pairs as u64);
        eqjoin_obs::counter!("eqjoin_join_comparisons_total").add(stats.comparisons);
        eqjoin_obs::counter!("eqjoin_join_rows_decrypted_total").add(stats.rows_decrypted as u64);
        eqjoin_obs::counter!("eqjoin_join_rows_prefiltered_out_total")
            .add(stats.rows_prefiltered_out as u64);

        Ok((EncryptedJoinResult { pairs, stats }, observation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use eqjoin_pairing::MockEngine;

    fn setup() -> (DbClient<MockEngine>, DbServer<MockEngine>, JoinQuery) {
        let mut client = DbClient::<MockEngine>::new(2, 2, 99);
        let mut server = DbServer::new();

        let mut left = Table::new(Schema::new("L", &["key", "color", "size"]));
        left.push_row(vec![Value::Int(1), "red".into(), "s".into()]);
        left.push_row(vec![Value::Int(2), "blue".into(), "m".into()]);
        left.push_row(vec![Value::Int(3), "red".into(), "l".into()]);

        let mut right = Table::new(Schema::new("R", &["key", "shape", "weight"]));
        right.push_row(vec![Value::Int(1), "disc".into(), "w1".into()]);
        right.push_row(vec![Value::Int(1), "cube".into(), "w2".into()]);
        right.push_row(vec![Value::Int(4), "cone".into(), "w3".into()]);

        let cfg = |cols: [&str; 2]| TableConfig {
            join_column: "key".into(),
            filter_columns: cols.iter().map(|c| (*c).to_string()).collect(),
        };
        let enc_l = client.encrypt_table(&left, cfg(["color", "size"])).unwrap();
        let enc_r = client
            .encrypt_table(&right, cfg(["shape", "weight"]))
            .unwrap();
        server.insert_table(enc_l).unwrap();
        server.insert_table(enc_r).unwrap();

        let query = JoinQuery::on("L", "key", "R", "key");
        (client, server, query)
    }

    #[test]
    fn unfiltered_join_finds_key_matches() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, obs) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // key 1 in L matches rows 0 and 1 in R.
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1)]);
        assert_eq!(result.stats.matched_pairs, 2);
        assert_eq!(result.stats.rows_decrypted, 6);
        assert_eq!(obs.equality_classes.len(), 1);
        assert_eq!(obs.equality_classes[0].len(), 3);
    }

    #[test]
    fn filtered_join_restricts_matches() {
        let (mut client, server, _) = setup();
        let query = JoinQuery::on("L", "key", "R", "key")
            .filter("L", "color", vec!["red".into()])
            .filter("R", "shape", vec!["cube".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        // Only L row 0 (key 1, red) × R row 1 (key 1, cube).
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn client_decrypts_results() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let rows = client.decrypt_result(&query, &result).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].left.get(0), &Value::Int(1));
        assert_eq!(rows[0].right.get(0), &Value::Int(1));
        assert_eq!(rows[0].theta, Value::Int(1));
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (hash_res, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let (nl_res, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    algorithm: JoinAlgorithm::NestedLoop,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&hash_res), key(&nl_res));
        assert!(nl_res.stats.comparisons > hash_res.stats.comparisons);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (seq, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let (par, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn prefilter_reduces_decryptions() {
        use crate::client::ClientConfig;
        let mut client =
            DbClient::<MockEngine>::with_config(ClientConfig::new(1, 2).seed(5).prefilter(true));
        let mut server = DbServer::new();
        let mut t = Table::new(Schema::new("T", &["k", "attr"]));
        for i in 0..10 {
            let attr = if i < 2 { "hit" } else { "miss" };
            t.push_row(vec![Value::Int(i), attr.into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["attr".into()],
                },
            )
            .unwrap();
        server.insert_table(enc).unwrap();
        let query = JoinQuery::on("T", "k", "T", "k").filter("T", "attr", vec!["hit".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // Self-join: the filter applies to both sides, 2 rows each.
        assert_eq!(result.stats.rows_decrypted, 4);
        assert_eq!(result.stats.rows_prefiltered_out, 16);
        // Without the prefilter everything is decrypted.
        let (nofilter, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    use_prefilter: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(nofilter.stats.rows_decrypted, 20);
        // Same matches either way.
        assert_eq!(result.stats.matched_pairs, nofilter.stats.matched_pairs);
    }

    #[test]
    fn decrypt_cache_serves_full_repeats() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        let (first, first_obs) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(first.stats.decrypt_cache_hits, 0, "cold cache");
        // Byte-identical tokens: the repeat must skip every SJ.Dec.
        let (second, second_obs) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(
            second.stats.decrypt_cache_hits as usize, second.stats.rows_decrypted,
            "100% of rows served from the cache"
        );
        assert_eq!(second.stats.rows_decrypted, first.stats.rows_decrypted);
        assert_eq!(
            second.stats.rows_prefiltered_out,
            first.stats.rows_prefiltered_out
        );
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&first), key(&second));
        assert_eq!(first_obs.equality_classes, second_obs.equality_classes);
        // Fresh tokens for the same query (new k) must miss.
        let fresh = client.query_tokens(&query).unwrap();
        let (third, _) = server.execute_join(&fresh, &opts).unwrap();
        assert_eq!(third.stats.decrypt_cache_hits, 0);
    }

    #[test]
    fn decrypt_cache_disabled_never_hits() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions {
            decrypt_cache: false,
            ..Default::default()
        };
        let (a, _) = server.execute_join(&tokens, &opts).unwrap();
        let (b, _) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(a.stats.decrypt_cache_hits, 0);
        assert_eq!(b.stats.decrypt_cache_hits, 0);
        // And a cache-off run after a cache-on warmup returns the same
        // bytes.
        let (warm, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&a), key(&warm));
    }

    #[test]
    fn table_update_invalidates_decrypt_cache() {
        let (mut client, mut server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        server.execute_join(&tokens, &opts).unwrap();
        let (hit, _) = server.execute_join(&tokens, &opts).unwrap();
        assert!(hit.stats.decrypt_cache_hits > 0, "warm before the update");

        // Re-upload L (same rows re-encrypted): its rows are
        // re-versioned, so its cached match keys die while R's survive
        // — the next run decrypts L fresh but still serves R warm.
        let mut left = Table::new(Schema::new("L", &["key", "color", "size"]));
        left.push_row(vec![Value::Int(1), "red".into(), "s".into()]);
        left.push_row(vec![Value::Int(2), "blue".into(), "m".into()]);
        left.push_row(vec![Value::Int(3), "red".into(), "l".into()]);
        let cfg = TableConfig {
            join_column: "key".into(),
            filter_columns: vec!["color".into(), "size".into()],
        };
        let reencrypted = client.encrypt_table(&left, cfg).unwrap();
        server.insert_table(reencrypted).unwrap();

        let (after, _) = server.execute_join(&tokens, &opts).unwrap();
        let r_rows = 3;
        assert_eq!(
            after.stats.decrypt_cache_hits, r_rows,
            "only R's side may hit after L was replaced"
        );
    }

    #[test]
    fn insert_rows_keeps_untouched_rows_warm() {
        let (mut client, mut server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        server.execute_join(&tokens, &opts).unwrap();

        // Append one row to L: ids/versions of the stored rows are
        // untouched, so the repeat re-decrypts exactly the new row.
        let (start, rows) = client
            .encrypt_rows("L", &[vec![Value::Int(1), "green".into(), "xl".into()]])
            .unwrap();
        assert_eq!(start, 3, "ids continue after the encrypted table");
        assert_eq!(server.insert_rows("L", start, rows).unwrap(), 1);

        let (after, _) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(after.stats.rows_decrypted, 7);
        assert_eq!(
            after.stats.decrypt_cache_hits, 6,
            "all six pre-existing rows stay warm; only the insert is fresh"
        );
        // The new row (key 1, id 3) joins R rows 0 and 1 under the old
        // token.
        let pairs: Vec<(usize, usize)> = after
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (3, 0), (3, 1)]);
    }

    #[test]
    fn delete_rows_is_row_granular() {
        let (mut client, mut server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        server.execute_join(&tokens, &opts).unwrap();

        // Delete L row 0 (the only L row matching R): the repeat stays
        // fully warm for every surviving row and loses the pair.
        assert_eq!(server.delete_rows("L", &[0]).unwrap(), 1);
        let (after, _) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(after.stats.rows_decrypted, 5);
        assert_eq!(
            after.stats.decrypt_cache_hits, 5,
            "no surviving row may be re-decrypted"
        );
        assert!(after.pairs.is_empty());

        // Deleting an unknown id is a clean error.
        assert_eq!(
            server.delete_rows("L", &[0]).unwrap_err(),
            DbError::UnknownRow {
                table: "L".into(),
                row: 0
            }
        );
        // Inserting over a live id is rejected too.
        let (_, rows) = client
            .encrypt_rows("L", &[vec![Value::Int(9), "red".into(), "s".into()]])
            .unwrap();
        assert!(matches!(
            server.insert_rows("L", 1, rows),
            Err(DbError::UnknownRow { .. })
        ));
    }

    #[test]
    fn lru_keeps_hot_entries_through_a_cold_flood() {
        let (mut client, mut server, query) = setup();
        server.set_decrypt_cache_cap(4);
        let opts = JoinOptions::default();
        let hot = client.query_tokens(&query).unwrap();
        server.execute_join(&hot, &opts).unwrap();

        // Flood with fresh-token queries (each inserts 2 cold entries),
        // touching the hot entry between every wave. FIFO would evict
        // the oldest — i.e. the hot pair; LRU must keep it.
        for _ in 0..6 {
            let cold = client.query_tokens(&query).unwrap();
            let (res, _) = server.execute_join(&cold, &opts).unwrap();
            assert_eq!(res.stats.decrypt_cache_hits, 0);
            let (warm, _) = server.execute_join(&hot, &opts).unwrap();
            assert_eq!(
                warm.stats.decrypt_cache_hits as usize, warm.stats.rows_decrypted,
                "the hot entry must survive every cold wave"
            );
            assert!(server.store().decrypt_cache_len() <= 4);
        }
    }

    #[test]
    fn per_request_cache_cap_overrides_server_default() {
        let (mut client, server, query) = setup();
        let opts = JoinOptions {
            decrypt_cache_cap: 2,
            ..Default::default()
        };
        for _ in 0..5 {
            let tokens = client.query_tokens(&query).unwrap();
            server.execute_join(&tokens, &opts).unwrap();
            assert!(server.store().decrypt_cache_len() <= 2);
        }
    }

    #[test]
    fn unknown_table_errors() {
        let (mut client, _server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let empty = DbServer::<MockEngine>::new();
        assert!(matches!(
            empty.execute_join(&tokens, &JoinOptions::default()),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn snapshot_round_trip_preserves_results_and_cache() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        let (first, _) = server.execute_join(&tokens, &opts).unwrap();

        // "Restart": serialize, drop, reload — the repeat must be a
        // full cache hit on the reloaded server.
        let bytes = server.store().snapshot_bytes();
        drop(server);
        let reloaded = DbServer::with_store(EncryptedStore::from_snapshot_bytes(&bytes).unwrap());
        let (again, _) = reloaded.execute_join(&tokens, &opts).unwrap();
        assert_eq!(
            again.stats.decrypt_cache_hits as usize, again.stats.rows_decrypted,
            "a restored snapshot must serve the repeat entirely from cache"
        );
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&first), key(&again));
    }
}
