//! The semi-honest server: stores encrypted tables, executes join
//! queries with `SJ.Dec` + `SJ.Match`, and reports the equality pattern
//! it (unavoidably) observes — the instrumentation the leakage
//! experiments consume.
//!
//! # The series-aware decrypt cache
//!
//! `SJ.Dec` is one pairing per row — by far the server's hottest path.
//! In the paper's *series* setting the same prepared query recurs
//! (dashboards, retried reports), and the session's token cache then
//! hands the server a **byte-identical** token bundle. Since
//! `D_r = e(Tk, C_r)` is a pure function of the token and the stored
//! ciphertext, the server memoizes the per-side decrypt output keyed by
//! `(table, token fingerprint, table version)`: a repeat skips the
//! pairing phase entirely (visible as [`ServerStats::decrypt_cache_hits`]
//! and a zero pairing-counter delta). Inserting or re-encrypting a table
//! bumps its version and purges its entries; the cache is capped and
//! evicts FIFO. This caches only values the server would recompute from
//! what it already stores — it observes nothing new, so the leakage
//! accounting is unchanged.

use crate::encrypted::{EncryptedTable, QueryTokens, SideTokens};
use crate::error::DbError;
use crate::join::{hash_join, nested_loop_join, JoinAlgorithm, MatchOutcome};
use eqjoin_core::{SecureJoin, SjTableSide, SjToken};
use eqjoin_pairing::Engine;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Join execution options.
#[derive(Clone, Copy, Debug)]
pub struct JoinOptions {
    /// Matching algorithm (hash join is the paper's default).
    pub algorithm: JoinAlgorithm,
    /// Honor pre-filter tags if the ciphertexts carry them.
    pub use_prefilter: bool,
    /// Worker threads for the decryption phase. `0` (the default) means
    /// auto: one worker per available core, or the server's configured
    /// default ([`DbServer::set_default_threads`]). The paper's §6.5
    /// measures exactly this parallelism.
    pub threads: usize,
    /// Serve repeated byte-identical tokens from the server's decrypt
    /// cache (on by default; see the module docs).
    pub decrypt_cache: bool,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            algorithm: JoinAlgorithm::Hash,
            use_prefilter: true,
            threads: 0,
            decrypt_cache: true,
        }
    }
}

/// Counters and timings from one join execution.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Rows considered on each side after pre-filtering.
    pub rows_decrypted: usize,
    /// Rows skipped by the pre-filter.
    pub rows_prefiltered_out: usize,
    /// Equality comparisons / bucket probes in the match phase.
    pub comparisons: u64,
    /// Matched row pairs.
    pub matched_pairs: usize,
    /// Wall time of the `SJ.Dec` phase.
    pub decrypt_time: Duration,
    /// Wall time of the `SJ.Match` phase.
    pub match_time: Duration,
    /// Rows whose `SJ.Dec` output was served from the server's decrypt
    /// cache (each hit skips one pairing). On a full repeat of a
    /// cached query this equals `rows_decrypted`.
    pub decrypt_cache_hits: u64,
}

impl ServerStats {
    /// Accumulate another execution's counters into this one (counts
    /// add, durations add) — the single place that knows every field,
    /// so per-plan and per-stage aggregations cannot silently drop a
    /// counter added later.
    pub fn merge(&mut self, other: &ServerStats) {
        self.rows_decrypted += other.rows_decrypted;
        self.rows_prefiltered_out += other.rows_prefiltered_out;
        self.comparisons += other.comparisons;
        self.matched_pairs += other.matched_pairs;
        self.decrypt_time += other.decrypt_time;
        self.match_time += other.match_time;
        self.decrypt_cache_hits += other.decrypt_cache_hits;
    }
}

/// Which sealed payload columns each side of a join should ship back —
/// the server half of projection pushdown. `None` means every column
/// (`SELECT *`); an explicit list means exactly those schema indices,
/// in the given order (an empty list ships no payloads at all, which a
/// chain uses for tables whose payloads another stage already
/// provides). The projection only selects among *stored blobs*; it
/// never changes which rows are decrypted, matched or observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PayloadProjection {
    /// Wanted payload columns of the left table.
    pub left: Option<Vec<usize>>,
    /// Wanted payload columns of the right table.
    pub right: Option<Vec<usize>>,
}

/// One matched pair, carrying the sealed payloads back to the client.
#[derive(Clone, Debug)]
pub struct MatchedPair {
    /// Row index in the left table.
    pub left_row: usize,
    /// Row index in the right table.
    pub right_row: usize,
    /// Sealed per-column payloads of the left row (all columns, or the
    /// subset the request's [`PayloadProjection`] asked for, in the
    /// requested order).
    pub left_payloads: Vec<Vec<u8>>,
    /// Sealed per-column payloads of the right row.
    pub right_payloads: Vec<Vec<u8>>,
}

/// The server's response to a join query.
#[derive(Clone, Debug)]
pub struct EncryptedJoinResult {
    /// Matched pairs with payloads.
    pub pairs: Vec<MatchedPair>,
    /// Execution statistics.
    pub stats: ServerStats,
}

/// What the adversary controlling the server learns from one query: the
/// equality classes among decrypted rows, labeled `(table name, row)`.
#[derive(Clone, Debug)]
pub struct JoinObservation {
    /// Query id (from the token bundle).
    pub query_id: u64,
    /// Observed equality classes (≥ 2 members) as `(table, row index)`.
    pub equality_classes: Vec<Vec<(String, usize)>>,
}

/// Maximum number of `(table, token)` entries the decrypt cache holds
/// before FIFO eviction. Each entry is one side of one query — a series
/// cycling through far more distinct queries than this is not a cache
/// workload.
const DECRYPT_CACHE_CAP: usize = 64;

/// One memoized `SJ.Dec` side: the post-prefilter candidate rows and
/// their match keys, valid for one table version.
struct DecryptEntry {
    table: String,
    version: u64,
    total_rows: usize,
    rows: Arc<Vec<(usize, Vec<u8>)>>,
}

/// FIFO-capped memo of decrypt sides keyed by token fingerprint.
#[derive(Default)]
struct DecryptCache {
    entries: HashMap<[u8; 32], DecryptEntry>,
    order: VecDeque<[u8; 32]>,
}

impl DecryptCache {
    fn get(&self, key: &[u8; 32], table: &str, version: u64) -> Option<&DecryptEntry> {
        self.entries
            .get(key)
            .filter(|e| e.table == table && e.version == version)
    }

    fn insert(&mut self, key: [u8; 32], entry: DecryptEntry) {
        if self.entries.insert(key, entry).is_none() {
            self.order.push_back(key);
        }
        while self.entries.len() > DECRYPT_CACHE_CAP {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.entries.remove(&oldest);
                }
                None => break,
            }
        }
    }

    /// Drop every entry of `table` (called when the table is replaced).
    fn purge_table(&mut self, table: &str) {
        self.entries.retain(|_, e| e.table != table);
        let entries = &self.entries;
        self.order.retain(|k| entries.contains_key(k));
    }
}

/// A stored table together with its monotonically increasing version
/// (bumped on every upload under the same name — the decrypt cache's
/// invalidation handle).
struct StoredTable<E: Engine> {
    table: EncryptedTable<E>,
    version: u64,
}

/// The semi-honest DBMS server.
pub struct DbServer<E: Engine> {
    tables: HashMap<String, StoredTable<E>>,
    next_version: u64,
    decrypt_cache: Mutex<DecryptCache>,
    default_threads: Option<usize>,
}

impl<E: Engine> Default for DbServer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Engine> DbServer<E> {
    /// Empty server.
    pub fn new() -> Self {
        DbServer {
            tables: HashMap::new(),
            next_version: 0,
            decrypt_cache: Mutex::new(DecryptCache::default()),
            default_threads: None,
        }
    }

    /// Upload an encrypted table. Re-uploading under an existing name
    /// replaces the table, bumps its version and invalidates its
    /// decrypt-cache entries.
    pub fn insert_table(&mut self, table: EncryptedTable<E>) {
        self.next_version += 1;
        self.decrypt_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .purge_table(&table.name);
        self.tables.insert(
            table.name.clone(),
            StoredTable {
                table,
                version: self.next_version,
            },
        );
    }

    /// Access a stored table.
    pub fn table(&self, name: &str) -> Option<&EncryptedTable<E>> {
        self.tables.get(name).map(|stored| &stored.table)
    }

    /// Fix the worker count used when a request asks for auto threads
    /// (`JoinOptions::threads == 0`). `None` (the default) resolves
    /// auto to the machine's available parallelism.
    pub fn set_default_threads(&mut self, threads: Option<usize>) {
        self.default_threads = threads.filter(|&t| t > 0);
    }

    /// Resolve a request's thread count: explicit > server default >
    /// available cores.
    fn resolve_threads(&self, requested: usize) -> usize {
        if requested > 0 {
            return requested;
        }
        self.default_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Execute a join query with full payloads — shorthand for
    /// [`DbServer::execute_join_projected`] with no projection.
    pub fn execute_join(
        &self,
        tokens: &QueryTokens<E>,
        opts: &JoinOptions,
    ) -> Result<(EncryptedJoinResult, JoinObservation), DbError> {
        self.execute_join_projected(tokens, opts, &PayloadProjection::default())
    }

    /// Execute a join query: per-row `SJ.Dec` on both sides (optionally
    /// pre-filtered and parallel), then `SJ.Match` via the selected
    /// algorithm. Returns the encrypted result — matched pairs carrying
    /// only the payload columns `projection` asks for — and the leakage
    /// observation.
    pub fn execute_join_projected(
        &self,
        tokens: &QueryTokens<E>,
        opts: &JoinOptions,
        projection: &PayloadProjection,
    ) -> Result<(EncryptedJoinResult, JoinObservation), DbError> {
        let left_stored = self
            .tables
            .get(&tokens.left.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.left.table.clone()))?;
        let right_stored = self
            .tables
            .get(&tokens.right.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.right.table.clone()))?;
        let left_table = &left_stored.table;
        let right_table = &right_stored.table;

        let mut stats = ServerStats::default();

        let t0 = Instant::now();
        let left_d = self.decrypt_side(left_stored, &tokens.left, opts, &mut stats);
        let right_d = self.decrypt_side(right_stored, &tokens.right, opts, &mut stats);
        stats.decrypt_time = t0.elapsed();

        let t1 = Instant::now();
        let outcome: MatchOutcome = match opts.algorithm {
            JoinAlgorithm::Hash => hash_join(&left_d, &right_d),
            JoinAlgorithm::NestedLoop => nested_loop_join(&left_d, &right_d),
        };
        stats.match_time = t1.elapsed();
        stats.comparisons = outcome.comparisons;
        stats.matched_pairs = outcome.pairs.len();

        let pairs = outcome
            .pairs
            .iter()
            .map(|&(l, r)| {
                Ok(MatchedPair {
                    left_row: l,
                    right_row: r,
                    left_payloads: project_payloads(
                        &left_table.rows[l].payloads,
                        projection.left.as_deref(),
                    )?,
                    right_payloads: project_payloads(
                        &right_table.rows[r].payloads,
                        projection.right.as_deref(),
                    )?,
                })
            })
            .collect::<Result<Vec<_>, DbError>>()?;

        let observation = JoinObservation {
            query_id: tokens.query_id,
            equality_classes: outcome
                .equality_classes
                .iter()
                .map(|class| {
                    class
                        .iter()
                        .map(|&(side, row)| {
                            let name = if side == 0 {
                                tokens.left.table.clone()
                            } else {
                                tokens.right.table.clone()
                            };
                            (name, row)
                        })
                        .collect()
                })
                .collect(),
        };

        Ok((EncryptedJoinResult { pairs, stats }, observation))
    }

    /// Decrypt one side: `(row index, D bytes)` for every candidate row
    /// that survives the pre-filter — served from the decrypt cache
    /// when this exact token already ran against this table version.
    fn decrypt_side(
        &self,
        stored: &StoredTable<E>,
        side: &SideTokens<E>,
        opts: &JoinOptions,
        stats: &mut ServerStats,
    ) -> Arc<Vec<(usize, Vec<u8>)>> {
        let table = &stored.table;
        let key = opts
            .decrypt_cache
            .then(|| side_fingerprint::<E>(side, opts.use_prefilter));
        if let Some(key) = &key {
            let cache = self.decrypt_cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = cache.get(key, &table.name, stored.version) {
                stats.rows_decrypted += entry.rows.len();
                stats.rows_prefiltered_out += entry.total_rows - entry.rows.len();
                stats.decrypt_cache_hits += entry.rows.len() as u64;
                return Arc::clone(&entry.rows);
            }
        }

        // Pre-filter: a row survives if, for every constrained column,
        // its tag is in the allowed set.
        let candidates: Vec<usize> = table
            .rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                if !opts.use_prefilter || side.prefilter.is_empty() {
                    return true;
                }
                match &row.tags {
                    None => true, // table carries no tags; cannot pre-filter
                    Some(tags) => side
                        .prefilter
                        .iter()
                        .all(|(col, allowed)| allowed.contains(&tags[*col])),
                }
            })
            .map(|(i, _)| i)
            .collect();
        stats.rows_prefiltered_out += table.rows.len() - candidates.len();
        stats.rows_decrypted += candidates.len();

        let threads = self.resolve_threads(opts.threads);
        let decrypt_one = |&idx: &usize| -> (usize, Vec<u8>) {
            let d = SecureJoin::<E>::decrypt(&side.token, &table.rows[idx].cipher);
            (idx, SecureJoin::<E>::match_key(&d))
        };
        let rows: Arc<Vec<(usize, Vec<u8>)>> = if threads <= 1 || candidates.len() < 2 {
            Arc::new(candidates.iter().map(decrypt_one).collect())
        } else {
            Arc::new(parallel_decrypt(&candidates, &side.token, table, threads))
        };

        if let Some(key) = key {
            self.decrypt_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(
                    key,
                    DecryptEntry {
                        table: table.name.clone(),
                        version: stored.version,
                        total_rows: table.rows.len(),
                        rows: Arc::clone(&rows),
                    },
                );
        }
        rows
    }
}

/// Select the requested payload columns of one stored row (`None` =
/// all). An out-of-range index is a malformed request.
fn project_payloads(
    payloads: &[Vec<u8>],
    wanted: Option<&[usize]>,
) -> Result<Vec<Vec<u8>>, DbError> {
    match wanted {
        None => Ok(payloads.to_vec()),
        Some(indices) => indices
            .iter()
            .map(|&i| {
                payloads.get(i).cloned().ok_or_else(|| {
                    DbError::Protocol(format!(
                        "payload projection index {i} out of range ({} columns stored)",
                        payloads.len()
                    ))
                })
            })
            .collect(),
    }
}

/// Collision-resistant fingerprint of one side's decrypt inputs: the
/// token elements (byte serialization), the target table, the
/// pre-filter constraint sets and whether the pre-filter applies.
/// Byte-identical fingerprints decrypt to byte-identical outputs, which
/// is what makes the memoization sound.
fn side_fingerprint<E: Engine>(side: &SideTokens<E>, use_prefilter: bool) -> [u8; 32] {
    let mut h = eqjoin_crypto::Sha256::new();
    h.update(b"eqjoin-decrypt-cache-v1\0");
    h.update(&(side.table.len() as u64).to_le_bytes());
    h.update(side.table.as_bytes());
    h.update(&[
        use_prefilter as u8,
        matches!(side.token.side(), SjTableSide::A) as u8,
    ]);
    h.update(&(side.token.elements().len() as u64).to_le_bytes());
    for element in side.token.elements() {
        let bytes = E::g1_bytes(element);
        h.update(&(bytes.len() as u64).to_le_bytes());
        h.update(&bytes);
    }
    h.update(&(side.prefilter.len() as u64).to_le_bytes());
    for (col, allowed) in &side.prefilter {
        h.update(&(*col as u64).to_le_bytes());
        h.update(&(allowed.len() as u64).to_le_bytes());
        for tag in allowed {
            h.update(tag);
        }
    }
    h.finalize()
}

/// Chunked parallel decryption with std scoped threads.
fn parallel_decrypt<E: Engine>(
    candidates: &[usize],
    token: &SjToken<E>,
    table: &EncryptedTable<E>,
    threads: usize,
) -> Vec<(usize, Vec<u8>)> {
    let chunk_size = candidates.len().div_ceil(threads);
    let mut results: Vec<Vec<(usize, Vec<u8>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&idx| {
                            let d = SecureJoin::<E>::decrypt(token, &table.rows[idx].cipher);
                            (idx, SecureJoin::<E>::match_key(&d))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("decrypt worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use eqjoin_pairing::MockEngine;

    fn setup() -> (DbClient<MockEngine>, DbServer<MockEngine>, JoinQuery) {
        let mut client = DbClient::<MockEngine>::new(2, 2, 99);
        let mut server = DbServer::new();

        let mut left = Table::new(Schema::new("L", &["key", "color", "size"]));
        left.push_row(vec![Value::Int(1), "red".into(), "s".into()]);
        left.push_row(vec![Value::Int(2), "blue".into(), "m".into()]);
        left.push_row(vec![Value::Int(3), "red".into(), "l".into()]);

        let mut right = Table::new(Schema::new("R", &["key", "shape", "weight"]));
        right.push_row(vec![Value::Int(1), "disc".into(), "w1".into()]);
        right.push_row(vec![Value::Int(1), "cube".into(), "w2".into()]);
        right.push_row(vec![Value::Int(4), "cone".into(), "w3".into()]);

        let cfg = |cols: [&str; 2]| TableConfig {
            join_column: "key".into(),
            filter_columns: cols.iter().map(|c| (*c).to_string()).collect(),
        };
        let enc_l = client.encrypt_table(&left, cfg(["color", "size"])).unwrap();
        let enc_r = client
            .encrypt_table(&right, cfg(["shape", "weight"]))
            .unwrap();
        server.insert_table(enc_l);
        server.insert_table(enc_r);

        let query = JoinQuery::on("L", "key", "R", "key");
        (client, server, query)
    }

    #[test]
    fn unfiltered_join_finds_key_matches() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, obs) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // key 1 in L matches rows 0 and 1 in R.
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1)]);
        assert_eq!(result.stats.matched_pairs, 2);
        assert_eq!(result.stats.rows_decrypted, 6);
        assert_eq!(obs.equality_classes.len(), 1);
        assert_eq!(obs.equality_classes[0].len(), 3);
    }

    #[test]
    fn filtered_join_restricts_matches() {
        let (mut client, server, _) = setup();
        let query = JoinQuery::on("L", "key", "R", "key")
            .filter("L", "color", vec!["red".into()])
            .filter("R", "shape", vec!["cube".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        // Only L row 0 (key 1, red) × R row 1 (key 1, cube).
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn client_decrypts_results() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let rows = client.decrypt_result(&query, &result).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].left.get(0), &Value::Int(1));
        assert_eq!(rows[0].right.get(0), &Value::Int(1));
        assert_eq!(rows[0].theta, Value::Int(1));
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (hash_res, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let (nl_res, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    algorithm: JoinAlgorithm::NestedLoop,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&hash_res), key(&nl_res));
        assert!(nl_res.stats.comparisons > hash_res.stats.comparisons);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (seq, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let (par, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn prefilter_reduces_decryptions() {
        use crate::client::ClientConfig;
        let mut client =
            DbClient::<MockEngine>::with_config(ClientConfig::new(1, 2).seed(5).prefilter(true));
        let mut server = DbServer::new();
        let mut t = Table::new(Schema::new("T", &["k", "attr"]));
        for i in 0..10 {
            let attr = if i < 2 { "hit" } else { "miss" };
            t.push_row(vec![Value::Int(i), attr.into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["attr".into()],
                },
            )
            .unwrap();
        server.insert_table(enc);
        let query = JoinQuery::on("T", "k", "T", "k").filter("T", "attr", vec!["hit".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // Self-join: the filter applies to both sides, 2 rows each.
        assert_eq!(result.stats.rows_decrypted, 4);
        assert_eq!(result.stats.rows_prefiltered_out, 16);
        // Without the prefilter everything is decrypted.
        let (nofilter, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    use_prefilter: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(nofilter.stats.rows_decrypted, 20);
        // Same matches either way.
        assert_eq!(result.stats.matched_pairs, nofilter.stats.matched_pairs);
    }

    #[test]
    fn decrypt_cache_serves_full_repeats() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        let (first, first_obs) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(first.stats.decrypt_cache_hits, 0, "cold cache");
        // Byte-identical tokens: the repeat must skip every SJ.Dec.
        let (second, second_obs) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(
            second.stats.decrypt_cache_hits as usize, second.stats.rows_decrypted,
            "100% of rows served from the cache"
        );
        assert_eq!(second.stats.rows_decrypted, first.stats.rows_decrypted);
        assert_eq!(
            second.stats.rows_prefiltered_out,
            first.stats.rows_prefiltered_out
        );
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&first), key(&second));
        assert_eq!(first_obs.equality_classes, second_obs.equality_classes);
        // Fresh tokens for the same query (new k) must miss.
        let fresh = client.query_tokens(&query).unwrap();
        let (third, _) = server.execute_join(&fresh, &opts).unwrap();
        assert_eq!(third.stats.decrypt_cache_hits, 0);
    }

    #[test]
    fn decrypt_cache_disabled_never_hits() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions {
            decrypt_cache: false,
            ..Default::default()
        };
        let (a, _) = server.execute_join(&tokens, &opts).unwrap();
        let (b, _) = server.execute_join(&tokens, &opts).unwrap();
        assert_eq!(a.stats.decrypt_cache_hits, 0);
        assert_eq!(b.stats.decrypt_cache_hits, 0);
        // And a cache-off run after a cache-on warmup returns the same
        // bytes.
        let (warm, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&a), key(&warm));
    }

    #[test]
    fn table_update_invalidates_decrypt_cache() {
        let (mut client, mut server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let opts = JoinOptions::default();
        server.execute_join(&tokens, &opts).unwrap();
        let (hit, _) = server.execute_join(&tokens, &opts).unwrap();
        assert!(hit.stats.decrypt_cache_hits > 0, "warm before the update");

        // Re-upload L (same rows re-encrypted): its entries must drop
        // while R's survive — the next run decrypts L fresh but still
        // serves R from the cache.
        let mut left = Table::new(Schema::new("L", &["key", "color", "size"]));
        left.push_row(vec![Value::Int(1), "red".into(), "s".into()]);
        left.push_row(vec![Value::Int(2), "blue".into(), "m".into()]);
        left.push_row(vec![Value::Int(3), "red".into(), "l".into()]);
        let cfg = TableConfig {
            join_column: "key".into(),
            filter_columns: vec!["color".into(), "size".into()],
        };
        let reencrypted = client.encrypt_table(&left, cfg).unwrap();
        server.insert_table(reencrypted);

        let (after, _) = server.execute_join(&tokens, &opts).unwrap();
        let r_rows = 3;
        assert_eq!(
            after.stats.decrypt_cache_hits, r_rows,
            "only R's side may hit after L was replaced"
        );
    }

    #[test]
    fn decrypt_cache_eviction_keeps_the_cache_bounded() {
        let (mut client, server, query) = setup();
        let opts = JoinOptions::default();
        // Far more distinct token bundles than the cap; every run is
        // fresh so nothing hits, and the cache must not grow past CAP.
        for _ in 0..(super::DECRYPT_CACHE_CAP / 2 + 4) {
            let tokens = client.query_tokens(&query).unwrap();
            let (res, _) = server.execute_join(&tokens, &opts).unwrap();
            assert_eq!(res.stats.decrypt_cache_hits, 0);
        }
        let cache = server.decrypt_cache.lock().unwrap();
        assert!(cache.entries.len() <= super::DECRYPT_CACHE_CAP);
        assert_eq!(cache.entries.len(), cache.order.len());
    }

    #[test]
    fn unknown_table_errors() {
        let (mut client, _server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let empty = DbServer::<MockEngine>::new();
        assert!(matches!(
            empty.execute_join(&tokens, &JoinOptions::default()),
            Err(DbError::UnknownTable(_))
        ));
    }
}
