//! The semi-honest server: stores encrypted tables, executes join
//! queries with `SJ.Dec` + `SJ.Match`, and reports the equality pattern
//! it (unavoidably) observes — the instrumentation the leakage
//! experiments consume.

use crate::encrypted::{EncryptedTable, QueryTokens, SideTokens};
use crate::error::DbError;
use crate::join::{hash_join, nested_loop_join, JoinAlgorithm, MatchOutcome};
use eqjoin_core::{SecureJoin, SjToken};
use eqjoin_pairing::Engine;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Join execution options.
#[derive(Clone, Copy, Debug)]
pub struct JoinOptions {
    /// Matching algorithm (hash join is the paper's default).
    pub algorithm: JoinAlgorithm,
    /// Honor pre-filter tags if the ciphertexts carry them.
    pub use_prefilter: bool,
    /// Worker threads for the decryption phase (1 = sequential; the
    /// paper's setup is single-threaded, §6.5 discusses parallelism).
    pub threads: usize,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            algorithm: JoinAlgorithm::Hash,
            use_prefilter: true,
            threads: 1,
        }
    }
}

/// Counters and timings from one join execution.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Rows considered on each side after pre-filtering.
    pub rows_decrypted: usize,
    /// Rows skipped by the pre-filter.
    pub rows_prefiltered_out: usize,
    /// Equality comparisons / bucket probes in the match phase.
    pub comparisons: u64,
    /// Matched row pairs.
    pub matched_pairs: usize,
    /// Wall time of the `SJ.Dec` phase.
    pub decrypt_time: Duration,
    /// Wall time of the `SJ.Match` phase.
    pub match_time: Duration,
}

/// One matched pair, carrying the sealed payloads back to the client.
#[derive(Clone, Debug)]
pub struct MatchedPair {
    /// Row index in the left table.
    pub left_row: usize,
    /// Row index in the right table.
    pub right_row: usize,
    /// Sealed payload of the left row.
    pub left_payload: Vec<u8>,
    /// Sealed payload of the right row.
    pub right_payload: Vec<u8>,
}

/// The server's response to a join query.
#[derive(Clone, Debug)]
pub struct EncryptedJoinResult {
    /// Matched pairs with payloads.
    pub pairs: Vec<MatchedPair>,
    /// Execution statistics.
    pub stats: ServerStats,
}

/// What the adversary controlling the server learns from one query: the
/// equality classes among decrypted rows, labeled `(table name, row)`.
#[derive(Clone, Debug)]
pub struct JoinObservation {
    /// Query id (from the token bundle).
    pub query_id: u64,
    /// Observed equality classes (≥ 2 members) as `(table, row index)`.
    pub equality_classes: Vec<Vec<(String, usize)>>,
}

/// The semi-honest DBMS server.
pub struct DbServer<E: Engine> {
    tables: HashMap<String, EncryptedTable<E>>,
}

impl<E: Engine> Default for DbServer<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Engine> DbServer<E> {
    /// Empty server.
    pub fn new() -> Self {
        DbServer {
            tables: HashMap::new(),
        }
    }

    /// Upload an encrypted table.
    pub fn insert_table(&mut self, table: EncryptedTable<E>) {
        self.tables.insert(table.name.clone(), table);
    }

    /// Access a stored table.
    pub fn table(&self, name: &str) -> Option<&EncryptedTable<E>> {
        self.tables.get(name)
    }

    /// Execute a join query: per-row `SJ.Dec` on both sides (optionally
    /// pre-filtered and parallel), then `SJ.Match` via the selected
    /// algorithm. Returns the encrypted result and the leakage
    /// observation.
    pub fn execute_join(
        &self,
        tokens: &QueryTokens<E>,
        opts: &JoinOptions,
    ) -> Result<(EncryptedJoinResult, JoinObservation), DbError> {
        let left_table = self
            .tables
            .get(&tokens.left.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.left.table.clone()))?;
        let right_table = self
            .tables
            .get(&tokens.right.table)
            .ok_or_else(|| DbError::UnknownTable(tokens.right.table.clone()))?;

        let mut stats = ServerStats::default();

        let t0 = Instant::now();
        let left_d = decrypt_side(left_table, &tokens.left, opts, &mut stats);
        let right_d = decrypt_side(right_table, &tokens.right, opts, &mut stats);
        stats.decrypt_time = t0.elapsed();

        let t1 = Instant::now();
        let outcome: MatchOutcome = match opts.algorithm {
            JoinAlgorithm::Hash => hash_join(&left_d, &right_d),
            JoinAlgorithm::NestedLoop => nested_loop_join(&left_d, &right_d),
        };
        stats.match_time = t1.elapsed();
        stats.comparisons = outcome.comparisons;
        stats.matched_pairs = outcome.pairs.len();

        let pairs = outcome
            .pairs
            .iter()
            .map(|&(l, r)| MatchedPair {
                left_row: l,
                right_row: r,
                left_payload: left_table.rows[l].payload.clone(),
                right_payload: right_table.rows[r].payload.clone(),
            })
            .collect();

        let observation = JoinObservation {
            query_id: tokens.query_id,
            equality_classes: outcome
                .equality_classes
                .iter()
                .map(|class| {
                    class
                        .iter()
                        .map(|&(side, row)| {
                            let name = if side == 0 {
                                tokens.left.table.clone()
                            } else {
                                tokens.right.table.clone()
                            };
                            (name, row)
                        })
                        .collect()
                })
                .collect(),
        };

        Ok((EncryptedJoinResult { pairs, stats }, observation))
    }
}

/// Decrypt one side: returns `(row index, D bytes)` for every candidate
/// row that survives the pre-filter.
fn decrypt_side<E: Engine>(
    table: &EncryptedTable<E>,
    side: &SideTokens<E>,
    opts: &JoinOptions,
    stats: &mut ServerStats,
) -> Vec<(usize, Vec<u8>)> {
    // Pre-filter: a row survives if, for every constrained column, its
    // tag is in the allowed set.
    let candidates: Vec<usize> = table
        .rows
        .iter()
        .enumerate()
        .filter(|(_, row)| {
            if !opts.use_prefilter || side.prefilter.is_empty() {
                return true;
            }
            match &row.tags {
                None => true, // table carries no tags; cannot pre-filter
                Some(tags) => side
                    .prefilter
                    .iter()
                    .all(|(col, allowed)| allowed.contains(&tags[*col])),
            }
        })
        .map(|(i, _)| i)
        .collect();
    stats.rows_prefiltered_out += table.rows.len() - candidates.len();
    stats.rows_decrypted += candidates.len();

    let decrypt_one = |&idx: &usize| -> (usize, Vec<u8>) {
        let d = SecureJoin::<E>::decrypt(&side.token, &table.rows[idx].cipher);
        (idx, SecureJoin::<E>::match_key(&d))
    };

    if opts.threads <= 1 || candidates.len() < 2 {
        candidates.iter().map(decrypt_one).collect()
    } else {
        parallel_decrypt(&candidates, &side.token, table, opts.threads)
    }
}

/// Chunked parallel decryption with std scoped threads.
fn parallel_decrypt<E: Engine>(
    candidates: &[usize],
    token: &SjToken<E>,
    table: &EncryptedTable<E>,
    threads: usize,
) -> Vec<(usize, Vec<u8>)> {
    let chunk_size = candidates.len().div_ceil(threads);
    let mut results: Vec<Vec<(usize, Vec<u8>)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&idx| {
                            let d = SecureJoin::<E>::decrypt(token, &table.rows[idx].cipher);
                            (idx, SecureJoin::<E>::match_key(&d))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("decrypt worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use eqjoin_pairing::MockEngine;

    fn setup() -> (DbClient<MockEngine>, DbServer<MockEngine>, JoinQuery) {
        let mut client = DbClient::<MockEngine>::new(2, 2, 99);
        let mut server = DbServer::new();

        let mut left = Table::new(Schema::new("L", &["key", "color", "size"]));
        left.push_row(vec![Value::Int(1), "red".into(), "s".into()]);
        left.push_row(vec![Value::Int(2), "blue".into(), "m".into()]);
        left.push_row(vec![Value::Int(3), "red".into(), "l".into()]);

        let mut right = Table::new(Schema::new("R", &["key", "shape", "weight"]));
        right.push_row(vec![Value::Int(1), "disc".into(), "w1".into()]);
        right.push_row(vec![Value::Int(1), "cube".into(), "w2".into()]);
        right.push_row(vec![Value::Int(4), "cone".into(), "w3".into()]);

        let cfg = |cols: [&str; 2]| TableConfig {
            join_column: "key".into(),
            filter_columns: cols.iter().map(|c| (*c).to_string()).collect(),
        };
        let enc_l = client.encrypt_table(&left, cfg(["color", "size"])).unwrap();
        let enc_r = client
            .encrypt_table(&right, cfg(["shape", "weight"]))
            .unwrap();
        server.insert_table(enc_l);
        server.insert_table(enc_r);

        let query = JoinQuery::on("L", "key", "R", "key");
        (client, server, query)
    }

    #[test]
    fn unfiltered_join_finds_key_matches() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, obs) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // key 1 in L matches rows 0 and 1 in R.
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1)]);
        assert_eq!(result.stats.matched_pairs, 2);
        assert_eq!(result.stats.rows_decrypted, 6);
        assert_eq!(obs.equality_classes.len(), 1);
        assert_eq!(obs.equality_classes[0].len(), 3);
    }

    #[test]
    fn filtered_join_restricts_matches() {
        let (mut client, server, _) = setup();
        let query = JoinQuery::on("L", "key", "R", "key")
            .filter("L", "color", vec!["red".into()])
            .filter("R", "shape", vec!["cube".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let pairs: Vec<(usize, usize)> = result
            .pairs
            .iter()
            .map(|p| (p.left_row, p.right_row))
            .collect();
        // Only L row 0 (key 1, red) × R row 1 (key 1, cube).
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn client_decrypts_results() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let rows = client.decrypt_result(&query, &result).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].left.get(0), &Value::Int(1));
        assert_eq!(rows[0].right.get(0), &Value::Int(1));
        assert_eq!(rows[0].theta, Value::Int(1));
    }

    #[test]
    fn nested_loop_agrees_with_hash() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (hash_res, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let (nl_res, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    algorithm: JoinAlgorithm::NestedLoop,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&hash_res), key(&nl_res));
        assert!(nl_res.stats.comparisons > hash_res.stats.comparisons);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (mut client, server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let (seq, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        let (par, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        let key = |r: &EncryptedJoinResult| -> Vec<(usize, usize)> {
            r.pairs.iter().map(|p| (p.left_row, p.right_row)).collect()
        };
        assert_eq!(key(&seq), key(&par));
    }

    #[test]
    fn prefilter_reduces_decryptions() {
        use crate::client::ClientConfig;
        let mut client =
            DbClient::<MockEngine>::with_config(ClientConfig::new(1, 2).seed(5).prefilter(true));
        let mut server = DbServer::new();
        let mut t = Table::new(Schema::new("T", &["k", "attr"]));
        for i in 0..10 {
            let attr = if i < 2 { "hit" } else { "miss" };
            t.push_row(vec![Value::Int(i), attr.into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["attr".into()],
                },
            )
            .unwrap();
        server.insert_table(enc);
        let query = JoinQuery::on("T", "k", "T", "k").filter("T", "attr", vec!["hit".into()]);
        let tokens = client.query_tokens(&query).unwrap();
        let (result, _) = server
            .execute_join(&tokens, &JoinOptions::default())
            .unwrap();
        // Self-join: the filter applies to both sides, 2 rows each.
        assert_eq!(result.stats.rows_decrypted, 4);
        assert_eq!(result.stats.rows_prefiltered_out, 16);
        // Without the prefilter everything is decrypted.
        let (nofilter, _) = server
            .execute_join(
                &tokens,
                &JoinOptions {
                    use_prefilter: false,
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(nofilter.stats.rows_decrypted, 20);
        // Same matches either way.
        assert_eq!(result.stats.matched_pairs, nofilter.stats.matched_pairs);
    }

    #[test]
    fn unknown_table_errors() {
        let (mut client, _server, query) = setup();
        let tokens = client.query_tokens(&query).unwrap();
        let empty = DbServer::<MockEngine>::new();
        assert!(matches!(
            empty.execute_join(&tokens, &JoinOptions::default()),
            Err(DbError::UnknownTable(_))
        ));
    }
}
