//! Plaintext relational model: typed values, rows, schemas and tables,
//! plus a compact self-describing binary codec used for the encrypted
//! row payloads.

use std::fmt;

/// A typed SQL-ish value.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
    /// Fixed-point decimal with two fraction digits, stored as cents.
    Decimal(i64),
    /// Date as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Canonical bytes — the input to `H(·)`, the attribute embedding and
    /// the pre-filter PRF. Injective across types via a tag byte.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12);
        match self {
            Value::Int(v) => {
                out.push(0x01);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(0x02);
                out.extend_from_slice(s.as_bytes());
            }
            Value::Decimal(c) => {
                out.push(0x03);
                out.extend_from_slice(&c.to_le_bytes());
            }
            Value::Date(d) => {
                out.push(0x04);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`Value::canonical_bytes`] — the canonical encoding is
    /// self-delimiting given the blob length, so a single value can be
    /// sealed and recovered on its own (the per-column payload path).
    pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Value> {
        let (tag, rest) = bytes.split_first()?;
        Some(match tag {
            0x01 => Value::Int(i64::from_le_bytes(rest.try_into().ok()?)),
            0x02 => Value::Str(String::from_utf8(rest.to_vec()).ok()?),
            0x03 => Value::Decimal(i64::from_le_bytes(rest.try_into().ok()?)),
            0x04 => Value::Date(i32::from_le_bytes(rest.try_into().ok()?)),
            _ => return None,
        })
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let body = self.canonical_bytes();
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
    }

    fn decode_from(bytes: &[u8]) -> Option<(Value, usize)> {
        if bytes.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
        let body = bytes.get(4..4 + len)?;
        let (tag, rest) = body.split_first()?;
        let value = match tag {
            0x01 => Value::Int(i64::from_le_bytes(rest.try_into().ok()?)),
            0x02 => Value::Str(String::from_utf8(rest.to_vec()).ok()?),
            0x03 => Value::Decimal(i64::from_le_bytes(rest.try_into().ok()?)),
            0x04 => Value::Date(i32::from_le_bytes(rest.try_into().ok()?)),
            _ => return None,
        };
        Some((value, 4 + len))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Decimal(c) => write!(f, "{}.{:02}", c / 100, (c % 100).abs()),
            Value::Date(d) => {
                // Render as an ISO-ish date from the day offset (civil
                // conversion is enough for display purposes).
                write!(f, "day+{d}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A table schema: name plus ordered column names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Table name.
    pub name: String,
    /// Ordered column names.
    pub columns: Vec<String>,
}

impl Schema {
    /// Construct a schema.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Schema {
            name: name.to_owned(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }
}

/// One table row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Value accessor by column index.
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Serialize for the encrypted payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
        for v in &self.0 {
            v.encode_into(&mut out);
        }
        out
    }

    /// Parse a payload produced by [`Row::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Row> {
        let count = u32::from_le_bytes(bytes.get(..4)?.try_into().ok()?) as usize;
        let mut values = Vec::with_capacity(count);
        let mut pos = 4;
        for _ in 0..count {
            let (v, used) = Value::decode_from(&bytes[pos..])?;
            values.push(v);
            pos += used;
        }
        (pos == bytes.len()).then_some(Row(values))
    }
}

/// A plaintext table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// The schema.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Construct an empty table.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Append a row (arity-checked).
    pub fn push_row(&mut self, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.schema.columns.len(),
            "row arity mismatch for table {}",
            self.schema.name
        );
        self.rows.push(Row(values));
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column values by name (test/reporting convenience).
    pub fn column(&self, name: &str) -> Option<Vec<&Value>> {
        let idx = self.schema.column_index(name)?;
        Some(self.rows.iter().map(|r| r.get(idx)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_bytes_injective_across_types() {
        // Int 1 vs Date 1 vs Str "\x01..." must all differ.
        let variants = [
            Value::Int(1),
            Value::Date(1),
            Value::Decimal(1),
            Value::Str("\u{1}".into()),
        ];
        for (i, a) in variants.iter().enumerate() {
            for (j, b) in variants.iter().enumerate() {
                assert_eq!(
                    a.canonical_bytes() == b.canonical_bytes(),
                    i == j,
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn row_codec_roundtrip() {
        let row = Row(vec![
            Value::Int(-42),
            Value::Str("hello world".into()),
            Value::Decimal(123456),
            Value::Date(19000),
            Value::Str(String::new()),
        ]);
        assert_eq!(Row::decode(&row.encode()).unwrap(), row);
    }

    #[test]
    fn canonical_bytes_round_trip_single_values() {
        for v in [
            Value::Int(-42),
            Value::Str("hello".into()),
            Value::Str(String::new()),
            Value::Decimal(123456),
            Value::Date(19000),
        ] {
            assert_eq!(Value::from_canonical_bytes(&v.canonical_bytes()), Some(v));
        }
        assert_eq!(Value::from_canonical_bytes(&[]), None);
        assert_eq!(Value::from_canonical_bytes(&[0x09, 1, 2]), None);
        // Truncated Int body.
        assert_eq!(Value::from_canonical_bytes(&[0x01, 1, 2]), None);
    }

    #[test]
    fn row_codec_rejects_garbage() {
        assert!(Row::decode(&[]).is_none());
        assert!(Row::decode(&[1, 0, 0, 0]).is_none());
        let mut good = Row(vec![Value::Int(5)]).encode();
        good.push(0); // trailing junk
        assert!(Row::decode(&good).is_none());
        // Unknown tag byte.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0x7f, 0x00]);
        assert!(Row::decode(&bad).is_none());
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new("t", &["a", "b", "c"]);
        assert_eq!(s.column_index("b"), Some(1));
        assert_eq!(s.column_index("z"), None);
    }

    #[test]
    fn table_push_and_column() {
        let mut t = Table::new(Schema::new("t", &["id", "name"]));
        t.push_row(vec![Value::Int(1), "alpha".into()]);
        t.push_row(vec![Value::Int(2), "beta".into()]);
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.column("name").unwrap(),
            vec![&Value::Str("alpha".into()), &Value::Str("beta".into())]
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(Schema::new("t", &["a", "b"]));
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Decimal(12345).to_string(), "123.45");
        assert_eq!(Value::Decimal(-12345).to_string(), "-123.45");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
    }
}
