//! The encrypted DBMS engine the paper evaluates, organized around a
//! [`Session`] for *series* of queries — the object the paper's leakage
//! result (Corollary 5.2.2) is actually about.
//!
//! ```text
//!                 Session<E>  (trusted side)
//!   ┌────────────────────────────────────────────────┐
//!   │ catalog ── SqlPlanner ──▶ PreparedQuery        │
//!   │                              │                 │
//!   │ DbClient (keys) ◀── token cache (per series)   │
//!   │    │ encrypt_table  │ query_tokens on miss     │
//!   │    ▼                ▼                          │
//!   │ LeakageLedger   Request::{InsertTable,         │
//!   │ (report)                  ExecuteJoin}         │
//!   └───────────────────────┬────────────────────────┘
//!                           │  ServerApi (protocol)
//!                           ▼
//!              LocalBackend / remote backend
//!   ┌────────────────────────────────────────────────┐
//!   │ DbServer: SJ.Dec per row (pre-filter, threads) │
//!   │           SJ.Match via hash / nested-loop join │
//!   │           → EncryptedJoinResult + observation  │
//!   └────────────────────────────────────────────────┘
//! ```
//!
//! Most callers only need the session layer:
//!
//! * [`session`] — [`Session`], [`SessionConfig`], [`PreparedQuery`],
//!   [`ResultSet`], the per-series token cache and the embedded
//!   [`LeakageLedger`](eqjoin_leakage::LeakageLedger).
//! * [`protocol`] — the [`ServerApi`] transport trait and the
//!   [`Request`]/[`Response`] message enums (including batched series)
//!   with their wire codec.
//! * [`backend`] — the transports: in-process [`LocalBackend`],
//!   networked [`RemoteBackend`] (+ [`EqjoinServer`], the engine behind
//!   the `eqjoind` binary), shard-routing [`ShardedBackend`], and
//!   [`TransportStats`].
//!
//! The documented low-level layer underneath (useful for experiments
//! that need to drive each protocol step by hand):
//!
//! * [`data`] — the plaintext relational model (`Value`, `Row`, `Table`).
//! * [`query`] — logical equi-join queries with `IN`-clause filters.
//! * [`client`] — key management, table encryption, token generation,
//!   result decryption ([`DbClient`], configured via [`ClientConfig`]).
//! * [`server`] — storage, per-row `SJ.Dec`, `O(n)` hash join /
//!   `O(n²)` nested-loop join, optional parallelism, and the optional
//!   selectivity pre-filter (§4.3).
//! * [`join`] — the matching algorithms on decrypted `D` values.

pub mod backend;
pub mod client;
pub mod data;
pub mod encrypted;
pub mod error;
pub mod join;
pub mod protocol;
pub mod query;
pub mod server;
pub mod session;

pub use backend::{EqjoinServer, LocalBackend, RemoteBackend, ShardedBackend, TransportStats};
pub use client::{ClientConfig, ClientStats, DbClient, JoinedRow, TableConfig};
pub use data::{Row, Schema, Table, Value};
pub use encrypted::{EncryptedRow, EncryptedTable, QueryTokens, SideTokens};
pub use error::DbError;
pub use join::JoinAlgorithm;
pub use protocol::{Request, Response, ServerApi};
pub use query::{InFilter, JoinQuery};
pub use server::{
    DbServer, EncryptedJoinResult, JoinObservation, JoinOptions, MatchedPair, ServerStats,
};
pub use session::{
    Catalog, LeakageReport, PreparedQuery, QueryInput, ResultSet, Session, SessionConfig,
    SessionStats, SqlPlanner,
};
