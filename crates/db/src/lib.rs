//! The encrypted DBMS engine the paper evaluates, organized around a
//! [`Session`] for *series* of select-project-join queries — the
//! object the paper's leakage result (Corollary 5.2.2) is actually
//! about.
//!
//! ```text
//!                 Session<E>  (trusted side)
//!   ┌────────────────────────────────────────────────┐
//!   │ catalog ─ SqlPlanner ▶ QueryPlan ─ lower ──▶   │
//!   │                     PreparedQuery (stages)     │
//!   │                              │                 │
//!   │ DbClient (keys) ◀── token cache (per stage)    │
//!   │    │ encrypt_table  │ query_tokens on miss     │
//!   │    ▼                ▼                          │
//!   │ LeakageLedger   Request::Batch of pairwise     │
//!   │ (per stage)       ExecuteJoins (+ projection)  │
//!   │ stitch + per-column decrypt ◀──────┐           │
//!   └───────────────────────┬────────────┼───────────┘
//!                           │  ServerApi (protocol)
//!                           ▼
//!              LocalBackend / remote backend
//!   ┌────────────────────────────────────────────────┐
//!   │ DbServer: SJ.Dec per row (pre-filter, threads) │
//!   │           SJ.Match via hash / nested-loop join │
//!   │           → EncryptedJoinResult (projected     │
//!   │             payload columns) + observation     │
//!   └────────────────────────────────────────────────┘
//! ```
//!
//! Most callers only need the plan and session layers:
//!
//! * [`plan`] — the [`QueryPlan`] IR: logical
//!   `Scan → Filter → Join → Project` trees, validated against the
//!   session [`Catalog`] and lowered to pairwise join stages (multi-way
//!   chains execute as pipelined pairwise joins; projections select
//!   which sealed columns ship and decrypt).
//! * [`session`] — [`Session`], [`SessionConfig`], [`PreparedQuery`],
//!   [`ResultSet`], the per-stage token cache and the embedded
//!   [`LeakageLedger`](eqjoin_leakage::LeakageLedger) (one entry per
//!   executed stage; see the session docs for why a chain adds nothing
//!   beyond the closure bound).
//! * [`protocol`] — the [`ServerApi`] transport trait and the
//!   [`Request`]/[`Response`] message enums (including batched series
//!   and payload projections) with their wire codec.
//! * [`backend`] — the transports: in-process [`LocalBackend`],
//!   networked [`RemoteBackend`] (+ [`EqjoinServer`], the engine behind
//!   the `eqjoind` binary), shard-routing [`ShardedBackend`], and
//!   [`TransportStats`]. Backends only ever see pairwise
//!   `ExecuteJoin`s — plans reach them as ordinary batches.
//!
//! The documented low-level layer underneath (useful for experiments
//! that need to drive each protocol step by hand):
//!
//! * [`data`] — the plaintext relational model (`Value`, `Row`, `Table`).
//! * [`query`] — two-table equi-join queries with `IN`-clause filters
//!   (the pairwise special case; [`QueryPlan::pairwise`] embeds one).
//! * [`client`] — key management, per-column table encryption, token
//!   generation, result decryption ([`DbClient`], configured via
//!   [`ClientConfig`]; [`ClientStats`] counts the column decrypts a
//!   projection performs and skips).
//! * [`store`] — the storage core ([`EncryptedStore`]):
//!   column-oriented, row-versioned tables with **prepared pairing
//!   state** per ciphertext, a row-granular LRU decrypt cache,
//!   incremental `InsertRows`/`DeleteRows`, and checksummed snapshot
//!   persistence (warm restarts).
//! * [`server`] — the query executor over the store: per-row `SJ.Dec`,
//!   `O(n)` hash join / `O(n²)` nested-loop join, optional
//!   parallelism, the optional selectivity pre-filter (§4.3), and
//!   payload projection ([`PayloadProjection`]).
//! * [`join`] — the matching algorithms on decrypted `D` values, plus
//!   [`stitch_stages`](join::stitch_stages), which composes pairwise
//!   stage results into chain tuples.

#![forbid(unsafe_code)]

pub mod backend;
pub mod client;
pub mod data;
pub mod encrypted;
pub mod error;
pub mod join;
pub mod obs_bridge;
pub mod plan;
pub mod protocol;
pub mod query;
pub mod server;
pub mod session;
pub mod store;

pub use backend::{
    EqjoinServer, LocalBackend, RemoteBackend, RemoteConfig, RetryPolicy, ServerHandle,
    ShardedBackend, TransportStats,
};
pub use client::{ClientConfig, ClientStats, DbClient, JoinedRow, TableConfig};
pub use data::{Row, Schema, Table, Value};
pub use encrypted::{EncryptedRow, EncryptedTable, QueryTokens, SideTokens};
pub use error::DbError;
pub use join::JoinAlgorithm;
pub use plan::{ColumnId, LoweredPlan, OutputColumn, PlanNode, QueryPlan, Stage};
pub use protocol::{
    peek_envelope, valid_tenant_name, Request, RequestEnvelope, Response, ServerApi, ServerMetrics,
};
pub use query::{InFilter, JoinQuery};
pub use server::{
    DbServer, EncryptedJoinResult, JoinObservation, JoinOptions, MatchedPair, PayloadProjection,
    ServerStats,
};
pub use session::{
    Catalog, LeakageReport, PreparedQuery, QueryInput, ResultSet, Session, SessionConfig,
    SessionStats, SqlOutcome, SqlPlanner, SqlStatement, DEFAULT_COPY_CHUNK_ROWS,
};
pub use store::{EncryptedStore, TableStore, DEFAULT_DECRYPT_CACHE_CAP};
