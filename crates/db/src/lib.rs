//! The encrypted DBMS engine the paper evaluates: a trusted client that
//! encrypts relational tables and issues join tokens, and a semi-honest
//! server that executes `SJ.Dec`/`SJ.Match` and returns matching
//! (still-encrypted) row pairs.
//!
//! ```text
//!          client (trusted)                server (semi-honest)
//!   ┌──────────────────────────┐      ┌───────────────────────────┐
//!   │ DbClient                 │      │ DbServer                  │
//!   │  encrypt_table ──────────┼──────▶ insert_table              │
//!   │  query_tokens(JoinQuery) ┼──────▶ execute_join              │
//!   │  decrypt_result ◀────────┼──────┼── EncryptedJoinResult     │
//!   └──────────────────────────┘      └───────────────────────────┘
//! ```
//!
//! * [`data`] — the plaintext relational model (`Value`, `Row`, `Table`).
//! * [`query`] — logical equi-join queries with `IN`-clause filters.
//! * [`client`] — key management, table encryption, token generation,
//!   result decryption.
//! * [`server`] — storage, per-row `SJ.Dec`, `O(n)` hash join /
//!   `O(n²)` nested-loop join, optional crossbeam parallelism, and the
//!   optional selectivity pre-filter (§4.3: orthogonal searchable
//!   encryption that lets the server decrypt only rows matching the
//!   selection — the configuration the paper's Figures 3/4 measure).
//! * [`join`] — the matching algorithms on decrypted `D` values.

pub mod client;
pub mod data;
pub mod encrypted;
pub mod error;
pub mod join;
pub mod query;
pub mod server;

pub use client::{DbClient, JoinedRow, TableConfig};
pub use data::{Row, Schema, Table, Value};
pub use encrypted::{EncryptedRow, EncryptedTable, QueryTokens, SideTokens};
pub use error::DbError;
pub use join::JoinAlgorithm;
pub use query::{InFilter, JoinQuery};
pub use server::{DbServer, EncryptedJoinResult, JoinObservation, JoinOptions, ServerStats};
