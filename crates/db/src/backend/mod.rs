//! Backend implementations of the [`ServerApi`](crate::protocol::ServerApi)
//! transport trait, plus the transport-level plumbing they share.
//!
//! ```text
//!   Session ──▶ ServerApi (protocol messages)
//!                 ├── LocalBackend    in-process DbServer behind RwLock
//!                 ├── RemoteBackend   length-framed TCP to an eqjoind server
//!                 └── ShardedBackend  fan-out across N inner backends
//! ```
//!
//! All backends are `Send + Sync` and synchronize internally, so one
//! instance can serve many sessions or connection threads concurrently;
//! each also keeps [`TransportStats`] so benches and tests can observe
//! round trips, batching and bytes on the wire.

mod local;
mod remote;
mod sharded;
mod transport;

pub use local::LocalBackend;
pub use remote::{EqjoinServer, RemoteBackend, RemoteConfig, RetryPolicy, ServerHandle};
pub use sharded::ShardedBackend;
pub use transport::{read_frame, write_frame, TransportCounters, TransportStats, MAX_FRAME_BYTES};
