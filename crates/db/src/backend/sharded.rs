//! [`ShardedBackend`]: one [`ServerApi`] facade over N inner backends,
//! fanning batched request series out with scoped threads and merging
//! the responses deterministically.
//!
//! # Placement
//!
//! The paper's workload is a *series of queries* over tables encrypted
//! once — read-heavy by construction — so the placement policy is full
//! replication for storage and hash placement for work:
//!
//! * `InsertTable` (and `Ping`) is placed on **every** shard, so any
//!   shard can execute any join. Uploads fan out concurrently.
//! * `ExecuteJoin` is placed on **one** shard, chosen by a stable FNV-1a
//!   hash of the `(left table, right table)` pair — deterministic
//!   across runs and processes, so a series replays onto the same
//!   shards every time.
//! * A `Batch` is split into per-shard sub-batches (original order
//!   preserved within each shard), executed concurrently with
//!   `std::thread::scope`, and reassembled into one same-arity
//!   `Response::Batch` in the original request order.
//!
//! Because every shard holds the full table set, a join executes
//! identically on any shard: results are byte-identical to a single
//! [`LocalBackend`](super::LocalBackend) while distinct table pairs in
//! a series run in parallel. Co-partitioning storage across shards
//! (placing each table once) would need co-location hints at encryption
//! time — future work the placement map below leaves room for.
//!
//! # Deterministic merging
//!
//! For a replicated request the surfaced response is the lowest-index
//! shard's, unless any shard reported an error — then the
//! lowest-index *error* is surfaced. No merge decision depends on
//! thread scheduling.

use super::transport::{TransportCounters, TransportStats};
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use eqjoin_pairing::Engine;

/// Failpoint `sharded::shard_response`, evaluated once per shard
/// dispatch: when armed with a failure action the dispatch is replaced
/// by a typed transport error — a *lost shard*, failing exactly the
/// requests routed to it while every other shard keeps answering (the
/// degraded-execution contract the merge below upholds).
fn lost_shard(shard_id: usize) -> Option<DbError> {
    match eqjoin_failpoint::failpoint!("sharded::shard_response") {
        None => None,
        Some(eqjoin_failpoint::Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        Some(eqjoin_failpoint::Action::Abort) => std::process::abort(),
        Some(_) => Some(DbError::Transport(format!(
            "failpoint sharded::shard_response: shard {shard_id} lost"
        ))),
    }
}

/// Where one request executes.
enum Placement {
    /// Replicated to every shard.
    All,
    /// Routed to a single shard.
    One(usize),
}

/// A shard-routing [`ServerApi`] over N inner backends (any mix of
/// local and remote).
pub struct ShardedBackend<E: Engine> {
    shards: Vec<Box<dyn ServerApi<E>>>,
    counters: TransportCounters,
}

impl<E: Engine> ShardedBackend<E> {
    /// Build over the given shard backends. Panics on an empty shard
    /// set — a router with nowhere to route is a construction bug.
    pub fn new(shards: Vec<Box<dyn ServerApi<E>>>) -> Self {
        assert!(
            !shards.is_empty(),
            "ShardedBackend needs at least one shard"
        );
        ShardedBackend {
            shards,
            counters: TransportCounters::default(),
        }
    }

    /// `n` in-process [`LocalBackend`](super::LocalBackend) shards
    /// (`n` is clamped to at least 1).
    pub fn local(n: usize) -> Self {
        Self::local_with_threads(n, None)
    }

    /// Like [`ShardedBackend::local`], with every shard resolving auto
    /// thread requests to `threads` workers (`eqjoind --shards N
    /// --threads T`).
    pub fn local_with_threads(n: usize, threads: Option<usize>) -> Self {
        Self::local_with_config(n, threads, None)
    }

    /// In-process shards with full server defaults: decrypt workers and
    /// decrypt-cache capacity per shard.
    pub fn local_with_config(n: usize, threads: Option<usize>, cache_cap: Option<usize>) -> Self {
        Self::new(
            (0..n.max(1))
                .map(|_| {
                    Box::new(super::LocalBackend::<E>::with_config(threads, cache_cap))
                        as Box<dyn ServerApi<E>>
                })
                .collect(),
        )
    }

    /// Persistent shards (`eqjoind --shards N --data-dir DIR`): shard
    /// `i` snapshots to `DIR/shard-i.snap`, loading it back on
    /// construction so the whole pool restarts warm.
    pub fn local_persistent(
        n: usize,
        threads: Option<usize>,
        data_dir: &std::path::Path,
        cache_cap: Option<usize>,
        compaction_threshold: u64,
    ) -> Result<Self, DbError> {
        let shards = (0..n.max(1))
            .map(|i| {
                let path = data_dir.join(format!("shard-{i}.snap"));
                Ok(Box::new(super::LocalBackend::<E>::with_persistence(
                    path,
                    threads,
                    cache_cap,
                    compaction_threshold,
                )?) as Box<dyn ServerApi<E>>)
            })
            .collect::<Result<Vec<_>, DbError>>()?;
        Ok(Self::new(shards))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a join of `(left_table, right_table)` is placed on:
    /// FNV-1a over both names, stable across runs and processes.
    pub fn shard_for(&self, left_table: &str, right_table: &str) -> usize {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in left_table
            .as_bytes()
            .iter()
            .chain(std::iter::once(&0u8))
            .chain(right_table.as_bytes())
        {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        (hash % self.shards.len() as u64) as usize
    }

    fn placement(&self, request: &Request<E>) -> Result<Placement, DbError> {
        match request {
            // Storage mutations are replicated: every shard holds the
            // full table set (incremental row updates included), so any
            // shard can execute any join.
            Request::Ping
            | Request::InsertTable(_)
            | Request::InsertRows { .. }
            | Request::DeleteRows { .. }
            | Request::CopyRows { .. }
            // A drain must reach every shard so each flushes its own
            // durable state.
            | Request::Drain => Ok(Placement::All),
            Request::ExecuteJoin { tokens, .. } => Ok(Placement::One(
                self.shard_for(&tokens.left.table, &tokens.right.table),
            )),
            Request::WithTenant { .. } => Err(DbError::Protocol(
                "backend has no tenant support (route through a tenant registry)".into(),
            )),
            Request::Batch(_) => Err(DbError::Protocol("nested request batch".into())),
            // A stats probe riding inside a batch is answered by one
            // shard; its process-wide exposition covers all shards
            // anyway (top-level probes are intercepted in `handle` and
            // answer with the aggregate transport counters instead).
            Request::Stats => Ok(Placement::One(0)),
        }
    }

    /// Split a batch by placement, fan the per-shard sub-batches out
    /// concurrently, and reassemble a same-arity response batch.
    fn handle_batch(&self, requests: Vec<Request<E>>) -> Response {
        let n_slots = requests.len();
        let n_shards = self.shards.len();
        let mut per_shard: Vec<Vec<(usize, Request<E>)>> =
            (0..n_shards).map(|_| Vec::new()).collect();
        let mut merged: Vec<Option<Response>> = (0..n_slots).map(|_| None).collect();
        for (slot, request) in requests.into_iter().enumerate() {
            match self.placement(&request) {
                // audit-allow(panic-freedom): `slot` comes from enumerate() over the vec that sized `merged`
                Err(e) => merged[slot] = Some(Response::Error(e)),
                // audit-allow(panic-freedom): placement() yields indices modulo self.shards.len(), which sized `per_shard`
                Ok(Placement::One(shard)) => per_shard[shard].push((slot, request)),
                Ok(Placement::All) => {
                    for (shard, bucket) in per_shard.iter_mut().enumerate() {
                        if shard + 1 == n_shards {
                            bucket.push((slot, request));
                            break;
                        }
                        bucket.push((slot, request.clone()));
                    }
                }
            }
        }

        // Fan out: one scoped worker per non-empty shard sub-batch.
        let mut shard_results: Vec<(usize, Vec<(usize, Response)>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard_id, (shard, items)) in self.shards.iter().zip(per_shard).enumerate() {
                if items.is_empty() {
                    continue;
                }
                self.counters.add_round_trips(1);
                handles.push((
                    shard_id,
                    scope.spawn(move || {
                        let (slots, reqs): (Vec<usize>, Vec<Request<E>>) =
                            items.into_iter().unzip();
                        if let Some(e) = lost_shard(shard_id) {
                            return slots
                                .into_iter()
                                .map(|slot| (slot, Response::Error(e.clone())))
                                .collect();
                        }
                        match shard.handle(Request::Batch(reqs)) {
                            Response::Batch(responses) if responses.len() == slots.len() => {
                                slots.into_iter().zip(responses).collect::<Vec<_>>()
                            }
                            Response::Error(e) => slots
                                .into_iter()
                                .map(|slot| (slot, Response::Error(e.clone())))
                                .collect(),
                            _ => slots
                                .into_iter()
                                .map(|slot| {
                                    (
                                        slot,
                                        Response::Error(DbError::Protocol(
                                            "shard answered a batch with the wrong response kind"
                                                .into(),
                                        )),
                                    )
                                })
                                .collect(),
                        }
                    }),
                ));
            }
            for (shard_id, handle) in handles {
                // A worker that panicked produced no results; its slots
                // stay unfilled and surface below as typed
                // "shard never answered" errors instead of poisoning
                // the whole server.
                let results = handle.join().unwrap_or_else(|_| Vec::new());
                shard_results.push((shard_id, results));
            }
        });

        // Deterministic merge: walk shards in index order; the first
        // response fills a slot, and a later *error* from a replicated
        // request overrides an earlier success (lowest-index error
        // wins because shards are visited in order).
        shard_results.sort_by_key(|(shard_id, _)| *shard_id);
        for (_, results) in shard_results {
            for (slot, response) in results {
                // audit-allow(panic-freedom): worker slots are the enumerate() indices that sized `merged`
                match &mut merged[slot] {
                    // audit-allow(panic-freedom): same in-bounds slot as the scrutinee one line up
                    None => merged[slot] = Some(response),
                    Some(existing) => {
                        if !matches!(existing, Response::Error(_))
                            && matches!(response, Response::Error(_))
                        {
                            *existing = response;
                        }
                    }
                }
            }
        }
        Response::Batch(
            merged
                .into_iter()
                .map(|slot| {
                    slot.unwrap_or_else(|| {
                        Response::Error(DbError::Protocol("shard never answered".into()))
                    })
                })
                .collect(),
        )
    }
}

impl<E: Engine> ServerApi<E> for ShardedBackend<E> {
    fn handle(&self, request: Request<E>) -> Response {
        self.counters.record_logical(&request);
        match request {
            Request::Batch(requests) => self.handle_batch(requests),
            // Drain fans out unwrapped (a drain may not ride inside a
            // batch on the wire): every shard flushes; the first error
            // in shard order wins, otherwise the drain is acknowledged.
            Request::Drain => {
                let mut failure = None;
                for (shard_id, shard) in self.shards.iter().enumerate() {
                    self.counters.add_round_trips(1);
                    if let Some(e) = lost_shard(shard_id) {
                        failure.get_or_insert(e);
                        continue;
                    }
                    if let Response::Error(e) = shard.handle(Request::Drain) {
                        failure.get_or_insert(e);
                    }
                }
                match failure {
                    Some(e) => Response::Error(e),
                    None => Response::Pong,
                }
            }
            // A top-level stats probe answers with the *aggregate*
            // transport view (routing counters + shard wire bytes), not
            // one shard's — mirroring `transport_stats`.
            Request::Stats => Response::Stats(crate::protocol::ServerMetrics {
                transport: ServerApi::<E>::transport_stats(self),
                exposition: eqjoin_obs::exposition(),
            }),
            single => match self.placement(&single) {
                // Fast path: a routed request goes straight to its
                // shard — no batch wrapping, no scoped fan-out.
                Ok(Placement::One(shard)) => {
                    self.counters.add_round_trips(1);
                    if let Some(e) = lost_shard(shard) {
                        return Response::Error(e);
                    }
                    // audit-allow(panic-freedom): placement() yields indices modulo self.shards.len()
                    self.shards[shard].handle(single)
                }
                // Replicated requests reuse the batch fan-out/merge.
                Ok(Placement::All) => match self.handle_batch(vec![single]) {
                    Response::Batch(responses) if responses.len() == 1 => {
                        responses.into_iter().next().unwrap_or_else(|| {
                            Response::Error(DbError::Protocol(
                                "sharded fan-out lost a response".into(),
                            ))
                        })
                    }
                    other => other,
                },
                Err(e) => Response::Error(e),
            },
        }
    }

    /// Own routing counters (`round_trips` = shard dispatches), with
    /// wire bytes aggregated from the shards (non-zero when shards are
    /// remote).
    fn transport_stats(&self) -> TransportStats {
        let mut stats = self.counters.snapshot();
        for shard in &self.shards {
            let inner = shard.transport_stats();
            stats.bytes_sent += inner.bytes_sent;
            stats.bytes_received += inner.bytes_received;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalBackend;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use crate::server::JoinOptions;
    use eqjoin_pairing::MockEngine;

    fn encrypted_pair(
        client: &mut DbClient<MockEngine>,
    ) -> (
        crate::encrypted::EncryptedTable<MockEngine>,
        crate::encrypted::EncryptedTable<MockEngine>,
    ) {
        let mut left = Table::new(Schema::new("L", &["k", "a"]));
        let mut right = Table::new(Schema::new("R", &["k", "b"]));
        for i in 0..10 {
            left.push_row(vec![Value::Int(i % 4), "x".into()]);
            right.push_row(vec![Value::Int(i % 3), "y".into()]);
        }
        let cfg = |col: &str| TableConfig {
            join_column: "k".into(),
            filter_columns: vec![col.to_owned()],
        };
        (
            client.encrypt_table(&left, cfg("a")).unwrap(),
            client.encrypt_table(&right, cfg("b")).unwrap(),
        )
    }

    #[test]
    fn sharded_join_matches_single_backend() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 3);
        let (enc_l, enc_r) = encrypted_pair(&mut client);
        let tokens = client
            .query_tokens(&JoinQuery::on("L", "k", "R", "k"))
            .unwrap();

        let single = LocalBackend::<MockEngine>::new();
        single.handle(Request::InsertTable(enc_l.clone()));
        single.handle(Request::InsertTable(enc_r.clone()));
        let sharded = ShardedBackend::<MockEngine>::local(3);
        sharded.handle(Request::InsertTable(enc_l));
        sharded.handle(Request::InsertTable(enc_r));

        let pairs =
            |backend: &dyn ServerApi<MockEngine>| match backend.handle(Request::ExecuteJoin {
                tokens: tokens.clone(),
                options: JoinOptions::default(),
                projection: Default::default(),
            }) {
                Response::JoinExecuted { result, .. } => result
                    .pairs
                    .iter()
                    .map(|p| (p.left_row, p.right_row))
                    .collect::<Vec<_>>(),
                other => panic!("join failed: {other:?}"),
            };
        assert_eq!(pairs(&single), pairs(&sharded));
    }

    #[test]
    fn routing_is_deterministic_and_mixes_shards() {
        let a = ShardedBackend::<MockEngine>::local(4);
        let b = ShardedBackend::<MockEngine>::local(4);
        let mut seen = std::collections::BTreeSet::new();
        for left in ["L", "Customers", "Orders", "Teams", "Employees", "T9"] {
            for right in ["R", "Orders", "Lineitem", "Employees"] {
                assert_eq!(a.shard_for(left, right), b.shard_for(left, right));
                seen.insert(a.shard_for(left, right));
            }
        }
        assert!(seen.len() > 1, "placement must spread across shards");
    }

    #[test]
    fn missing_table_error_is_deterministic() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 3);
        let (enc_l, _) = encrypted_pair(&mut client);
        let tokens = client
            .query_tokens(&JoinQuery::on("L", "k", "R", "k"))
            .unwrap();
        let sharded = ShardedBackend::<MockEngine>::local(3);
        sharded.handle(Request::InsertTable(enc_l));
        match sharded.handle(Request::ExecuteJoin {
            tokens,
            options: JoinOptions::default(),
            projection: Default::default(),
        }) {
            Response::Error(DbError::UnknownTable(t)) => assert_eq!(t, "R"),
            other => panic!("expected UnknownTable, got {other:?}"),
        }
    }

    #[test]
    fn counters_count_shard_dispatches() {
        let sharded = ShardedBackend::<MockEngine>::local(3);
        sharded.handle(Request::Ping); // replicated: 3 dispatches
        let stats = ServerApi::<MockEngine>::transport_stats(&sharded);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.round_trips, 3);
    }
}
