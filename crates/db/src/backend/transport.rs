//! Transport bookkeeping and the TCP frame format shared by
//! [`RemoteBackend`](super::RemoteBackend) and the `eqjoind` server.
//!
//! A frame is a 4-byte little-endian length followed by exactly that
//! many payload bytes (one serialized protocol message). The length is
//! capped at [`MAX_FRAME_BYTES`] so a corrupt or hostile peer cannot
//! force a huge allocation before the payload codec's own plausibility
//! checks run.

use crate::protocol::Request;
use eqjoin_pairing::Engine;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on one frame's payload (256 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// Snapshot of a backend's cumulative transport counters.
///
/// `round_trips` counts request/response exchanges: TCP frames for
/// [`RemoteBackend`](super::RemoteBackend), top-level `handle` calls
/// for [`LocalBackend`](super::LocalBackend), shard dispatches for
/// [`ShardedBackend`](super::ShardedBackend). `requests` counts leaf
/// protocol requests carried (batch contents individually), so
/// `requests − round_trips` is exactly what batching saved. Byte
/// counters are zero for in-process backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Request/response exchanges performed.
    pub round_trips: u64,
    /// Leaf requests carried (batch contents counted individually).
    pub requests: u64,
    /// Exchanges that carried a `Request::Batch`.
    pub batches: u64,
    /// Bytes sent on the wire, framing included.
    pub bytes_sent: u64,
    /// Bytes received from the wire, framing included.
    pub bytes_received: u64,
    /// Successful reconnects after a transport failure (networked
    /// backends make one bounded attempt on the next request).
    pub reconnects: u64,
    /// Request exchanges re-sent after a transport failure on an
    /// idempotent request (networked backends only; each retried
    /// attempt past the first counts once).
    pub retries: u64,
    /// Requests abandoned after the retry budget was exhausted (or
    /// that were never retried because they are not idempotent).
    pub gave_up: u64,
}

/// Interior-mutable counters behind [`TransportStats`] — backends
/// update them through `&self` from any thread.
#[derive(Debug, Default)]
pub struct TransportCounters {
    round_trips: AtomicU64,
    requests: AtomicU64,
    batches: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    reconnects: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
}

impl TransportCounters {
    /// Count one dispatched request: a round trip, its leaf-request
    /// count, and whether it was a batch.
    pub fn record_request<E: Engine>(&self, request: &Request<E>) {
        self.add_round_trips(1);
        self.record_logical(request);
    }

    /// Count a request's leaf-request count and batch-ness *without* a
    /// round trip — sharded routing counts its dispatches separately
    /// via [`TransportCounters::add_round_trips`].
    pub fn record_logical<E: Engine>(&self, request: &Request<E>) {
        self.requests
            .fetch_add(request.request_count(), Ordering::Relaxed);
        if matches!(request, Request::Batch(_)) {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count `n` extra round trips (sharded fan-out contacts several
    /// backends per logical request).
    pub fn add_round_trips(&self, n: u64) {
        self.round_trips.fetch_add(n, Ordering::Relaxed);
    }

    /// Count bytes written to the wire.
    pub fn add_bytes_sent(&self, n: u64) {
        self.bytes_sent.fetch_add(n, Ordering::Relaxed);
    }

    /// Count bytes read from the wire.
    pub fn add_bytes_received(&self, n: u64) {
        self.bytes_received.fetch_add(n, Ordering::Relaxed);
    }

    /// Count successful reconnects after a transport failure.
    pub fn add_reconnects(&self, n: u64) {
        self.reconnects.fetch_add(n, Ordering::Relaxed);
    }

    /// Count retried request attempts (idempotent requests only).
    pub fn add_retries(&self, n: u64) {
        self.retries.fetch_add(n, Ordering::Relaxed);
    }

    /// Count requests abandoned to the caller after a transport
    /// failure (retry budget exhausted, or never retriable).
    pub fn add_gave_up(&self, n: u64) {
        self.gave_up.fetch_add(n, Ordering::Relaxed);
    }

    /// Current values as a plain snapshot.
    pub fn snapshot(&self) -> TransportStats {
        TransportStats {
            round_trips: self.round_trips.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
        }
    }
}

/// Translate an armed failpoint action into this layer's failure mode:
/// an `io::Error` (which the backends above map to
/// [`DbError::Transport`](crate::DbError::Transport) /
/// [`DbError::Timeout`](crate::DbError::Timeout)).
/// `Ok(None)` means "proceed normally"; `Ok(Some(n))` is a
/// partial-write budget for write paths.
pub(crate) fn apply_io_failpoint(
    name: &str,
    action: Option<eqjoin_failpoint::Action>,
) -> io::Result<Option<usize>> {
    use eqjoin_failpoint::Action;
    match action {
        None => Ok(None),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(None)
        }
        Some(Action::ReturnError) => Err(io::Error::other(format!(
            "failpoint {name}: injected error"
        ))),
        Some(Action::DropConn) => Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("failpoint {name}: injected connection drop"),
        )),
        Some(Action::PartialWrite(n)) => Ok(Some(n)),
        Some(Action::Abort) => std::process::abort(),
    }
}

/// Write one length-prefixed frame. Returns the total bytes written
/// (payload + 4 framing bytes).
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the frame cap", payload.len()),
        ));
    }
    let fp = "transport::write_frame";
    if let Some(budget) = apply_io_failpoint(fp, eqjoin_failpoint::failpoint!(fp))? {
        // Torn write: emit the first `budget` bytes of the frame, then
        // fail as if the connection died mid-send.
        let frame_len = payload.len() + 4;
        let mut frame = Vec::with_capacity(frame_len.min(budget));
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.truncate(budget);
        stream.write_all(&frame)?;
        stream.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("failpoint {fp}: connection died after {budget} of {frame_len} bytes"),
        ));
    }
    let start = std::time::Instant::now();
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()?;
    eqjoin_obs::histogram!("eqjoin_frame_write_seconds").record(start.elapsed());
    eqjoin_obs::counter!("eqjoin_frames_sent_total").inc();
    eqjoin_obs::counter!("eqjoin_frame_bytes_sent_total").add(payload.len() as u64 + 4);
    Ok(payload.len() as u64 + 4)
}

/// Read one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// *before* any frame byte (the peer closed an idle connection); EOF
/// mid-frame, an oversized length, or any other I/O failure is an
/// error.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let fp = "transport::read_frame";
    if apply_io_failpoint(fp, eqjoin_failpoint::failpoint!(fp))?.is_some() {
        // partial-write makes no sense on the read side; treat it as a
        // dropped connection so an armed plan still fails loudly.
        return Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("failpoint {fp}: injected connection drop"),
        ));
    }
    let mut len_bytes = [0u8; 4];
    // First byte by hand, to tell "connection closed between frames"
    // from "frame cut short".
    loop {
        // audit-allow(panic-freedom): constant range on a fixed [u8; 4]
        match stream.read(&mut len_bytes[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    // Latency is measured from the first frame byte, not from call
    // entry — a server parked in read_frame waiting for the next
    // request would otherwise count idle time as frame latency.
    let start = std::time::Instant::now();
    // audit-allow(panic-freedom): constant range on a fixed [u8; 4]
    stream.read_exact(&mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the frame cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    eqjoin_obs::histogram!("eqjoin_frame_read_seconds").record(start.elapsed());
    eqjoin_obs::counter!("eqjoin_frames_received_total").inc();
    eqjoin_obs::counter!("eqjoin_frame_bytes_received_total").add(len as u64 + 4);
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        let sent_a = write_frame(&mut wire, b"hello").unwrap();
        let sent_b = write_frame(&mut wire, b"").unwrap();
        assert_eq!(sent_a, 9);
        assert_eq!(sent_b, 4);
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        for cut in 1..wire.len() {
            let mut cursor = io::Cursor::new(&wire[..cut]);
            assert!(
                read_frame(&mut cursor).is_err(),
                "truncation at byte {cut} must error, not hang or succeed"
            );
        }
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(u32::MAX).to_le_bytes());
        oversized.push(0);
        assert!(read_frame(&mut io::Cursor::new(oversized)).is_err());
    }
}
