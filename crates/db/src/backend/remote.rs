//! The networked transport: [`RemoteBackend`] speaks the wire codec
//! over TCP to an [`EqjoinServer`] — the engine behind the standalone
//! `eqjoind` binary, also embeddable in-process for loopback tests.
//!
//! One protocol message per length-prefixed frame
//! ([`write_frame`](super::write_frame) /
//! [`read_frame`](super::read_frame)), strictly request→response, so a
//! batched query series costs exactly one TCP round trip.
//!
//! Failure taxonomy: anything the *server* reports (unknown table,
//! oversized `IN` clause, …) comes back as a normal
//! [`Response::Error`] carrying the original [`DbError`]; anything that
//! goes wrong *reaching* the server — connect, send, receive, framing,
//! an undecodable response — surfaces as [`DbError::Transport`], and a
//! deadline elapsing ([`RemoteConfig::io_timeout`]) as
//! [`DbError::Timeout`]. After a transport failure the connection is
//! dropped (the stream may be desynchronized) and the [`RetryPolicy`]
//! decides what happens next: requests classified *idempotent* (pings,
//! joins, drains — reads whose replay cannot double-apply) are re-sent
//! on a fresh connection with capped jittered exponential backoff;
//! mutations (`InsertTable`/`InsertRows`/`DeleteRows`, whose outcome on
//! the server is unknown) are **never** silently replayed and surface
//! the failure immediately. Either way the *next* request reconnects,
//! so a transient server restart does not kill the backend forever.

use super::transport::{
    apply_io_failpoint, read_frame, write_frame, TransportCounters, TransportStats,
};
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use eqjoin_pairing::Engine;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Retry policy for transport failures on **idempotent** requests.
///
/// Attempt `n` (1-based) sleeps `base × 2^(n−1)` capped at `cap`, then
/// multiplied by a jitter factor in `[0.5, 1.5)` so a fleet of clients
/// hammered by the same outage does not reconnect in lockstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-send attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Backoff growth cap.
    pub cap: Duration,
}

impl RetryPolicy {
    /// No retries: every transport failure surfaces immediately (the
    /// pre-PR behavior).
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.cap);
        // Cheap decorrelation without an RNG dependency: scale by the
        // sub-second clock phase, mapped into [0.5, 1.5).
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos())
            .unwrap_or(0);
        let exp_ms = exp.as_millis().min(u128::from(u64::MAX)) as u64;
        Duration::from_millis(exp_ms / 2 + exp_ms * u64::from(nanos % 1024) / 1024)
    }
}

impl Default for RetryPolicy {
    /// Two retries, 10 ms base backoff, 500 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
        }
    }
}

/// Connection configuration for [`RemoteBackend`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteConfig {
    /// Read **and** write deadline applied to every stream operation
    /// (`None` = block indefinitely, the default — joins over big
    /// tables legitimately take a while). An elapsed deadline surfaces
    /// as [`DbError::Timeout`].
    pub io_timeout: Option<Duration>,
    /// What to do when an exchange fails and the request is idempotent.
    pub retry: RetryPolicy,
}

impl RemoteConfig {
    fn default_plain() -> Self {
        RemoteConfig {
            io_timeout: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// May `request` be silently re-sent after a transport failure whose
/// point of no return is unknown? Reads and joins: yes — replaying
/// them changes nothing but server work. Mutations: no — an
/// `InsertRows` whose response was lost may well have been applied, and
/// replaying it would double-apply (or spuriously fail) server-side.
/// Envelopes classify as their contents.
/// Deterministic pre-send rejection of requests too large for one
/// frame. Never worth retrying — the payload will not shrink.
fn check_frame_cap(payload: &[u8]) -> Result<(), DbError> {
    if payload.len() > super::MAX_FRAME_BYTES {
        return Err(DbError::Transport(format!(
            "request of {} bytes exceeds the {} byte frame cap (split the batch)",
            payload.len(),
            super::MAX_FRAME_BYTES,
        )));
    }
    Ok(())
}

fn is_idempotent<E: Engine>(request: &Request<E>) -> bool {
    match request {
        Request::Ping | Request::ExecuteJoin { .. } | Request::Drain | Request::Stats => true,
        Request::InsertTable(_)
        | Request::InsertRows { .. }
        | Request::DeleteRows { .. }
        | Request::CopyRows { .. } => false,
        Request::WithTenant { inner, .. } => is_idempotent(inner),
        Request::Batch(requests) => requests.iter().all(is_idempotent),
    }
}

/// A [`ServerApi`] over a TCP connection to an `eqjoind` server.
///
/// The stream sits behind a `Mutex`: requests from concurrent sessions
/// sharing one backend serialize onto the connection in order (the
/// protocol is strictly request→response). Engine-generic at the call
/// site — the connection itself is just bytes.
pub struct RemoteBackend {
    peer: String,
    stream: Mutex<Option<TcpStream>>,
    config: Mutex<RemoteConfig>,
    counters: TransportCounters,
}

impl RemoteBackend {
    /// Connect to an `eqjoind` server with the default config (no
    /// deadline, default [`RetryPolicy`]). Connection failure is
    /// [`DbError::Transport`].
    pub fn connect<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        Self::connect_with(addr, RemoteConfig::default_plain())
    }

    /// Connect with an explicit deadline/retry configuration.
    pub fn connect_with<A: ToSocketAddrs + ToString>(
        addr: A,
        config: RemoteConfig,
    ) -> Result<Self, DbError> {
        let peer = addr.to_string();
        let stream = Self::open(&peer, &addr, config.io_timeout)?;
        Ok(RemoteBackend {
            peer,
            stream: Mutex::new(Some(stream)),
            config: Mutex::new(config),
            counters: TransportCounters::default(),
        })
    }

    fn open<A: ToSocketAddrs>(
        peer: &str,
        addr: &A,
        io_timeout: Option<Duration>,
    ) -> Result<TcpStream, DbError> {
        let fp = "remote::connect";
        apply_io_failpoint(fp, eqjoin_failpoint::failpoint!(fp))
            .map_err(|e| DbError::Transport(format!("connect to {peer}: {e}")))?;
        let stream = TcpStream::connect(addr)
            .map_err(|e| DbError::Transport(format!("connect to {peer}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(io_timeout);
        let _ = stream.set_write_timeout(io_timeout);
        Ok(stream)
    }

    /// The address this backend connected to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Replace the per-operation deadline (applied to the live stream
    /// immediately and to every future reconnect). `None` blocks
    /// indefinitely.
    pub fn set_io_timeout(&self, io_timeout: Option<Duration>) {
        let mut config = self.config.lock().unwrap_or_else(|e| e.into_inner());
        config.io_timeout = io_timeout;
        drop(config);
        let guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = guard.as_ref() {
            let _ = stream.set_read_timeout(io_timeout);
            let _ = stream.set_write_timeout(io_timeout);
        }
    }

    fn config(&self) -> RemoteConfig {
        *self.config.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One request frame out, one response frame back. Drops the
    /// connection on any exchange failure so later calls never read
    /// desynchronized bytes; a *later* call finding the connection gone
    /// makes exactly one reconnect attempt (fresh stream, the failed
    /// request itself is never replayed — its outcome on the server is
    /// unknown).
    fn round_trip(&self, payload: &[u8]) -> Result<Response, DbError> {
        // Pre-send check: an oversized request fails *before* any byte
        // hits the wire, so the stream stays synchronized and the
        // connection must survive for later requests.
        check_frame_cap(payload)?;
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            // Single bounded reconnect attempt for this request; on
            // failure the backend stays disconnected and the *next*
            // request (or retry attempt) gets its own single attempt.
            let fresh = Self::open(&self.peer, &self.peer.as_str(), self.config().io_timeout)
                .map_err(|e| {
                    DbError::Transport(format!("reconnect after an earlier transport failure: {e}"))
                })?;
            self.counters.add_reconnects(1);
            *guard = Some(fresh);
        }
        let Some(stream) = guard.as_mut() else {
            // Unreachable: the branch above either filled the slot or
            // returned. Typed anyway — never panic in the request path.
            return Err(DbError::Transport(format!(
                "no connection to {} after reconnect",
                self.peer
            )));
        };
        let exchange = (|| -> io::Result<Vec<u8>> {
            let send_fp = "remote::send";
            if apply_io_failpoint(send_fp, eqjoin_failpoint::failpoint!(send_fp))?.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("failpoint {send_fp}: injected connection drop"),
                ));
            }
            let sent = write_frame(stream, payload)?;
            self.counters.add_bytes_sent(sent);
            let recv_fp = "remote::recv";
            if apply_io_failpoint(recv_fp, eqjoin_failpoint::failpoint!(recv_fp))?.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    format!("failpoint {recv_fp}: injected connection drop"),
                ));
            }
            let frame = read_frame(stream)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                )
            })?;
            self.counters.add_bytes_received(frame.len() as u64 + 4);
            Ok(frame)
        })();
        let result = exchange
            .map_err(|e| {
                // A blocking-socket deadline elapsing reports
                // `WouldBlock` on Unix and `TimedOut` on Windows; both
                // mean "deadline exceeded", typed apart from real
                // transport failures.
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    DbError::Timeout(format!("exchange with {}: {e}", self.peer))
                } else {
                    DbError::Transport(format!("exchange with {}: {e}", self.peer))
                }
            })
            .and_then(|frame| {
                Response::from_bytes(&frame).map_err(|e| {
                    DbError::Transport(format!("undecodable response from {}: {e}", self.peer))
                })
            });
        if result.is_err() {
            *guard = None;
        }
        result
    }
}

impl<E: Engine> ServerApi<E> for RemoteBackend {
    fn handle(&self, request: Request<E>) -> Response {
        let payload = request.to_bytes();
        if let Err(e) = check_frame_cap(&payload) {
            // Deterministic local rejection, not a transport outcome:
            // no retry, no give-up accounting.
            return Response::Error(e);
        }
        let retry = self.config().retry;
        // Mutations are never replayed: a lost response leaves their
        // server-side outcome unknown, and re-sending could
        // double-apply. Transport failures *and* elapsed deadlines are
        // both retriable for idempotent requests (the server may still
        // be chewing on the original, but replaying a read is safe).
        let budget = if is_idempotent(&request) {
            retry.max_retries
        } else {
            0
        };
        let mut attempt = 0u32;
        loop {
            match self.round_trip(&payload) {
                Ok(response) => {
                    // Counted on success only, so `round_trips` means
                    // real completed exchanges — fail-fast calls on a
                    // poisoned connection and pre-send rejections don't
                    // inflate the batching-savings arithmetic (bytes of
                    // a half-finished exchange are still counted as
                    // they happen).
                    self.counters.record_request(&request);
                    return response;
                }
                Err(e) => {
                    if attempt >= budget {
                        self.counters.add_gave_up(1);
                        return Response::Error(e);
                    }
                    attempt += 1;
                    self.counters.add_retries(1);
                    std::thread::sleep(retry.backoff(attempt));
                }
            }
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// The accept loop behind the `eqjoind` binary: serves any
/// [`ServerApi`] backend over TCP, one thread per connection, all
/// connections sharing the backend through `Arc` — the concurrency the
/// `handle(&self)` redesign buys.
pub struct EqjoinServer {
    listener: TcpListener,
    io_timeout: Option<Duration>,
}

impl EqjoinServer {
    /// Default per-connection idle deadline: a client that goes silent
    /// for this long between requests has its connection closed, so a
    /// stalled peer cannot pin a handler thread forever.
    pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

    /// Bind the listening socket (`"127.0.0.1:0"` picks an ephemeral
    /// port — ask [`EqjoinServer::local_addr`] what was chosen).
    pub fn bind<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        let listener = TcpListener::bind(&addr)
            .map_err(|e| DbError::Transport(format!("bind {}: {e}", addr.to_string())))?;
        Ok(EqjoinServer {
            listener,
            io_timeout: Some(Self::DEFAULT_IO_TIMEOUT),
        })
    }

    /// Override the per-connection idle deadline (builder style).
    /// `None` restores the unbounded pre-deadline behavior. The
    /// deadline applies to reading a request and writing its response —
    /// not to backend compute between the two, so a long join is safe
    /// behind a short idle timeout.
    pub fn io_timeout(mut self, io_timeout: Option<Duration>) -> Self {
        self.io_timeout = io_timeout;
        self
    }

    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, DbError> {
        self.listener
            .local_addr()
            .map_err(|e| DbError::Transport(format!("local_addr: {e}")))
    }

    /// Accept connections forever, spawning one handler thread per
    /// connection. Returns only if the listener itself fails
    /// persistently (transient failures retry with capped exponential
    /// backoff — a bad FD state must not spin a core).
    pub fn serve<E: Engine>(self, backend: Arc<dyn ServerApi<E>>) -> Result<(), DbError> {
        self.serve_until(backend, &AtomicBool::new(false))
    }

    /// [`EqjoinServer::serve`], stopping cleanly (joinable, listener
    /// closed) once `shutdown` is set. The flag is checked before each
    /// accepted connection; [`ServerHandle::stop`] sets it and dials
    /// the listener once to unblock a pending `accept`.
    fn serve_until<E: Engine>(
        self,
        backend: Arc<dyn ServerApi<E>>,
        shutdown: &AtomicBool,
    ) -> Result<(), DbError> {
        // Capped exponential backoff for transient accept failures:
        // 1 ms doubling to 256 ms, reset by any successful accept.
        const BACKOFF_START: Duration = Duration::from_millis(1);
        const BACKOFF_CAP: Duration = Duration::from_millis(256);
        let mut backoff = BACKOFF_START;
        for connection in self.listener.incoming() {
            match connection {
                Ok(stream) => {
                    // Serve before consulting the shutdown flag: this
                    // connection finished its TCP handshake, so the
                    // client believes it is established — dropping it
                    // here would race connect-then-stop callers into a
                    // broken pipe. The stop-path wakeup dial lands here
                    // too; its handler reads an immediate EOF and
                    // exits.
                    backoff = BACKOFF_START;
                    let backend = Arc::clone(&backend);
                    let io_timeout = self.io_timeout;
                    std::thread::spawn(move || serve_connection::<E>(stream, backend, io_timeout));
                    if shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Err(e) => {
                    // Transient accept failures (per-connection resets,
                    // FD exhaustion) must not take the server down —
                    // but retrying instantly on an error that repeats
                    // would busy-spin, so sleep before the next accept.
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                    ) {
                        if shutdown.load(Ordering::Acquire) {
                            return Ok(());
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        continue;
                    }
                    return Err(DbError::Transport(format!("accept: {e}")));
                }
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread and return the bound
    /// address plus a [`ServerHandle`] that stops the loop and joins
    /// the thread — the one-liner for loopback tests and embedded
    /// servers, without leaking a detached thread and its listener.
    pub fn spawn<E: Engine>(
        self,
        backend: Arc<dyn ServerApi<E>>,
    ) -> Result<(SocketAddr, ServerHandle), DbError> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || self.serve_until(backend, &flag));
        Ok((
            addr,
            ServerHandle {
                addr,
                shutdown,
                thread: Some(thread),
            },
        ))
    }

    /// Spawn a loopback `eqjoind` on an ephemeral port over a fresh
    /// [`LocalBackend`](super::LocalBackend): bind `127.0.0.1:0`,
    /// start the accept loop, return the address to connect to. The
    /// standard setup for integration tests and benches; dropping the
    /// handle stops the server.
    pub fn spawn_local<E: Engine>() -> Result<(SocketAddr, ServerHandle), DbError> {
        let backend = Arc::new(super::LocalBackend::<E>::new()) as Arc<dyn ServerApi<E>>;
        Self::bind("127.0.0.1:0")?.spawn(backend)
    }
}

/// Shutdown handle for a spawned [`EqjoinServer`] accept loop:
/// [`ServerHandle::stop`] (or drop) stops accepting and joins the
/// thread, so tests and embedders do not rely on process teardown to
/// reclaim the listener. Connections already being served run to
/// completion on their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<(), DbError>>>,
}

impl ServerHandle {
    /// The address the accept loop is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread, returning the loop's
    /// exit result.
    pub fn stop(mut self) -> Result<(), DbError> {
        self.shutdown_and_join()
            .unwrap_or_else(|| Err(DbError::Transport("accept loop panicked".into())))
    }

    /// Let the accept loop run detached for the rest of the process
    /// (the pre-handle behavior): the thread is deliberately leaked and
    /// nothing stops it. For long-lived benches and examples whose
    /// server must outlive every scope; tests should hold the handle
    /// and let it stop the server instead.
    pub fn detach(mut self) {
        self.thread = None;
    }

    fn shutdown_and_join(&mut self) -> Option<Result<(), DbError>> {
        let thread = self.thread.take()?;
        self.shutdown.store(true, Ordering::Release);
        // A pending blocking accept only observes the flag on its next
        // wakeup; dial the listener once to force that wakeup. The
        // handler thread this spawns (if the race admits one) sees an
        // immediately-closed stream and exits.
        let _ = TcpStream::connect(self.addr).map(drop);
        Some(
            thread
                .join()
                .unwrap_or_else(|_| Err(DbError::Transport("accept loop panicked".into()))),
        )
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_and_join();
    }
}

/// Frame loop for one client connection: read a request frame, let the
/// backend answer it, write the response frame. Undecodable requests
/// get an error response, and a response too large for one frame
/// degrades to an in-band transport error telling the client to split
/// the series — in both cases framing stays intact and the connection
/// survives. Only a real I/O failure ends the connection.
fn serve_connection<E: Engine>(
    mut stream: TcpStream,
    backend: Arc<dyn ServerApi<E>>,
    io_timeout: Option<Duration>,
) {
    let _ = stream.set_nodelay(true);
    // Idle deadline: a silent client releases this thread instead of
    // pinning it forever. Compute time between read and write is not
    // under the deadline.
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::<E>::from_bytes(&frame) {
            Ok(request) => backend.handle(request),
            Err(e) => Response::Error(e),
        };
        let mut bytes = response.to_bytes();
        if bytes.len() > super::MAX_FRAME_BYTES {
            // The joins *were* executed server-side; tell the client
            // in-band (it will account them as unobserved) rather than
            // dropping the connection with an opaque EOF.
            bytes = Response::Error(DbError::Transport(format!(
                "response of {} bytes exceeds the {} byte frame cap (split the series)",
                bytes.len(),
                super::MAX_FRAME_BYTES,
            )))
            .to_bytes();
        }
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_pairing::MockEngine;

    #[test]
    fn ping_over_loopback_tcp() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.round_trips, 1);
        assert!(stats.bytes_sent >= 5, "frame header + 1-byte ping");
        assert!(stats.bytes_received >= 5);
    }

    #[test]
    fn oversized_request_fails_without_poisoning_the_connection() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        let huge = vec![0u8; crate::backend::MAX_FRAME_BYTES + 1];
        match remote.round_trip(&huge) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("frame cap"), "{msg}"),
            other => panic!("expected the frame-cap transport error, got {other:?}"),
        }
        // Nothing was written, so the connection must survive.
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
    }

    #[test]
    fn connect_to_dead_port_is_a_transport_error() {
        // Bind-then-drop guarantees the port is closed.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        match RemoteBackend::connect(addr) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("connect")),
            Err(other) => panic!("expected a transport error, got {other:?}"),
            Ok(_) => panic!("connecting to a dead port must fail"),
        }
    }

    /// A listener that drops its first accepted connection, then serves
    /// normally on the second.
    fn flaky_listener() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first);
            let (second, _) = listener.accept().unwrap();
            let backend =
                Arc::new(super::super::LocalBackend::<MockEngine>::new()) as Arc<dyn ServerApi<_>>;
            serve_connection::<MockEngine>(second, backend, None);
        });
        (addr, server)
    }

    #[test]
    fn idempotent_request_retries_across_a_dropped_connection() {
        // Request 1 lands on the dropped stream; the retry policy
        // reconnects and replays it (a Ping is idempotent), so the
        // caller sees success — with the retry and the reconnect on
        // the books.
        let (addr, server) = flaky_listener();
        let remote = RemoteBackend::connect(addr).unwrap();
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.retries, 1, "one replayed attempt");
        assert_eq!(stats.reconnects, 1, "exactly one reconnect attempt");
        assert_eq!(stats.round_trips, 1, "only the successful exchange counts");
        assert_eq!(stats.gave_up, 0);
        drop(remote);
        server.join().unwrap();
    }

    #[test]
    fn mutations_are_never_silently_replayed() {
        // The same flaky first connection, but the request is an
        // InsertRows: its outcome on the server is unknown, so it must
        // surface the transport error immediately — no retry, no
        // reconnect for *this* request. The next (idempotent) request
        // reconnects and succeeds.
        let (addr, server) = flaky_listener();
        let remote = RemoteBackend::connect(addr).unwrap();
        let insert = Request::<MockEngine>::InsertRows {
            table: "orders".into(),
            start_row: 0,
            rows: Vec::new(),
        };
        match ServerApi::<MockEngine>::handle(&remote, insert) {
            Response::Error(DbError::Transport(_)) => {}
            other => panic!("expected a transport error, got {other:?}"),
        }
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.retries, 0, "mutations must not be replayed");
        assert_eq!(stats.gave_up, 1);
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        drop(remote);
        server.join().unwrap();
    }

    #[test]
    fn elapsed_deadline_is_a_typed_timeout() {
        // A server that accepts and then never answers: with a read
        // deadline armed and retries off, the client gets
        // `DbError::Timeout`, not a hang and not a plain transport
        // error.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let _ = hold_rx.recv(); // keep the stream open, silent
            drop(stream);
        });
        let remote = RemoteBackend::connect_with(
            addr,
            RemoteConfig {
                io_timeout: Some(Duration::from_millis(50)),
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
        match ServerApi::<MockEngine>::handle(&remote, Request::Ping) {
            Response::Error(DbError::Timeout(msg)) => {
                assert!(msg.contains("exchange with"), "{msg}")
            }
            other => panic!("expected DbError::Timeout, got {other:?}"),
        }
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.gave_up, 1);
        drop(hold_tx);
        server.join().unwrap();
    }

    #[test]
    fn stop_joins_the_accept_loop() {
        let (addr, handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.stop().unwrap();
        // The listener is gone: a fresh connect must fail (connection
        // refused), not hang on a leaked accept loop.
        match RemoteBackend::connect(addr) {
            Err(DbError::Transport(_)) => {}
            Ok(_) => panic!("listener must be closed after stop()"),
            Err(other) => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn server_dropping_connection_poisons_the_backend() {
        // With retries off (the fail-fast configuration), a listener
        // that accepts and immediately drops the stream: the first
        // request fails with a transport error, and the backend then
        // fails fast — each later request makes exactly one bounded
        // reconnect attempt and reports it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = listener.accept().map(drop);
        });
        let remote = RemoteBackend::connect_with(
            addr,
            RemoteConfig {
                io_timeout: None,
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
        for attempt in 0..2 {
            match ServerApi::<MockEngine>::handle(&remote, Request::Ping) {
                Response::Error(DbError::Transport(msg)) => {
                    if attempt > 0 {
                        assert!(msg.contains("earlier transport failure"), "{msg}");
                    }
                }
                other => panic!("expected a transport error, got {other:?}"),
            }
        }
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.gave_up, 2);
    }
}
