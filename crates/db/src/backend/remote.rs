//! The networked transport: [`RemoteBackend`] speaks the wire codec
//! over TCP to an [`EqjoinServer`] — the engine behind the standalone
//! `eqjoind` binary, also embeddable in-process for loopback tests.
//!
//! One protocol message per length-prefixed frame
//! ([`write_frame`](super::write_frame) /
//! [`read_frame`](super::read_frame)), strictly request→response, so a
//! batched query series costs exactly one TCP round trip.
//!
//! Failure taxonomy: anything the *server* reports (unknown table,
//! oversized `IN` clause, …) comes back as a normal
//! [`Response::Error`] carrying the original [`DbError`]; anything that
//! goes wrong *reaching* the server — connect, send, receive, framing,
//! an undecodable response — surfaces as [`DbError::Transport`]. After
//! a transport failure the connection is dropped (the stream may be
//! desynchronized): the failed request is **never** silently retried,
//! but the *next* request makes a single bounded reconnect attempt
//! before failing, so a transient server restart does not kill the
//! backend forever.

use super::transport::{read_frame, write_frame, TransportCounters, TransportStats};
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use eqjoin_pairing::Engine;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A [`ServerApi`] over a TCP connection to an `eqjoind` server.
///
/// The stream sits behind a `Mutex`: requests from concurrent sessions
/// sharing one backend serialize onto the connection in order (the
/// protocol is strictly request→response). Engine-generic at the call
/// site — the connection itself is just bytes.
pub struct RemoteBackend {
    peer: String,
    stream: Mutex<Option<TcpStream>>,
    counters: TransportCounters,
}

impl RemoteBackend {
    /// Connect to an `eqjoind` server. Connection failure is
    /// [`DbError::Transport`].
    pub fn connect<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        let peer = addr.to_string();
        let stream = TcpStream::connect(&addr)
            .map_err(|e| DbError::Transport(format!("connect to {peer}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteBackend {
            peer,
            stream: Mutex::new(Some(stream)),
            counters: TransportCounters::default(),
        })
    }

    /// The address this backend connected to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// One request frame out, one response frame back. Drops the
    /// connection on any exchange failure so later calls never read
    /// desynchronized bytes; a *later* call finding the connection gone
    /// makes exactly one reconnect attempt (fresh stream, the failed
    /// request itself is never replayed — its outcome on the server is
    /// unknown).
    fn round_trip(&self, payload: &[u8]) -> Result<Response, DbError> {
        // Pre-send check: an oversized request fails *before* any byte
        // hits the wire, so the stream stays synchronized and the
        // connection must survive for later requests.
        if payload.len() > super::MAX_FRAME_BYTES {
            return Err(DbError::Transport(format!(
                "request of {} bytes exceeds the {} byte frame cap (split the batch)",
                payload.len(),
                super::MAX_FRAME_BYTES,
            )));
        }
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            // Single bounded reconnect attempt for this request; on
            // failure the backend stays disconnected and the *next*
            // request gets its own single attempt.
            let fresh = TcpStream::connect(self.peer.as_str()).map_err(|e| {
                DbError::Transport(format!(
                    "reconnect to {} after an earlier transport failure: {e}",
                    self.peer
                ))
            })?;
            let _ = fresh.set_nodelay(true);
            self.counters.add_reconnects(1);
            *guard = Some(fresh);
        }
        let Some(stream) = guard.as_mut() else {
            // Unreachable: the branch above either filled the slot or
            // returned. Typed anyway — never panic in the request path.
            return Err(DbError::Transport(format!(
                "no connection to {} after reconnect",
                self.peer
            )));
        };
        let exchange = (|| -> io::Result<Vec<u8>> {
            let sent = write_frame(stream, payload)?;
            self.counters.add_bytes_sent(sent);
            let frame = read_frame(stream)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                )
            })?;
            self.counters.add_bytes_received(frame.len() as u64 + 4);
            Ok(frame)
        })();
        let result = exchange
            .map_err(|e| DbError::Transport(format!("exchange with {}: {e}", self.peer)))
            .and_then(|frame| {
                Response::from_bytes(&frame).map_err(|e| {
                    DbError::Transport(format!("undecodable response from {}: {e}", self.peer))
                })
            });
        if result.is_err() {
            *guard = None;
        }
        result
    }
}

impl<E: Engine> ServerApi<E> for RemoteBackend {
    fn handle(&self, request: Request<E>) -> Response {
        match self.round_trip(&request.to_bytes()) {
            Ok(response) => {
                // Counted on success only, so `round_trips` means real
                // completed exchanges — fail-fast calls on a poisoned
                // connection and pre-send rejections don't inflate the
                // batching-savings arithmetic (bytes of a half-finished
                // exchange are still counted as they happen).
                self.counters.record_request(&request);
                response
            }
            Err(e) => Response::Error(e),
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// The accept loop behind the `eqjoind` binary: serves any
/// [`ServerApi`] backend over TCP, one thread per connection, all
/// connections sharing the backend through `Arc` — the concurrency the
/// `handle(&self)` redesign buys.
pub struct EqjoinServer {
    listener: TcpListener,
}

impl EqjoinServer {
    /// Bind the listening socket (`"127.0.0.1:0"` picks an ephemeral
    /// port — ask [`EqjoinServer::local_addr`] what was chosen).
    pub fn bind<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        let listener = TcpListener::bind(&addr)
            .map_err(|e| DbError::Transport(format!("bind {}: {e}", addr.to_string())))?;
        Ok(EqjoinServer { listener })
    }

    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, DbError> {
        self.listener
            .local_addr()
            .map_err(|e| DbError::Transport(format!("local_addr: {e}")))
    }

    /// Accept connections forever, spawning one handler thread per
    /// connection. Returns only if the listener itself fails
    /// persistently (transient failures retry with capped exponential
    /// backoff — a bad FD state must not spin a core).
    pub fn serve<E: Engine>(self, backend: Arc<dyn ServerApi<E>>) -> Result<(), DbError> {
        self.serve_until(backend, &AtomicBool::new(false))
    }

    /// [`EqjoinServer::serve`], stopping cleanly (joinable, listener
    /// closed) once `shutdown` is set. The flag is checked before each
    /// accepted connection; [`ServerHandle::stop`] sets it and dials
    /// the listener once to unblock a pending `accept`.
    fn serve_until<E: Engine>(
        self,
        backend: Arc<dyn ServerApi<E>>,
        shutdown: &AtomicBool,
    ) -> Result<(), DbError> {
        // Capped exponential backoff for transient accept failures:
        // 1 ms doubling to 256 ms, reset by any successful accept.
        const BACKOFF_START: Duration = Duration::from_millis(1);
        const BACKOFF_CAP: Duration = Duration::from_millis(256);
        let mut backoff = BACKOFF_START;
        for connection in self.listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            match connection {
                Ok(stream) => {
                    backoff = BACKOFF_START;
                    let backend = Arc::clone(&backend);
                    std::thread::spawn(move || serve_connection::<E>(stream, backend));
                }
                Err(e) => {
                    // Transient accept failures (per-connection resets,
                    // FD exhaustion) must not take the server down —
                    // but retrying instantly on an error that repeats
                    // would busy-spin, so sleep before the next accept.
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                    ) {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        continue;
                    }
                    return Err(DbError::Transport(format!("accept: {e}")));
                }
            }
        }
        Ok(())
    }

    /// Run the accept loop on a background thread and return the bound
    /// address plus a [`ServerHandle`] that stops the loop and joins
    /// the thread — the one-liner for loopback tests and embedded
    /// servers, without leaking a detached thread and its listener.
    pub fn spawn<E: Engine>(
        self,
        backend: Arc<dyn ServerApi<E>>,
    ) -> Result<(SocketAddr, ServerHandle), DbError> {
        let addr = self.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || self.serve_until(backend, &flag));
        Ok((
            addr,
            ServerHandle {
                addr,
                shutdown,
                thread: Some(thread),
            },
        ))
    }

    /// Spawn a loopback `eqjoind` on an ephemeral port over a fresh
    /// [`LocalBackend`](super::LocalBackend): bind `127.0.0.1:0`,
    /// start the accept loop, return the address to connect to. The
    /// standard setup for integration tests and benches; dropping the
    /// handle stops the server.
    pub fn spawn_local<E: Engine>() -> Result<(SocketAddr, ServerHandle), DbError> {
        let backend = Arc::new(super::LocalBackend::<E>::new()) as Arc<dyn ServerApi<E>>;
        Self::bind("127.0.0.1:0")?.spawn(backend)
    }
}

/// Shutdown handle for a spawned [`EqjoinServer`] accept loop:
/// [`ServerHandle::stop`] (or drop) stops accepting and joins the
/// thread, so tests and embedders do not rely on process teardown to
/// reclaim the listener. Connections already being served run to
/// completion on their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<Result<(), DbError>>>,
}

impl ServerHandle {
    /// The address the accept loop is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread, returning the loop's
    /// exit result.
    pub fn stop(mut self) -> Result<(), DbError> {
        self.shutdown_and_join()
            .unwrap_or_else(|| Err(DbError::Transport("accept loop panicked".into())))
    }

    /// Let the accept loop run detached for the rest of the process
    /// (the pre-handle behavior): the thread is deliberately leaked and
    /// nothing stops it. For long-lived benches and examples whose
    /// server must outlive every scope; tests should hold the handle
    /// and let it stop the server instead.
    pub fn detach(mut self) {
        self.thread = None;
    }

    fn shutdown_and_join(&mut self) -> Option<Result<(), DbError>> {
        let thread = self.thread.take()?;
        self.shutdown.store(true, Ordering::Release);
        // A pending blocking accept only observes the flag on its next
        // wakeup; dial the listener once to force that wakeup. The
        // handler thread this spawns (if the race admits one) sees an
        // immediately-closed stream and exits.
        let _ = TcpStream::connect(self.addr).map(drop);
        Some(
            thread
                .join()
                .unwrap_or_else(|_| Err(DbError::Transport("accept loop panicked".into()))),
        )
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_and_join();
    }
}

/// Frame loop for one client connection: read a request frame, let the
/// backend answer it, write the response frame. Undecodable requests
/// get an error response, and a response too large for one frame
/// degrades to an in-band transport error telling the client to split
/// the series — in both cases framing stays intact and the connection
/// survives. Only a real I/O failure ends the connection.
fn serve_connection<E: Engine>(mut stream: TcpStream, backend: Arc<dyn ServerApi<E>>) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::<E>::from_bytes(&frame) {
            Ok(request) => backend.handle(request),
            Err(e) => Response::Error(e),
        };
        let mut bytes = response.to_bytes();
        if bytes.len() > super::MAX_FRAME_BYTES {
            // The joins *were* executed server-side; tell the client
            // in-band (it will account them as unobserved) rather than
            // dropping the connection with an opaque EOF.
            bytes = Response::Error(DbError::Transport(format!(
                "response of {} bytes exceeds the {} byte frame cap (split the series)",
                bytes.len(),
                super::MAX_FRAME_BYTES,
            )))
            .to_bytes();
        }
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_pairing::MockEngine;

    #[test]
    fn ping_over_loopback_tcp() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.round_trips, 1);
        assert!(stats.bytes_sent >= 5, "frame header + 1-byte ping");
        assert!(stats.bytes_received >= 5);
    }

    #[test]
    fn oversized_request_fails_without_poisoning_the_connection() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        let huge = vec![0u8; crate::backend::MAX_FRAME_BYTES + 1];
        match remote.round_trip(&huge) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("frame cap"), "{msg}"),
            other => panic!("expected the frame-cap transport error, got {other:?}"),
        }
        // Nothing was written, so the connection must survive.
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
    }

    #[test]
    fn connect_to_dead_port_is_a_transport_error() {
        // Bind-then-drop guarantees the port is closed.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        match RemoteBackend::connect(addr) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("connect")),
            Err(other) => panic!("expected a transport error, got {other:?}"),
            Ok(_) => panic!("connecting to a dead port must fail"),
        }
    }

    #[test]
    fn one_bounded_reconnect_recovers_after_a_dropped_connection() {
        // A listener that drops its first accepted connection, then
        // serves normally: request 1 fails with a transport error (and
        // is NOT silently replayed), request 2 triggers the single
        // bounded reconnect and succeeds on the fresh stream.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first);
            let (second, _) = listener.accept().unwrap();
            let backend =
                Arc::new(super::super::LocalBackend::<MockEngine>::new()) as Arc<dyn ServerApi<_>>;
            serve_connection::<MockEngine>(second, backend);
        });
        let remote = RemoteBackend::connect(addr).unwrap();
        match ServerApi::<MockEngine>::handle(&remote, Request::Ping) {
            Response::Error(DbError::Transport(_)) => {}
            other => panic!("expected a transport error on the dropped stream, got {other:?}"),
        }
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.reconnects, 1, "exactly one reconnect attempt");
        assert_eq!(stats.round_trips, 1, "only the successful exchange counts");
        drop(remote);
        server.join().unwrap();
    }

    #[test]
    fn stop_joins_the_accept_loop() {
        let (addr, handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        assert_eq!(handle.addr(), addr);
        handle.stop().unwrap();
        // The listener is gone: a fresh connect must fail (connection
        // refused), not hang on a leaked accept loop.
        match RemoteBackend::connect(addr) {
            Err(DbError::Transport(_)) => {}
            Ok(_) => panic!("listener must be closed after stop()"),
            Err(other) => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn server_dropping_connection_poisons_the_backend() {
        // A listener that accepts and immediately drops the stream: the
        // first request fails with a transport error, and the backend
        // then fails fast without touching the socket again.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = listener.accept().map(drop);
        });
        let remote = RemoteBackend::connect(addr).unwrap();
        for attempt in 0..2 {
            match ServerApi::<MockEngine>::handle(&remote, Request::Ping) {
                Response::Error(DbError::Transport(msg)) => {
                    if attempt > 0 {
                        assert!(msg.contains("earlier transport failure"), "{msg}");
                    }
                }
                other => panic!("expected a transport error, got {other:?}"),
            }
        }
    }
}
