//! The networked transport: [`RemoteBackend`] speaks the wire codec
//! over TCP to an [`EqjoinServer`] — the engine behind the standalone
//! `eqjoind` binary, also embeddable in-process for loopback tests.
//!
//! One protocol message per length-prefixed frame
//! ([`write_frame`](super::write_frame) /
//! [`read_frame`](super::read_frame)), strictly request→response, so a
//! batched query series costs exactly one TCP round trip.
//!
//! Failure taxonomy: anything the *server* reports (unknown table,
//! oversized `IN` clause, …) comes back as a normal
//! [`Response::Error`] carrying the original [`DbError`]; anything that
//! goes wrong *reaching* the server — connect, send, receive, framing,
//! an undecodable response — surfaces as [`DbError::Transport`]. After
//! a transport failure the connection is dropped (the stream may be
//! desynchronized) and every later request fails fast.

use super::transport::{read_frame, write_frame, TransportCounters, TransportStats};
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use eqjoin_pairing::Engine;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A [`ServerApi`] over a TCP connection to an `eqjoind` server.
///
/// The stream sits behind a `Mutex`: requests from concurrent sessions
/// sharing one backend serialize onto the connection in order (the
/// protocol is strictly request→response). Engine-generic at the call
/// site — the connection itself is just bytes.
pub struct RemoteBackend {
    peer: String,
    stream: Mutex<Option<TcpStream>>,
    counters: TransportCounters,
}

impl RemoteBackend {
    /// Connect to an `eqjoind` server. Connection failure is
    /// [`DbError::Transport`].
    pub fn connect<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        let peer = addr.to_string();
        let stream = TcpStream::connect(&addr)
            .map_err(|e| DbError::Transport(format!("connect to {peer}: {e}")))?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteBackend {
            peer,
            stream: Mutex::new(Some(stream)),
            counters: TransportCounters::default(),
        })
    }

    /// The address this backend connected to.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// One request frame out, one response frame back. Drops the
    /// connection on any exchange failure so later calls fail fast
    /// instead of reading desynchronized bytes.
    fn round_trip(&self, payload: &[u8]) -> Result<Response, DbError> {
        // Pre-send check: an oversized request fails *before* any byte
        // hits the wire, so the stream stays synchronized and the
        // connection must survive for later requests.
        if payload.len() > super::MAX_FRAME_BYTES {
            return Err(DbError::Transport(format!(
                "request of {} bytes exceeds the {} byte frame cap (split the batch)",
                payload.len(),
                super::MAX_FRAME_BYTES,
            )));
        }
        let mut guard = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let stream = guard.as_mut().ok_or_else(|| {
            DbError::Transport(format!(
                "connection to {} was closed by an earlier transport failure",
                self.peer
            ))
        })?;
        let exchange = (|| -> io::Result<Vec<u8>> {
            let sent = write_frame(stream, payload)?;
            self.counters.add_bytes_sent(sent);
            let frame = read_frame(stream)?.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-request",
                )
            })?;
            self.counters.add_bytes_received(frame.len() as u64 + 4);
            Ok(frame)
        })();
        let result = exchange
            .map_err(|e| DbError::Transport(format!("exchange with {}: {e}", self.peer)))
            .and_then(|frame| {
                Response::from_bytes(&frame).map_err(|e| {
                    DbError::Transport(format!("undecodable response from {}: {e}", self.peer))
                })
            });
        if result.is_err() {
            *guard = None;
        }
        result
    }
}

impl<E: Engine> ServerApi<E> for RemoteBackend {
    fn handle(&self, request: Request<E>) -> Response {
        match self.round_trip(&request.to_bytes()) {
            Ok(response) => {
                // Counted on success only, so `round_trips` means real
                // completed exchanges — fail-fast calls on a poisoned
                // connection and pre-send rejections don't inflate the
                // batching-savings arithmetic (bytes of a half-finished
                // exchange are still counted as they happen).
                self.counters.record_request(&request);
                response
            }
            Err(e) => Response::Error(e),
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

/// The accept loop behind the `eqjoind` binary: serves any
/// [`ServerApi`] backend over TCP, one thread per connection, all
/// connections sharing the backend through `Arc` — the concurrency the
/// `handle(&self)` redesign buys.
pub struct EqjoinServer {
    listener: TcpListener,
}

impl EqjoinServer {
    /// Bind the listening socket (`"127.0.0.1:0"` picks an ephemeral
    /// port — ask [`EqjoinServer::local_addr`] what was chosen).
    pub fn bind<A: ToSocketAddrs + ToString>(addr: A) -> Result<Self, DbError> {
        let listener = TcpListener::bind(&addr)
            .map_err(|e| DbError::Transport(format!("bind {}: {e}", addr.to_string())))?;
        Ok(EqjoinServer { listener })
    }

    /// The bound address.
    pub fn local_addr(&self) -> Result<SocketAddr, DbError> {
        self.listener
            .local_addr()
            .map_err(|e| DbError::Transport(format!("local_addr: {e}")))
    }

    /// Accept connections forever, spawning one handler thread per
    /// connection. Returns only if the listener itself fails.
    pub fn serve<E: Engine>(self, backend: Arc<dyn ServerApi<E>>) -> Result<(), DbError> {
        for connection in self.listener.incoming() {
            match connection {
                Ok(stream) => {
                    let backend = Arc::clone(&backend);
                    std::thread::spawn(move || serve_connection::<E>(stream, backend));
                }
                Err(e) => {
                    // Transient accept failures (per-connection resets)
                    // must not take the server down.
                    if e.kind() == io::ErrorKind::ConnectionAborted
                        || e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::Interrupted
                    {
                        continue;
                    }
                    return Err(DbError::Transport(format!("accept: {e}")));
                }
            }
        }
        Ok(())
    }

    /// Run the accept loop on a detached background thread and return
    /// the bound address — the one-liner for loopback tests and
    /// embedded servers.
    pub fn spawn<E: Engine>(
        self,
        backend: Arc<dyn ServerApi<E>>,
    ) -> Result<(SocketAddr, JoinHandle<Result<(), DbError>>), DbError> {
        let addr = self.local_addr()?;
        let handle = std::thread::spawn(move || self.serve(backend));
        Ok((addr, handle))
    }

    /// Spawn a loopback `eqjoind` on an ephemeral port over a fresh
    /// [`LocalBackend`](super::LocalBackend): bind `127.0.0.1:0`,
    /// detach the accept loop, return the address to connect to. The
    /// standard setup for integration tests and benches.
    pub fn spawn_local<E: Engine>() -> Result<(SocketAddr, JoinHandle<Result<(), DbError>>), DbError>
    {
        let backend = Arc::new(super::LocalBackend::<E>::new()) as Arc<dyn ServerApi<E>>;
        Self::bind("127.0.0.1:0")?.spawn(backend)
    }
}

/// Frame loop for one client connection: read a request frame, let the
/// backend answer it, write the response frame. Undecodable requests
/// get an error response, and a response too large for one frame
/// degrades to an in-band transport error telling the client to split
/// the series — in both cases framing stays intact and the connection
/// survives. Only a real I/O failure ends the connection.
fn serve_connection<E: Engine>(mut stream: TcpStream, backend: Arc<dyn ServerApi<E>>) {
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::<E>::from_bytes(&frame) {
            Ok(request) => backend.handle(request),
            Err(e) => Response::Error(e),
        };
        let mut bytes = response.to_bytes();
        if bytes.len() > super::MAX_FRAME_BYTES {
            // The joins *were* executed server-side; tell the client
            // in-band (it will account them as unobserved) rather than
            // dropping the connection with an opaque EOF.
            bytes = Response::Error(DbError::Transport(format!(
                "response of {} bytes exceeds the {} byte frame cap (split the series)",
                bytes.len(),
                super::MAX_FRAME_BYTES,
            )))
            .to_bytes();
        }
        if write_frame(&mut stream, &bytes).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_pairing::MockEngine;

    #[test]
    fn ping_over_loopback_tcp() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
        let stats = ServerApi::<MockEngine>::transport_stats(&remote);
        assert_eq!(stats.round_trips, 1);
        assert!(stats.bytes_sent >= 5, "frame header + 1-byte ping");
        assert!(stats.bytes_received >= 5);
    }

    #[test]
    fn oversized_request_fails_without_poisoning_the_connection() {
        let (addr, _handle) = EqjoinServer::spawn_local::<MockEngine>().unwrap();
        let remote = RemoteBackend::connect(addr).unwrap();
        let huge = vec![0u8; crate::backend::MAX_FRAME_BYTES + 1];
        match remote.round_trip(&huge) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("frame cap"), "{msg}"),
            other => panic!("expected the frame-cap transport error, got {other:?}"),
        }
        // Nothing was written, so the connection must survive.
        assert!(matches!(
            ServerApi::<MockEngine>::handle(&remote, Request::Ping),
            Response::Pong
        ));
    }

    #[test]
    fn connect_to_dead_port_is_a_transport_error() {
        // Bind-then-drop guarantees the port is closed.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        match RemoteBackend::connect(addr) {
            Err(DbError::Transport(msg)) => assert!(msg.contains("connect")),
            Err(other) => panic!("expected a transport error, got {other:?}"),
            Ok(_) => panic!("connecting to a dead port must fail"),
        }
    }

    #[test]
    fn server_dropping_connection_poisons_the_backend() {
        // A listener that accepts and immediately drops the stream: the
        // first request fails with a transport error, and the backend
        // then fails fast without touching the socket again.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = listener.accept().map(drop);
        });
        let remote = RemoteBackend::connect(addr).unwrap();
        for attempt in 0..2 {
            match ServerApi::<MockEngine>::handle(&remote, Request::Ping) {
                Response::Error(DbError::Transport(msg)) => {
                    if attempt > 0 {
                        assert!(msg.contains("earlier transport failure"), "{msg}");
                    }
                }
                other => panic!("expected a transport error, got {other:?}"),
            }
        }
    }
}
