//! The in-process backend: a [`DbServer`] behind the protocol, with
//! interior synchronization so one instance can serve many sessions,
//! connection threads or shards concurrently — optionally **persistent**:
//! give it a snapshot path and every state change (table uploads,
//! incremental row updates, fresh decrypt-cache entries) is flushed to
//! disk, so a restarted server resumes the series warm.

use super::transport::TransportCounters;
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use crate::server::DbServer;
use eqjoin_pairing::Engine;
use std::path::PathBuf;
use std::sync::{RwLock, RwLockReadGuard};

use super::TransportStats;

/// The in-process [`ServerApi`] implementation.
///
/// Table storage sits behind an `RwLock`: uploads take the write lock,
/// joins share the read lock, so concurrent queries — many sessions
/// over one `Arc<LocalBackend>`, or the `eqjoind` connection threads —
/// execute in parallel.
#[derive(Default)]
pub struct LocalBackend<E: Engine> {
    server: RwLock<DbServer<E>>,
    counters: TransportCounters,
    /// Snapshot path; when set, the store is flushed after any request
    /// that dirtied it.
    persist: Option<PathBuf>,
}

impl<E: Engine> LocalBackend<E> {
    /// Empty backend.
    pub fn new() -> Self {
        LocalBackend {
            server: RwLock::new(DbServer::new()),
            counters: TransportCounters::default(),
            persist: None,
        }
    }

    /// Empty backend whose server resolves auto thread requests
    /// (`JoinOptions::threads == 0`) to `threads` workers instead of
    /// the machine's available parallelism (`eqjoind --threads`).
    pub fn with_default_threads(threads: Option<usize>) -> Self {
        Self::with_config(threads, None)
    }

    /// Empty backend with both server defaults configured: decrypt
    /// workers and decrypt-cache capacity (`eqjoind --threads
    /// --decrypt-cache-cap`).
    pub fn with_config(threads: Option<usize>, cache_cap: Option<usize>) -> Self {
        let mut server = DbServer::new();
        server.set_default_threads(threads);
        if let Some(cap) = cache_cap {
            server.set_decrypt_cache_cap(cap);
        }
        LocalBackend {
            server: RwLock::new(server),
            counters: TransportCounters::default(),
            persist: None,
        }
    }

    /// Persistent backend (`eqjoind --data-dir`): loads the snapshot at
    /// `path` if one exists (rejecting corrupt/mismatched snapshots
    /// with a clean error) and re-saves the store whenever tables,
    /// rows or the decrypt cache change. `threads` and `cache_cap`
    /// configure the restored server like the plain constructors do.
    pub fn with_persistence(
        path: impl Into<PathBuf>,
        threads: Option<usize>,
        cache_cap: Option<usize>,
    ) -> Result<Self, DbError> {
        let path = path.into();
        let mut server = if path.exists() {
            DbServer::load(&path)?
        } else {
            DbServer::new()
        };
        server.set_default_threads(threads);
        if let Some(cap) = cache_cap {
            server.set_decrypt_cache_cap(cap);
        }
        Ok(LocalBackend {
            server: RwLock::new(server),
            counters: TransportCounters::default(),
            persist: Some(path),
        })
    }

    /// Read access to the underlying server (tests and experiments peek
    /// at stored ciphertexts). Holds the storage read lock for the
    /// guard's lifetime.
    pub fn server(&self) -> RwLockReadGuard<'_, DbServer<E>> {
        self.server.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Flush the store to the snapshot path if it changed since the
    /// last flush. A failed write re-arms the dirty flag so the next
    /// request retries instead of silently dropping state.
    fn persist_if_dirty(&self) -> Result<(), DbError> {
        let Some(path) = &self.persist else {
            return Ok(());
        };
        let server = self.server.read().unwrap_or_else(|e| e.into_inner());
        if !server.store().take_dirty() {
            return Ok(());
        }
        server.save(path).inspect_err(|e| {
            server.store().mark_dirty_again();
            eprintln!("eqjoin: snapshot flush failed: {e}");
        })
    }

    /// Force a snapshot flush if the store is dirty (the drain path —
    /// persistence normally happens after every dirtying request).
    pub fn flush(&self) -> Result<(), DbError> {
        self.persist_if_dirty()
    }

    /// Does this request mutate durable state? A flush failure after a
    /// mutation must not be swallowed — the client would believe an
    /// update survived a restart that would in fact lose it. `Drain`
    /// is in the set because its whole point is "flush now": a drain
    /// whose flush failed must not be acknowledged.
    fn is_mutation(request: &Request<E>) -> bool {
        match request {
            Request::InsertTable(_)
            | Request::InsertRows { .. }
            | Request::DeleteRows { .. }
            | Request::Drain => true,
            Request::Batch(requests) => requests.iter().any(Self::is_mutation),
            Request::WithTenant { inner, .. } => Self::is_mutation(inner),
            Request::Ping | Request::ExecuteJoin { .. } => false,
        }
    }

    fn handle_one(&self, request: Request<E>) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::InsertTable(table) => {
                let (name, rows) = (table.name.clone(), table.len());
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_table(table)
                {
                    Ok(()) => Response::TableInserted { table: name, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::InsertRows {
                table,
                start_row,
                rows,
            } => {
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_rows(&table, start_row, rows)
                {
                    Ok(rows) => Response::RowsInserted { table, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::DeleteRows { table, rows } => {
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .delete_rows(&table, &rows)
                {
                    Ok(rows) => Response::RowsDeleted { table, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::ExecuteJoin {
                tokens,
                options,
                projection,
            } => {
                let server = self.server.read().unwrap_or_else(|e| e.into_inner());
                match server.execute_join_projected(&tokens, &options, &projection) {
                    Ok((result, observation)) => Response::JoinExecuted {
                        result,
                        observation,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            // A drain reaching the backend directly: durable state is
            // flushed after every dirtying request already, so there is
            // nothing left to write — acknowledge. (The connection
            // layers own the stop-accepting/finish-in-flight part.)
            Request::Drain => Response::Pong,
            // This backend has exactly one namespace. Serving a tenant
            // envelope here would silently merge tenants' stores, so
            // refuse loudly — multi-tenant serving goes through the
            // tenant registry in `eqjoind-net`.
            Request::WithTenant { .. } => Response::Error(DbError::Protocol(
                "backend has no tenant support (route through a tenant registry)".into(),
            )),
            Request::Batch(_) => Response::Error(DbError::Protocol("nested request batch".into())),
        }
    }
}

impl<E: Engine> ServerApi<E> for LocalBackend<E> {
    fn handle(&self, request: Request<E>) -> Response {
        self.counters.record_request(&request);
        let mutation = self.persist.is_some() && Self::is_mutation(&request);
        let response = match request {
            Request::Batch(requests) => Response::Batch(
                requests
                    .into_iter()
                    .map(|request| self.handle_one(request))
                    .collect(),
            ),
            single => self.handle_one(single),
        };
        match self.persist_if_dirty() {
            Ok(()) => response,
            // A mutation whose snapshot flush failed must not be acked:
            // the in-memory state applied, but the durability the
            // client asked for (--data-dir) did not. Queries keep their
            // results — only cache warmth was at stake, and the dirty
            // flag stays armed for the next attempt.
            Err(e) if mutation => Response::Error(e),
            Err(_) => response,
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use crate::server::JoinOptions;
    use eqjoin_pairing::MockEngine;
    use std::sync::Arc;

    #[test]
    fn one_backend_serves_concurrent_queries() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 7);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..12 {
            t.push_row(vec![Value::Int(i % 4), "x".into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let backend = Arc::new(LocalBackend::<MockEngine>::new());
        backend.handle(Request::InsertTable(enc));
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        let mut all_pairs = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let backend = Arc::clone(&backend);
                    let tokens = tokens.clone();
                    scope.spawn(move || {
                        match backend.handle(Request::ExecuteJoin {
                            tokens,
                            options: JoinOptions::default(),
                            projection: Default::default(),
                        }) {
                            Response::JoinExecuted { result, .. } => result
                                .pairs
                                .iter()
                                .map(|p| (p.left_row, p.right_row))
                                .collect::<Vec<_>>(),
                            _ => panic!("join failed"),
                        }
                    })
                })
                .collect();
            for h in handles {
                all_pairs.push(h.join().unwrap());
            }
        });
        assert!(all_pairs.windows(2).all(|w| w[0] == w[1]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 5, "1 insert + 4 joins");
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.bytes_sent, 0, "in-process: no wire");
    }

    #[test]
    fn failed_snapshot_flush_fails_mutations_but_not_queries() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 9);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        t.push_row(vec![Value::Int(1), "x".into()]);
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        // Snapshot path inside a directory that does not exist: every
        // flush fails. A mutation must come back as a Snapshot error
        // (the ack would promise durability --data-dir cannot deliver)
        // …
        let dir = std::env::temp_dir().join(format!("eqjoin-noflush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = LocalBackend::<MockEngine>::with_persistence(
            dir.join("missing").join("store.snap"),
            None,
            None,
        )
        .unwrap();
        assert!(matches!(
            backend.handle(Request::InsertTable(enc)),
            Response::Error(DbError::Snapshot(_))
        ));
        // …while a query keeps its result: only cache warmth was at
        // stake (the table itself applied in memory above).
        assert!(matches!(
            backend.handle(Request::ExecuteJoin {
                tokens,
                options: JoinOptions::default(),
                projection: Default::default(),
            }),
            Response::JoinExecuted { .. }
        ));
    }

    #[test]
    fn transport_counters_see_batches() {
        let backend = LocalBackend::<MockEngine>::new();
        backend.handle(Request::Ping);
        backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Ping,
            Request::Ping,
        ]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 2);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn nested_batch_is_a_per_element_error() {
        let backend = LocalBackend::<MockEngine>::new();
        let response = backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Batch(vec![Request::Ping]),
        ]));
        let Response::Batch(responses) = response else {
            panic!("expected a batch response");
        };
        assert!(matches!(responses[0], Response::Pong));
        assert!(matches!(
            responses[1],
            Response::Error(DbError::Protocol(_))
        ));
    }
}
