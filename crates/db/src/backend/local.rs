//! The in-process backend: a [`DbServer`] behind the protocol, with
//! interior synchronization so one instance can serve many sessions,
//! connection threads or shards concurrently.

use super::transport::TransportCounters;
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use crate::server::DbServer;
use eqjoin_pairing::Engine;
use std::sync::{RwLock, RwLockReadGuard};

use super::TransportStats;

/// The in-process [`ServerApi`] implementation.
///
/// Table storage sits behind an `RwLock`: uploads take the write lock,
/// joins share the read lock, so concurrent queries — many sessions
/// over one `Arc<LocalBackend>`, or the `eqjoind` connection threads —
/// execute in parallel.
#[derive(Default)]
pub struct LocalBackend<E: Engine> {
    server: RwLock<DbServer<E>>,
    counters: TransportCounters,
}

impl<E: Engine> LocalBackend<E> {
    /// Empty backend.
    pub fn new() -> Self {
        LocalBackend {
            server: RwLock::new(DbServer::new()),
            counters: TransportCounters::default(),
        }
    }

    /// Empty backend whose server resolves auto thread requests
    /// (`JoinOptions::threads == 0`) to `threads` workers instead of
    /// the machine's available parallelism (`eqjoind --threads`).
    pub fn with_default_threads(threads: Option<usize>) -> Self {
        let mut server = DbServer::new();
        server.set_default_threads(threads);
        LocalBackend {
            server: RwLock::new(server),
            counters: TransportCounters::default(),
        }
    }

    /// Read access to the underlying server (tests and experiments peek
    /// at stored ciphertexts). Holds the storage read lock for the
    /// guard's lifetime.
    pub fn server(&self) -> RwLockReadGuard<'_, DbServer<E>> {
        self.server.read().unwrap_or_else(|e| e.into_inner())
    }

    fn handle_one(&self, request: Request<E>) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::InsertTable(table) => {
                let (name, rows) = (table.name.clone(), table.len());
                self.server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_table(table);
                Response::TableInserted { table: name, rows }
            }
            Request::ExecuteJoin {
                tokens,
                options,
                projection,
            } => {
                let server = self.server.read().unwrap_or_else(|e| e.into_inner());
                match server.execute_join_projected(&tokens, &options, &projection) {
                    Ok((result, observation)) => Response::JoinExecuted {
                        result,
                        observation,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::Batch(_) => Response::Error(DbError::Protocol("nested request batch".into())),
        }
    }
}

impl<E: Engine> ServerApi<E> for LocalBackend<E> {
    fn handle(&self, request: Request<E>) -> Response {
        self.counters.record_request(&request);
        match request {
            Request::Batch(requests) => Response::Batch(
                requests
                    .into_iter()
                    .map(|request| self.handle_one(request))
                    .collect(),
            ),
            single => self.handle_one(single),
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use crate::server::JoinOptions;
    use eqjoin_pairing::MockEngine;
    use std::sync::Arc;

    #[test]
    fn one_backend_serves_concurrent_queries() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 7);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..12 {
            t.push_row(vec![Value::Int(i % 4), "x".into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let backend = Arc::new(LocalBackend::<MockEngine>::new());
        backend.handle(Request::InsertTable(enc));
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        let mut all_pairs = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let backend = Arc::clone(&backend);
                    let tokens = tokens.clone();
                    scope.spawn(move || {
                        match backend.handle(Request::ExecuteJoin {
                            tokens,
                            options: JoinOptions::default(),
                            projection: Default::default(),
                        }) {
                            Response::JoinExecuted { result, .. } => result
                                .pairs
                                .iter()
                                .map(|p| (p.left_row, p.right_row))
                                .collect::<Vec<_>>(),
                            _ => panic!("join failed"),
                        }
                    })
                })
                .collect();
            for h in handles {
                all_pairs.push(h.join().unwrap());
            }
        });
        assert!(all_pairs.windows(2).all(|w| w[0] == w[1]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 5, "1 insert + 4 joins");
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.bytes_sent, 0, "in-process: no wire");
    }

    #[test]
    fn transport_counters_see_batches() {
        let backend = LocalBackend::<MockEngine>::new();
        backend.handle(Request::Ping);
        backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Ping,
            Request::Ping,
        ]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 2);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn nested_batch_is_a_per_element_error() {
        let backend = LocalBackend::<MockEngine>::new();
        let response = backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Batch(vec![Request::Ping]),
        ]));
        let Response::Batch(responses) = response else {
            panic!("expected a batch response");
        };
        assert!(matches!(responses[0], Response::Pong));
        assert!(matches!(
            responses[1],
            Response::Error(DbError::Protocol(_))
        ));
    }
}
