//! The in-process backend: a [`DbServer`] behind the protocol, with
//! interior synchronization so one instance can serve many sessions,
//! connection threads or shards concurrently — optionally **persistent**:
//! give it a snapshot path and every state change (table uploads,
//! incremental row updates, fresh decrypt-cache entries) is flushed to
//! disk, so a restarted server resumes the series warm.

use super::transport::TransportCounters;
use crate::error::DbError;
use crate::protocol::{Request, Response, ServerApi};
use crate::server::DbServer;
use eqjoin_pairing::Engine;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Mutex, RwLock, RwLockReadGuard};

use super::TransportStats;

/// Append-only journal of mutation intents sitting next to the
/// snapshot (`store.snap` → `store.journal`): every mutation request is
/// appended (length-prefixed, checksummed, fsynced) *before* it is
/// applied in memory, and the journal is truncated once a snapshot
/// flush has made its effects durable. A `kill -9` between those two
/// points leaves the intent on disk; startup replays complete entries
/// idempotently (an entry already covered by the snapshot replays as a
/// no-op), so the restarted store is consistent with everything that
/// was ever acknowledged — and a torn final entry (the crash happened
/// mid-append, so its request was never acknowledged) is discarded
/// cleanly.
struct Journal {
    path: PathBuf,
    /// Serializes appends: concurrent writers each want their
    /// length-prefix + payload + fsync to hit the file contiguously.
    lock: Mutex<()>,
}

impl Journal {
    fn new(snapshot_path: &std::path::Path) -> Self {
        Journal {
            path: snapshot_path.with_extension("journal"),
            lock: Mutex::new(()),
        }
    }

    /// Current journal size in bytes (0 if it does not exist). Drives
    /// the compaction-threshold decision: below the threshold the
    /// journal *is* the durable delta and the snapshot rewrite is
    /// deferred.
    fn size(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    /// Append one intent record: `len ‖ fnv1a(bytes) ‖ bytes`, fsynced
    /// before returning so an acknowledged mutation's intent survives
    /// any crash after this call.
    fn append(&self, bytes: &[u8]) -> Result<(), DbError> {
        // Byte counts ride the ns-bucketed histogram: the exponential
        // buckets work for any magnitude, and the scrape labels the
        // unit in the metric name.
        eqjoin_obs::histogram!("eqjoin_store_journal_append_bytes").record_ns(bytes.len() as u64);
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut record = Vec::with_capacity(bytes.len() + 8);
        record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        record.extend_from_slice(&fnv1a(bytes).to_le_bytes());
        record.extend_from_slice(bytes);
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| DbError::Snapshot(format!("open journal {}: {e}", self.path.display())))?;
        file.write_all(&record).map_err(|e| {
            DbError::Snapshot(format!("append journal {}: {e}", self.path.display()))
        })?;
        file.sync_all()
            .map_err(|e| DbError::Snapshot(format!("fsync journal {}: {e}", self.path.display())))
    }

    /// All complete, checksum-valid entries, in append order. Stops at
    /// the first torn or corrupt record: everything after it was
    /// written later and never acknowledged.
    fn entries(&self) -> Vec<Vec<u8>> {
        let Ok(bytes) = std::fs::read(&self.path) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut at = 0usize;
        loop {
            let header = bytes
                .get(at..at + 4)
                .and_then(|s| <[u8; 4]>::try_from(s).ok());
            let Some(len_bytes) = header else { break };
            let len = u32::from_le_bytes(len_bytes) as usize;
            let sum = bytes
                .get(at + 4..at + 8)
                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                .map(u32::from_le_bytes);
            let body = at
                .checked_add(8)
                .and_then(|start| start.checked_add(len).map(|end| (start, end)))
                .and_then(|(start, end)| bytes.get(start..end));
            match (sum, body) {
                (Some(sum), Some(body)) if fnv1a(body) == sum => {
                    out.push(body.to_vec());
                    at += 8 + len;
                }
                _ => break,
            }
        }
        out
    }

    /// Drop the journal after its entries are covered by a durable
    /// snapshot. Best-effort: a leftover journal only costs an
    /// idempotent (no-op) replay on the next start.
    fn truncate(&self) {
        let _guard = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        if self.path.exists() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// FNV-1a, the checksum guarding journal records against torn writes
/// (corruption detection, not authentication — the snapshot itself
/// carries the SHA-256).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = 0x811c_9dc5u32;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The in-process [`ServerApi`] implementation.
///
/// Table storage sits behind an `RwLock`: uploads take the write lock,
/// joins share the read lock, so concurrent queries — many sessions
/// over one `Arc<LocalBackend>`, or the `eqjoind` connection threads —
/// execute in parallel.
#[derive(Default)]
pub struct LocalBackend<E: Engine> {
    server: RwLock<DbServer<E>>,
    counters: TransportCounters,
    /// Snapshot path; when set, the store is flushed after any request
    /// that dirtied it.
    persist: Option<PathBuf>,
    /// Mutation-intent journal (persistent backends only): written
    /// before a mutation applies, truncated after a snapshot flush.
    journal: Option<Journal>,
    /// O(delta) persistence: while the journal is smaller than this many
    /// bytes, dirtying requests leave the snapshot alone (the fsynced
    /// journal already makes the mutations durable) and only the
    /// threshold crossing pays a full snapshot rewrite + journal
    /// truncation ("compaction"). `0` (the default) keeps the legacy
    /// flush-every-mutation behavior. Forced flushes (drain, shutdown)
    /// always compact, so a graceful restart starts journal-free and
    /// warm.
    compaction_threshold: u64,
}

impl<E: Engine> LocalBackend<E> {
    /// Empty backend.
    pub fn new() -> Self {
        LocalBackend {
            server: RwLock::new(DbServer::new()),
            counters: TransportCounters::default(),
            persist: None,
            journal: None,
            compaction_threshold: 0,
        }
    }

    /// Empty backend whose server resolves auto thread requests
    /// (`JoinOptions::threads == 0`) to `threads` workers instead of
    /// the machine's available parallelism (`eqjoind --threads`).
    pub fn with_default_threads(threads: Option<usize>) -> Self {
        Self::with_config(threads, None)
    }

    /// Empty backend with both server defaults configured: decrypt
    /// workers and decrypt-cache capacity (`eqjoind --threads
    /// --decrypt-cache-cap`).
    pub fn with_config(threads: Option<usize>, cache_cap: Option<usize>) -> Self {
        let mut server = DbServer::new();
        server.set_default_threads(threads);
        if let Some(cap) = cache_cap {
            server.set_decrypt_cache_cap(cap);
        }
        LocalBackend {
            server: RwLock::new(server),
            counters: TransportCounters::default(),
            persist: None,
            journal: None,
            compaction_threshold: 0,
        }
    }

    /// Persistent backend (`eqjoind --data-dir`): loads the snapshot at
    /// `path` if one exists (rejecting corrupt/mismatched snapshots
    /// with a clean error) and re-saves the store whenever tables,
    /// rows or the decrypt cache change. `threads` and `cache_cap`
    /// configure the restored server like the plain constructors do.
    /// `compaction_threshold` (bytes of journal) arms O(delta)
    /// persistence; `0` flushes a full snapshot after every mutation.
    pub fn with_persistence(
        path: impl Into<PathBuf>,
        threads: Option<usize>,
        cache_cap: Option<usize>,
        compaction_threshold: u64,
    ) -> Result<Self, DbError> {
        let path = path.into();
        // A crash between serialization and rename leaves `path.tmp`
        // behind; sweep it even when no snapshot exists yet (load()
        // sweeps on its own path, but only when it runs).
        crate::store::sweep_stale_tmp(&path);
        let mut server = if path.exists() {
            DbServer::load(&path)?
        } else {
            DbServer::new()
        };
        server.set_default_threads(threads);
        if let Some(cap) = cache_cap {
            server.set_decrypt_cache_cap(cap);
        }
        let journal = Journal::new(&path);
        let replayed = Self::replay_journal(&mut server, &journal);
        let backend = LocalBackend {
            server: RwLock::new(server),
            counters: TransportCounters::default(),
            persist: Some(path),
            journal: Some(journal),
            compaction_threshold,
        };
        if replayed {
            // Fold the replayed intents into a fresh durable snapshot
            // right away (compacting regardless of threshold), so the
            // journal can be dropped and a second crash does not depend
            // on replaying twice.
            backend.persist(true)?;
        }
        Ok(backend)
    }

    /// Replay journaled mutation intents into a freshly-loaded server.
    /// Idempotent by construction: an intent the snapshot already
    /// covers fails with [`DbError::UnknownRow`] (row ids collide on
    /// insert, are gone on delete) or re-applies an identical
    /// `InsertTable` — both leave the store exactly where the snapshot
    /// put it. Returns whether any entry was applied or skipped (i.e.
    /// the journal existed and should be folded into a snapshot).
    fn replay_journal(server: &mut DbServer<E>, journal: &Journal) -> bool {
        let entries = journal.entries();
        let had_entries = !entries.is_empty();
        for bytes in entries {
            let request = match Request::<E>::from_bytes(&bytes) {
                Ok(request) => request,
                Err(e) => {
                    // Checksum-valid but undecodable: a format drift,
                    // not a torn write. The intent was acknowledged at
                    // most as far as the snapshot covers it; skip.
                    eprintln!("eqjoin: skipping undecodable journal entry: {e}");
                    continue;
                }
            };
            let outcome = match request {
                Request::InsertTable(table) => server.insert_table(table),
                Request::InsertRows {
                    table,
                    start_row,
                    rows,
                } => server.insert_rows(&table, start_row, rows).map(|_| ()),
                Request::DeleteRows { table, rows } => {
                    server.delete_rows(&table, &rows).map(|_| ())
                }
                Request::CopyRows {
                    table,
                    join_column,
                    filter_columns,
                    start_row,
                    rows,
                } => server
                    .copy_rows(&table, &join_column, &filter_columns, start_row, rows)
                    .map(|_| ()),
                // Only the four mutations above are ever journaled.
                _ => Ok(()),
            };
            match outcome {
                Ok(()) => {}
                // Already covered by the snapshot (the crash hit after
                // the flush but before the journal truncate).
                Err(DbError::UnknownRow { .. }) => {}
                Err(e) => eprintln!("eqjoin: journal replay skipped an entry: {e}"),
            }
        }
        had_entries
    }

    /// Read access to the underlying server (tests and experiments peek
    /// at stored ciphertexts). Holds the storage read lock for the
    /// guard's lifetime.
    pub fn server(&self) -> RwLockReadGuard<'_, DbServer<E>> {
        self.server.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Flush the store to the snapshot path if it changed since the
    /// last flush. A failed write re-arms the dirty flag so the next
    /// request retries instead of silently dropping state.
    fn persist_if_dirty(&self) -> Result<(), DbError> {
        self.persist(false)
    }

    /// The persistence decision after a dirtying request.
    ///
    /// With a nonzero [`compaction threshold`](Self::with_persistence),
    /// a sub-threshold journal means the mutation is *already* durable
    /// (append-before-apply, fsynced), so the full snapshot rewrite is
    /// deferred — persisted bytes stay O(delta), not O(store). Crossing
    /// the threshold compacts: one snapshot rewrite covers every
    /// journaled intent and the journal is truncated. `force` (drain,
    /// replay fold-in) always compacts.
    fn persist(&self, force: bool) -> Result<(), DbError> {
        let Some(path) = &self.persist else {
            return Ok(());
        };
        let server = self.server.read().unwrap_or_else(|e| e.into_inner());
        if !force && self.compaction_threshold > 0 {
            let journal_bytes = self.journal.as_ref().map_or(0, Journal::size);
            if journal_bytes < self.compaction_threshold {
                if server.store().is_dirty() {
                    eqjoin_obs::counter!("eqjoin_store_snapshot_deferred_total").inc();
                }
                return Ok(());
            }
        }
        if !server.store().take_dirty() {
            return Ok(());
        }
        let compaction_timer = eqjoin_obs::span!("store_compaction");
        let flushed = match eqjoin_failpoint::failpoint!("local::flush") {
            None => server.save(path),
            Some(eqjoin_failpoint::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                server.save(path)
            }
            Some(eqjoin_failpoint::Action::Abort) => std::process::abort(),
            Some(_) => Err(DbError::Snapshot(
                "failpoint local::flush: injected error".into(),
            )),
        };
        drop(compaction_timer);
        match flushed {
            Ok(()) => {
                eqjoin_obs::counter!("eqjoin_store_snapshot_flushes_total").inc();
                eqjoin_obs::info!("snapshot_flush", "path" => path.display());
                // A crash in this window (snapshot durable, journal not
                // yet truncated) replays the journal over the *newer*
                // snapshot — idempotent by construction, exercised by
                // the chaos suite.
                match eqjoin_failpoint::failpoint!("store::journal::compact") {
                    None => {}
                    Some(eqjoin_failpoint::Action::Delay(ms)) => {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                    Some(eqjoin_failpoint::Action::Abort) => std::process::abort(),
                    Some(_) => {
                        // Injected truncation failure: state is durable
                        // (snapshot + stale journal replays as a no-op),
                        // so surface the fault without re-arming dirty.
                        return Err(DbError::Snapshot(
                            "failpoint store::journal::compact: injected error".into(),
                        ));
                    }
                }
                // The snapshot now covers every applied intent: the
                // journal is dead weight (and must not replay over a
                // *newer* snapshot than the one it was written against).
                if let Some(journal) = &self.journal {
                    journal.truncate();
                }
                Ok(())
            }
            Err(e) => {
                server.store().mark_dirty_again();
                eprintln!("eqjoin: snapshot flush failed: {e}");
                Err(e)
            }
        }
    }

    /// Force a compacting flush if the store is dirty or a journal is
    /// pending (the drain path — after it, the snapshot alone carries
    /// the whole store and a restart is warm with zero replay).
    pub fn flush(&self) -> Result<(), DbError> {
        self.persist(true)
    }

    /// Does this request mutate durable state? A flush failure after a
    /// mutation must not be swallowed — the client would believe an
    /// update survived a restart that would in fact lose it. `Drain`
    /// is in the set because its whole point is "flush now": a drain
    /// whose flush failed must not be acknowledged.
    fn is_mutation(request: &Request<E>) -> bool {
        match request {
            Request::InsertTable(_)
            | Request::InsertRows { .. }
            | Request::DeleteRows { .. }
            | Request::CopyRows { .. }
            | Request::Drain => true,
            Request::Batch(requests) => requests.iter().any(Self::is_mutation),
            Request::WithTenant { inner, .. } => Self::is_mutation(inner),
            Request::Ping | Request::ExecuteJoin { .. } | Request::Stats => false,
        }
    }

    /// Journal a mutation's intent before applying it. A failed append
    /// fails the mutation up front — acknowledging a mutation whose
    /// intent is not durable would break the crash-replay guarantee.
    fn journal_intent(&self, request: &Request<E>) -> Result<(), DbError> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        if !matches!(
            request,
            Request::InsertTable(_)
                | Request::InsertRows { .. }
                | Request::DeleteRows { .. }
                | Request::CopyRows { .. }
        ) {
            return Ok(());
        }
        journal.append(&request.to_bytes())?;
        match eqjoin_failpoint::failpoint!("local::journal::after_append") {
            None => Ok(()),
            Some(eqjoin_failpoint::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            Some(eqjoin_failpoint::Action::Abort) => std::process::abort(),
            Some(_) => Err(DbError::Snapshot(
                "failpoint local::journal::after_append: injected error".into(),
            )),
        }
    }

    fn handle_one(&self, request: Request<E>) -> Response {
        if let Err(e) = self.journal_intent(&request) {
            return Response::Error(e);
        }
        match request {
            Request::Ping => Response::Pong,
            Request::InsertTable(table) => {
                let (name, rows) = (table.name.clone(), table.len());
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_table(table)
                {
                    Ok(()) => Response::TableInserted { table: name, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::InsertRows {
                table,
                start_row,
                rows,
            } => {
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert_rows(&table, start_row, rows)
                {
                    Ok(rows) => Response::RowsInserted { table, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::DeleteRows { table, rows } => {
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .delete_rows(&table, &rows)
                {
                    Ok(rows) => Response::RowsDeleted { table, rows },
                    Err(e) => Response::Error(e),
                }
            }
            Request::CopyRows {
                table,
                join_column,
                filter_columns,
                start_row,
                rows,
            } => {
                match self
                    .server
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .copy_rows(&table, &join_column, &filter_columns, start_row, rows)
                {
                    Ok((rows, total_rows)) => Response::CopyRows {
                        table,
                        rows,
                        total_rows,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            Request::ExecuteJoin {
                tokens,
                options,
                projection,
            } => {
                let server = self.server.read().unwrap_or_else(|e| e.into_inner());
                match server.execute_join_projected(&tokens, &options, &projection) {
                    Ok((result, observation)) => Response::JoinExecuted {
                        result,
                        observation,
                    },
                    Err(e) => Response::Error(e),
                }
            }
            // A drain reaching the backend directly: force a compacting
            // flush — under O(delta) persistence the journal may hold
            // deferred deltas, and the drain contract is "snapshot
            // alone carries the store". (The connection layers own the
            // stop-accepting/finish-in-flight part.)
            Request::Drain => match self.persist(true) {
                Ok(()) => Response::Pong,
                Err(e) => Response::Error(e),
            },
            // Observability snapshot: this backend's own counters (the
            // snapshot includes the Stats request itself — `handle`
            // counts before dispatching) plus the process exposition.
            Request::Stats => Response::Stats(crate::protocol::ServerMetrics {
                transport: self.counters.snapshot(),
                exposition: eqjoin_obs::exposition(),
            }),
            // This backend has exactly one namespace. Serving a tenant
            // envelope here would silently merge tenants' stores, so
            // refuse loudly — multi-tenant serving goes through the
            // tenant registry in `eqjoind-net`.
            Request::WithTenant { .. } => Response::Error(DbError::Protocol(
                "backend has no tenant support (route through a tenant registry)".into(),
            )),
            Request::Batch(_) => Response::Error(DbError::Protocol("nested request batch".into())),
        }
    }
}

impl<E: Engine> ServerApi<E> for LocalBackend<E> {
    fn handle(&self, request: Request<E>) -> Response {
        self.counters.record_request(&request);
        let mutation = self.persist.is_some() && Self::is_mutation(&request);
        let response = match request {
            Request::Batch(requests) => Response::Batch(
                requests
                    .into_iter()
                    .map(|request| self.handle_one(request))
                    .collect(),
            ),
            single => self.handle_one(single),
        };
        match self.persist_if_dirty() {
            Ok(()) => response,
            // A mutation whose snapshot flush failed must not be acked:
            // the in-memory state applied, but the durability the
            // client asked for (--data-dir) did not. Queries keep their
            // results — only cache warmth was at stake, and the dirty
            // flag stays armed for the next attempt.
            Err(e) if mutation => Response::Error(e),
            Err(_) => response,
        }
    }

    fn transport_stats(&self) -> TransportStats {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{DbClient, TableConfig};
    use crate::data::{Schema, Table, Value};
    use crate::query::JoinQuery;
    use crate::server::JoinOptions;
    use eqjoin_pairing::MockEngine;
    use std::sync::Arc;

    #[test]
    fn one_backend_serves_concurrent_queries() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 7);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..12 {
            t.push_row(vec![Value::Int(i % 4), "x".into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let backend = Arc::new(LocalBackend::<MockEngine>::new());
        backend.handle(Request::InsertTable(enc));
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        let mut all_pairs = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let backend = Arc::clone(&backend);
                    let tokens = tokens.clone();
                    scope.spawn(move || {
                        match backend.handle(Request::ExecuteJoin {
                            tokens,
                            options: JoinOptions::default(),
                            projection: Default::default(),
                        }) {
                            Response::JoinExecuted { result, .. } => result
                                .pairs
                                .iter()
                                .map(|p| (p.left_row, p.right_row))
                                .collect::<Vec<_>>(),
                            _ => panic!("join failed"),
                        }
                    })
                })
                .collect();
            for h in handles {
                all_pairs.push(h.join().unwrap());
            }
        });
        assert!(all_pairs.windows(2).all(|w| w[0] == w[1]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 5, "1 insert + 4 joins");
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.bytes_sent, 0, "in-process: no wire");
    }

    #[test]
    fn failed_snapshot_flush_fails_mutations_but_not_queries() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 9);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        t.push_row(vec![Value::Int(1), "x".into()]);
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        // Snapshot path that is an existing non-empty *directory*: the
        // journal (store.journal) and the staging file (store.tmp)
        // write fine, but the final rename over the directory fails —
        // so every flush fails while intents still journal. A mutation
        // must come back as a Snapshot error (the ack would promise
        // durability --data-dir cannot deliver) …
        let dir = std::env::temp_dir().join(format!("eqjoin-noflush-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("store.snap");
        let backend = LocalBackend::<MockEngine>::with_persistence(&snap, None, None, 0).unwrap();
        // Occupy the snapshot path with a non-empty directory *after*
        // construction: the rename at the end of every save now fails.
        std::fs::create_dir_all(&snap).unwrap();
        std::fs::write(snap.join("occupied"), b"x").unwrap();
        assert!(matches!(
            backend.handle(Request::InsertTable(enc)),
            Response::Error(DbError::Snapshot(_))
        ));
        // …while a query keeps its result: only cache warmth was at
        // stake (the table itself applied in memory above).
        assert!(matches!(
            backend.handle(Request::ExecuteJoin {
                tokens,
                options: JoinOptions::default(),
                projection: Default::default(),
            }),
            Response::JoinExecuted { .. }
        ));
    }

    #[test]
    fn journaled_intents_replay_after_a_crash() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 11);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..6 {
            t.push_row(vec![Value::Int(i % 2), "x".into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        let dir = std::env::temp_dir().join(format!("eqjoin-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("store.snap");

        // Simulate a server killed between journaling an InsertTable
        // intent and flushing the snapshot: the journal holds the
        // intent (plus a torn half-record from the moment of death),
        // and no snapshot exists.
        {
            let journal = Journal::new(&snap);
            journal
                .append(&Request::<MockEngine>::InsertTable(enc).to_bytes())
                .unwrap();
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&journal.path)
                .unwrap();
            f.write_all(&[42, 0, 0, 0, 7, 7]).unwrap(); // torn tail
        }

        // Restart: the intent replays, the torn tail is discarded, and
        // the replayed state is folded into a fresh snapshot with the
        // journal truncated.
        let backend = LocalBackend::<MockEngine>::with_persistence(&snap, None, None, 0).unwrap();
        assert!(snap.exists(), "replayed state must be snapshotted");
        assert!(
            !snap.with_extension("journal").exists(),
            "journal must be truncated once the snapshot covers it"
        );
        match backend.handle(Request::ExecuteJoin {
            tokens,
            options: JoinOptions::default(),
            projection: Default::default(),
        }) {
            Response::JoinExecuted { result, .. } => {
                assert!(!result.pairs.is_empty(), "replayed table must join")
            }
            other => panic!("join over replayed table failed: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_threshold_defers_snapshots_until_crossed() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 13);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..4 {
            t.push_row(vec![Value::Int(i % 2), "x".into()]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();
        let tokens = client
            .query_tokens(&JoinQuery::on("T", "k", "T", "k"))
            .unwrap();

        let dir = std::env::temp_dir().join(format!("eqjoin-odelta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("store.snap");
        let journal = snap.with_extension("journal");

        // Generous threshold: every mutation below stays sub-threshold,
        // so the fsynced journal is the only durable artifact.
        let backend =
            LocalBackend::<MockEngine>::with_persistence(&snap, None, None, 1 << 20).unwrap();
        assert!(matches!(
            backend.handle(Request::InsertTable(enc)),
            Response::TableInserted { .. }
        ));
        assert!(
            journal.exists() && !snap.exists(),
            "sub-threshold mutation must defer the snapshot; the journal is the durable delta"
        );
        let mut last = std::fs::metadata(&journal).unwrap().len();
        for _ in 0..3 {
            let (start_row, rows) = client
                .encrypt_rows("T", &[vec![Value::Int(1), "y".into()]])
                .unwrap();
            assert!(matches!(
                backend.handle(Request::InsertRows {
                    table: "T".into(),
                    start_row,
                    rows,
                }),
                Response::RowsInserted { .. }
            ));
            let size = std::fs::metadata(&journal).unwrap().len();
            assert!(size > last, "each deferred mutation appends O(delta) bytes");
            last = size;
            assert!(!snap.exists(), "snapshot rewrite must stay deferred");
        }

        // A forced flush (the drain path) always compacts: one snapshot
        // rewrite covers every journaled intent, journal truncated.
        backend.flush().unwrap();
        assert!(snap.exists(), "forced flush must compact to a snapshot");
        assert!(!journal.exists(), "compaction must truncate the journal");

        // Post-compaction mutations defer again, leaving the snapshot
        // bytes untouched.
        let snap_bytes = std::fs::read(&snap).unwrap();
        let (start_row, rows) = client
            .encrypt_rows("T", &[vec![Value::Int(0), "z".into()]])
            .unwrap();
        assert!(matches!(
            backend.handle(Request::InsertRows {
                table: "T".into(),
                start_row,
                rows,
            }),
            Response::RowsInserted { .. }
        ));
        assert!(journal.exists(), "new delta journals again");
        assert_eq!(
            std::fs::read(&snap).unwrap(),
            snap_bytes,
            "deferred persistence must not rewrite the snapshot"
        );
        drop(backend);

        // Restart with a pending journal: replay folds the deltas into
        // a fresh snapshot (compacting regardless of threshold) and the
        // full row set joins.
        let reopened =
            LocalBackend::<MockEngine>::with_persistence(&snap, None, None, 1 << 20).unwrap();
        assert!(
            !journal.exists(),
            "replay fold-in must compact the journal away"
        );
        match reopened.handle(Request::ExecuteJoin {
            tokens,
            options: JoinOptions::default(),
            projection: Default::default(),
        }) {
            Response::JoinExecuted { result, .. } => {
                // 4 seed rows (2 per key) + 3 × Int(1) + 1 × Int(0):
                // key 0 has 3 rows, key 1 has 5 → 9 + 25 self-join pairs.
                assert_eq!(result.pairs.len(), 34, "replayed deltas must all join");
            }
            other => panic!("join over replayed store failed: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_crossing_threshold_triggers_compaction() {
        let mut client = DbClient::<MockEngine>::new(1, 2, 17);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        t.push_row(vec![Value::Int(1), "x".into()]);
        let enc = client
            .encrypt_table(
                &t,
                TableConfig {
                    join_column: "k".into(),
                    filter_columns: vec!["a".into()],
                },
            )
            .unwrap();

        let dir = std::env::temp_dir().join(format!("eqjoin-cross-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("store.snap");
        let journal = snap.with_extension("journal");

        // Small threshold: the InsertTable intent alone crosses it, so
        // the very first persistence decision compacts.
        let backend = LocalBackend::<MockEngine>::with_persistence(&snap, None, None, 32).unwrap();
        assert!(matches!(
            backend.handle(Request::InsertTable(enc)),
            Response::TableInserted { .. }
        ));
        assert!(
            snap.exists() && !journal.exists(),
            "a journal at/past the threshold must compact on the spot"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transport_counters_see_batches() {
        let backend = LocalBackend::<MockEngine>::new();
        backend.handle(Request::Ping);
        backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Ping,
            Request::Ping,
        ]));
        let stats = backend.transport_stats();
        assert_eq!(stats.round_trips, 2);
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn nested_batch_is_a_per_element_error() {
        let backend = LocalBackend::<MockEngine>::new();
        let response = backend.handle(Request::Batch(vec![
            Request::Ping,
            Request::Batch(vec![Request::Ping]),
        ]));
        let Response::Batch(responses) = response else {
            panic!("expected a batch response");
        };
        assert!(matches!(responses[0], Response::Pong));
        assert!(matches!(
            responses[1],
            Response::Error(DbError::Protocol(_))
        ));
    }
}
