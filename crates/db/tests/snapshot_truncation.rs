//! Torn-snapshot gate: a snapshot file cut off at **every** byte
//! offset — the state a crash mid-write can leave on disk if the
//! tmp+rename protocol is ever bypassed — must load as a clean
//! [`DbError::Snapshot`], never a panic and never a silently partial
//! store. A byte-flip property test covers in-place corruption the
//! same way (the SHA-256 body checksum catches what framing checks
//! let through).

use eqjoin_db::{
    DbClient, DbError, EncryptedStore, LocalBackend, Request, Response, Schema, ServerApi, Table,
    TableConfig, Value,
};
use eqjoin_pairing::MockEngine;
use proptest::prelude::*;

/// A small but non-trivial snapshot: two tables, prepared pairing
/// state, a warm decrypt-cache entry.
fn snapshot_bytes() -> Vec<u8> {
    let mut client = DbClient::<MockEngine>::new(1, 2, 7);
    let mut left = Table::new(Schema::new("L", &["k", "a"]));
    let mut right = Table::new(Schema::new("R", &["k", "b"]));
    for i in 0..4i64 {
        left.push_row(vec![Value::Int(i % 2), Value::Str(format!("l{i}"))]);
        right.push_row(vec![Value::Int(i % 2), Value::Str(format!("r{i}"))]);
    }
    let cfg = |col: &str| TableConfig {
        join_column: "k".into(),
        filter_columns: vec![col.to_owned()],
    };
    let mut store = EncryptedStore::<MockEngine>::new();
    store
        .insert_table(client.encrypt_table(&left, cfg("a")).unwrap())
        .unwrap();
    store
        .insert_table(client.encrypt_table(&right, cfg("b")).unwrap())
        .unwrap();
    store.snapshot_bytes()
}

#[test]
fn every_truncation_offset_is_a_clean_snapshot_error() {
    let full = snapshot_bytes();
    assert!(
        EncryptedStore::<MockEngine>::from_snapshot_bytes(&full).is_ok(),
        "the untruncated snapshot must parse"
    );
    for cut in 0..full.len() {
        match EncryptedStore::<MockEngine>::from_snapshot_bytes(&full[..cut]) {
            Err(DbError::Snapshot(_)) => {}
            Err(other) => panic!("truncation at {cut}: expected a Snapshot error, got {other:?}"),
            Ok(_) => panic!("truncation at {cut} bytes must never parse as a valid store"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flipping any byte anywhere in the file — magic, body, or
    // trailing checksum — is caught and typed.
    #[test]
    fn any_single_byte_flip_is_a_clean_snapshot_error(pos in any::<usize>(), flip in 1u8..=255) {
        let mut bytes = snapshot_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match EncryptedStore::<MockEngine>::from_snapshot_bytes(&bytes) {
            Err(DbError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "flip at {pos}: expected Snapshot error, got {other:?}"),
            Ok(_) => prop_assert!(false, "flip at {pos} must not parse"),
        }
    }

    // Appending trailing garbage is rejected too — the format is
    // self-delimiting, so a snapshot concatenated with junk is not a
    // snapshot.
    #[test]
    fn trailing_garbage_is_rejected(extra in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = snapshot_bytes();
        bytes.extend_from_slice(&extra);
        prop_assert!(matches!(
            EncryptedStore::<MockEngine>::from_snapshot_bytes(&bytes),
            Err(DbError::Snapshot(_))
        ));
    }
}

// ---------------------------------------------------------------------------
// O(delta) persistence vs the always-full-snapshot oracle
// ---------------------------------------------------------------------------

/// One step of a persistence workload: mutations interleaved with
/// explicit compactions.
#[derive(Debug, Clone)]
enum Op {
    /// Insert this many fresh rows (1..=3).
    Insert(u8),
    /// Bulk-load this many fresh rows (1..=2) as a COPY chunk.
    Copy(u8),
    /// Delete the oldest still-live row id.
    Delete,
    /// Forced flush — the drain path, always compacts.
    Compact,
}

/// Decode a raw proptest byte into an [`Op`] (insert-heavy mix: three
/// insert codes, two COPY chunks, two deletes, one compaction).
fn decode_op(code: u8) -> Op {
    match code % 8 {
        c @ 0..=2 => Op::Insert(c + 1),
        c @ 3..=4 => Op::Copy(c - 2),
        5 | 6 => Op::Delete,
        _ => Op::Compact,
    }
}

/// Unique scratch directory per proptest case (cases run in one
/// process; the thread id alone would collide across cases).
fn scratch(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eqjoin-odelta-prop-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A materialized step: the exact request both stores will apply, or a
/// forced compaction.
enum Step {
    Req(Box<Request<MockEngine>>),
    Compact,
}

impl Step {
    fn req(r: Request<MockEngine>) -> Self {
        Step::Req(Box::new(r))
    }
}

fn apply(backend: &LocalBackend<MockEngine>, steps: &[Step]) {
    for step in steps {
        match step {
            Step::Req(req) => {
                let response = backend.handle((**req).clone());
                assert!(
                    !matches!(response, Response::Error(_)),
                    "workload mutations must apply cleanly"
                );
            }
            Step::Compact => backend.flush().unwrap(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The incremental-persistence equivalence gate: any interleaving of
    // inserts, deletes and compactions, cut short by a crash at any
    // step boundary (optionally mid-append, leaving a torn journal
    // tail), must replay on restart to a store BYTE-IDENTICAL to an
    // oracle that rewrote the full snapshot after every mutation.
    #[test]
    fn deferred_journal_replays_byte_identical_to_full_snapshot_oracle(
        codes in proptest::collection::vec(0u8..8, 1..10),
        cut_sel in any::<usize>(),
        torn in any::<bool>(),
    ) {
        let ops: Vec<Op> = codes.into_iter().map(decode_op).collect();
        // Materialize the op sequence into concrete requests ONCE, so
        // the system under test and the oracle apply identical bytes
        // (row encryption consumes client RNG state).
        let mut client = DbClient::<MockEngine>::new(1, 2, 21);
        let mut t = Table::new(Schema::new("T", &["k", "a"]));
        for i in 0..5i64 {
            t.push_row(vec![Value::Int(i % 3), Value::Str(format!("s{i}"))]);
        }
        let enc = client
            .encrypt_table(
                &t,
                TableConfig { join_column: "k".into(), filter_columns: vec!["a".into()] },
            )
            .unwrap();
        let mut live: Vec<u64> = (0..5).collect();
        let mut fresh = 0i64;
        let mut steps = vec![Step::req(Request::InsertTable(enc))];
        for op in &ops {
            match op {
                Op::Insert(n) => {
                    let rows: Vec<Vec<Value>> = (0..*n)
                        .map(|_| {
                            fresh += 1;
                            vec![Value::Int(fresh % 3), Value::Str(format!("n{fresh}"))]
                        })
                        .collect();
                    let (start_row, enc_rows) = client.encrypt_rows("T", &rows).unwrap();
                    live.extend(start_row..start_row + enc_rows.len() as u64);
                    steps.push(Step::req(Request::InsertRows {
                        table: "T".into(),
                        start_row,
                        rows: enc_rows,
                    }));
                }
                Op::Copy(n) => {
                    let rows: Vec<Vec<Value>> = (0..*n)
                        .map(|_| {
                            fresh += 1;
                            vec![Value::Int(fresh % 3), Value::Str(format!("c{fresh}"))]
                        })
                        .collect();
                    let (start_row, enc_rows) = client.encrypt_rows("T", &rows).unwrap();
                    live.extend(start_row..start_row + enc_rows.len() as u64);
                    steps.push(Step::req(Request::CopyRows {
                        table: "T".into(),
                        join_column: "k".into(),
                        filter_columns: vec!["a".into()],
                        start_row,
                        rows: enc_rows,
                    }));
                }
                Op::Delete => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.remove(0);
                    steps.push(Step::req(Request::DeleteRows {
                        table: "T".into(),
                        rows: vec![id],
                    }));
                }
                Op::Compact => steps.push(Step::Compact),
            }
        }
        // The crash lands after `cut` steps (always past the initial
        // table upload).
        let cut = 1 + cut_sel % steps.len();

        // System under test: a huge threshold, so every mutation defers
        // the snapshot and the fsynced journal is the durable delta.
        // Dropping the backend without a flush IS the crash.
        let sut_dir = scratch("sut");
        let sut_snap = sut_dir.join("store.snap");
        {
            let backend =
                LocalBackend::<MockEngine>::with_persistence(&sut_snap, None, None, 1 << 20)
                    .unwrap();
            apply(&backend, &steps[..cut]);
        }
        if torn {
            // Crash mid-append: a record header promising more bytes
            // than the file holds. Replay must discard it cleanly.
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(sut_snap.with_extension("journal"))
                .unwrap();
            f.write_all(&[0xEE, 0x03, 0, 0, 1, 2, 3]).unwrap();
        }
        // Restart: replay the journal over whatever snapshot the last
        // compaction (if any) left, fold into a fresh snapshot.
        drop(LocalBackend::<MockEngine>::with_persistence(&sut_snap, None, None, 1 << 20).unwrap());

        // Oracle: threshold 0 — the legacy full snapshot after every
        // mutation, no crash.
        let oracle_dir = scratch("oracle");
        let oracle_snap = oracle_dir.join("store.snap");
        {
            let backend =
                LocalBackend::<MockEngine>::with_persistence(&oracle_snap, None, None, 0).unwrap();
            apply(&backend, &steps[..cut]);
            backend.flush().unwrap();
        }

        let sut_bytes = std::fs::read(&sut_snap).unwrap();
        let oracle_bytes = std::fs::read(&oracle_snap).unwrap();
        prop_assert!(
            sut_bytes == oracle_bytes,
            "replayed O(delta) store must be byte-identical to the full-snapshot oracle \
             (ops {ops:?}, cut {cut}, torn {torn})"
        );
        let _ = std::fs::remove_dir_all(&sut_dir);
        let _ = std::fs::remove_dir_all(&oracle_dir);
    }
}
