//! Torn-snapshot gate: a snapshot file cut off at **every** byte
//! offset — the state a crash mid-write can leave on disk if the
//! tmp+rename protocol is ever bypassed — must load as a clean
//! [`DbError::Snapshot`], never a panic and never a silently partial
//! store. A byte-flip property test covers in-place corruption the
//! same way (the SHA-256 body checksum catches what framing checks
//! let through).

use eqjoin_db::{DbClient, DbError, EncryptedStore, Schema, Table, TableConfig, Value};
use eqjoin_pairing::MockEngine;
use proptest::prelude::*;

/// A small but non-trivial snapshot: two tables, prepared pairing
/// state, a warm decrypt-cache entry.
fn snapshot_bytes() -> Vec<u8> {
    let mut client = DbClient::<MockEngine>::new(1, 2, 7);
    let mut left = Table::new(Schema::new("L", &["k", "a"]));
    let mut right = Table::new(Schema::new("R", &["k", "b"]));
    for i in 0..4i64 {
        left.push_row(vec![Value::Int(i % 2), Value::Str(format!("l{i}"))]);
        right.push_row(vec![Value::Int(i % 2), Value::Str(format!("r{i}"))]);
    }
    let cfg = |col: &str| TableConfig {
        join_column: "k".into(),
        filter_columns: vec![col.to_owned()],
    };
    let mut store = EncryptedStore::<MockEngine>::new();
    store
        .insert_table(client.encrypt_table(&left, cfg("a")).unwrap())
        .unwrap();
    store
        .insert_table(client.encrypt_table(&right, cfg("b")).unwrap())
        .unwrap();
    store.snapshot_bytes()
}

#[test]
fn every_truncation_offset_is_a_clean_snapshot_error() {
    let full = snapshot_bytes();
    assert!(
        EncryptedStore::<MockEngine>::from_snapshot_bytes(&full).is_ok(),
        "the untruncated snapshot must parse"
    );
    for cut in 0..full.len() {
        match EncryptedStore::<MockEngine>::from_snapshot_bytes(&full[..cut]) {
            Err(DbError::Snapshot(_)) => {}
            Err(other) => panic!("truncation at {cut}: expected a Snapshot error, got {other:?}"),
            Ok(_) => panic!("truncation at {cut} bytes must never parse as a valid store"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flipping any byte anywhere in the file — magic, body, or
    // trailing checksum — is caught and typed.
    #[test]
    fn any_single_byte_flip_is_a_clean_snapshot_error(pos in any::<usize>(), flip in 1u8..=255) {
        let mut bytes = snapshot_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match EncryptedStore::<MockEngine>::from_snapshot_bytes(&bytes) {
            Err(DbError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "flip at {pos}: expected Snapshot error, got {other:?}"),
            Ok(_) => prop_assert!(false, "flip at {pos} must not parse"),
        }
    }

    // Appending trailing garbage is rejected too — the format is
    // self-delimiting, so a snapshot concatenated with junk is not a
    // snapshot.
    #[test]
    fn trailing_garbage_is_rejected(extra in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut bytes = snapshot_bytes();
        bytes.extend_from_slice(&extra);
        prop_assert!(matches!(
            EncryptedStore::<MockEngine>::from_snapshot_bytes(&bytes),
            Err(DbError::Snapshot(_))
        ));
    }
}
