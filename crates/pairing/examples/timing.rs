use eqjoin_pairing::engine::Engine;
use eqjoin_pairing::*;
use std::time::Instant;
fn main() {
    let mut rng = eqjoin_crypto::ChaChaRng::seed_from_u64(1);
    let a = Fr::random(&mut rng);
    let b = Fr::random(&mut rng);
    // warm up parameter derivation + tables
    let t0 = Instant::now();
    let p = Bls12::g1_mul_gen(&a);
    println!("param derivation + g1 table + 1 mul: {:?}", t0.elapsed());
    let t0 = Instant::now();
    let q = Bls12::g2_mul_gen(&b);
    println!("g2 table + 1 mul: {:?}", t0.elapsed());
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = Bls12::g1_mul_gen(&a);
    }
    println!("g1_mul_gen: {:?}", t0.elapsed() / 20);
    let t0 = Instant::now();
    for _ in 0..20 {
        let _ = Bls12::g2_mul_gen(&b);
    }
    println!("g2_mul_gen: {:?}", t0.elapsed() / 20);
    let t0 = Instant::now();
    for _ in 0..10 {
        let _ = Bls12::pair(&p, &q);
    }
    println!("single pairing: {:?}", t0.elapsed() / 10);
    let ps: Vec<_> = (0..19)
        .map(|i| Bls12::g1_mul_gen(&Fr::from_u64(i + 1)))
        .collect();
    let qs: Vec<_> = (0..19)
        .map(|i| Bls12::g2_mul_gen(&Fr::from_u64(i + 7)))
        .collect();
    let t0 = Instant::now();
    for _ in 0..10 {
        let _ = Bls12::multi_pair(&ps, &qs);
    }
    println!("multi-pairing (19 pairs): {:?}", t0.elapsed() / 10);
}
