//! Fixed-width Montgomery-form prime-field arithmetic, generic over the
//! limb count, plus the [`impl_montgomery_field!`] macro that stamps out a
//! concrete field type (`Fp` with 6 limbs, `Fr` with 4).
//!
//! All Montgomery parameters are computed from the modulus at first use:
//! `inv = -p⁻¹ mod 2⁶⁴` by Newton iteration, and `R`, `R²`, `R³` by
//! repeated modular doubling (no multi-precision division needed).

use eqjoin_bigint::limb::{adc, mac, sbb};

/// Runtime-derived Montgomery parameters for an `N`-limb prime field.
#[derive(Debug, Clone)]
pub struct FieldParams<const N: usize> {
    /// The prime modulus `p` (little-endian limbs).
    pub modulus: [u64; N],
    /// `-p⁻¹ mod 2⁶⁴`.
    pub inv: u64,
    /// `R = 2^(64N) mod p` — the Montgomery form of 1.
    pub r: [u64; N],
    /// `R² mod p` — converts canonical to Montgomery form.
    pub r2: [u64; N],
    /// `R³ mod p` — used for wide (2N-limb) reductions.
    pub r3: [u64; N],
    /// Number of significant bits of `p`.
    pub bits: usize,
}

impl<const N: usize> FieldParams<N> {
    /// Derive all parameters from the modulus. `p` must be odd and larger
    /// than 1; the caller guarantees primality.
    pub fn derive(modulus: [u64; N]) -> Self {
        assert!(modulus[0] & 1 == 1, "modulus must be odd");
        // Newton iteration for p⁻¹ mod 2⁶⁴ (doubles correct bits each step).
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(modulus[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(modulus[0].wrapping_mul(inv), 1);
        let inv = inv.wrapping_neg();

        // R, R², R³ by doubling 1 modulo p: after 64N doublings we have R,
        // after 128N we have R², after 192N we have R³.
        let mut acc = [0u64; N];
        acc[0] = 1;
        let mut r = [0u64; N];
        let mut r2 = [0u64; N];
        let mut r3 = [0u64; N];
        for i in 1..=(3 * 64 * N) {
            acc = double_mod(&acc, &modulus);
            if i == 64 * N {
                r = acc;
            } else if i == 2 * 64 * N {
                r2 = acc;
            } else if i == 3 * 64 * N {
                r3 = acc;
            }
        }

        let bits = bit_len(&modulus);
        FieldParams {
            modulus,
            inv,
            r,
            r2,
            r3,
            bits,
        }
    }
}

/// Significant bits of an `N`-limb value.
pub fn bit_len<const N: usize>(a: &[u64; N]) -> usize {
    for i in (0..N).rev() {
        if a[i] != 0 {
            return 64 * i + (64 - a[i].leading_zeros() as usize);
        }
    }
    0
}

#[inline]
fn geq<const N: usize>(a: &[u64; N], b: &[u64; N]) -> bool {
    for i in (0..N).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

#[inline]
fn add_limbs<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut carry = 0u64;
    for i in 0..N {
        let (v, c) = adc(a[i], b[i], carry);
        out[i] = v;
        carry = c;
    }
    (out, carry)
}

#[inline]
fn sub_limbs<const N: usize>(a: &[u64; N], b: &[u64; N]) -> ([u64; N], u64) {
    let mut out = [0u64; N];
    let mut borrow = 0u64;
    for i in 0..N {
        let (v, bo) = sbb(a[i], b[i], borrow);
        out[i] = v;
        borrow = bo;
    }
    (out, borrow)
}

/// `2a mod p` for `a < p`.
fn double_mod<const N: usize>(a: &[u64; N], p: &[u64; N]) -> [u64; N] {
    let (sum, carry) = add_limbs(a, a);
    reduce_once(sum, carry, p)
}

/// Reduce `value + carry·2^(64N)` into `[0, p)` assuming it is `< 2p`.
#[inline]
fn reduce_once<const N: usize>(value: [u64; N], carry: u64, p: &[u64; N]) -> [u64; N] {
    if carry != 0 || geq(&value, p) {
        let (out, _) = sub_limbs(&value, p);
        out
    } else {
        value
    }
}

/// Montgomery product `a·b·R⁻¹ mod p` (CIOS).
pub fn mont_mul<const N: usize>(a: &[u64; N], b: &[u64; N], p: &[u64; N], inv: u64) -> [u64; N] {
    let mut t = [0u64; N];
    let mut t_n = 0u64; // t[N], carried across outer iterations
    #[allow(clippy::needless_range_loop)] // textbook CIOS indexing
    for i in 0..N {
        // t += a[i] * b
        let mut carry = 0u64;
        for j in 0..N {
            let (v, c) = mac(t[j], a[i], b[j], carry);
            t[j] = v;
            carry = c;
        }
        let (v, c) = adc(t_n, carry, 0);
        t_n = v;
        let t_n1 = c; // t[N+1], local to this iteration

        // Reduce one limb: t += m * p, then shift right by one limb.
        let m = t[0].wrapping_mul(inv);
        let (_, mut carry) = mac(t[0], m, p[0], 0);
        for j in 1..N {
            let (v, c) = mac(t[j], m, p[j], carry);
            t[j - 1] = v;
            carry = c;
        }
        let (v, c) = adc(t_n, carry, 0);
        t[N - 1] = v;
        let (v2, _) = adc(t_n1, c, 0);
        t_n = v2;
    }
    reduce_once(t, t_n, p)
}

/// Modular addition of values already in `[0, p)`.
pub fn mod_add<const N: usize>(a: &[u64; N], b: &[u64; N], p: &[u64; N]) -> [u64; N] {
    let (sum, carry) = add_limbs(a, b);
    reduce_once(sum, carry, p)
}

/// Modular subtraction of values already in `[0, p)`.
pub fn mod_sub<const N: usize>(a: &[u64; N], b: &[u64; N], p: &[u64; N]) -> [u64; N] {
    let (diff, borrow) = sub_limbs(a, b);
    if borrow != 0 {
        let (fixed, _) = add_limbs(&diff, p);
        fixed
    } else {
        diff
    }
}

/// Modular negation of a value in `[0, p)`.
pub fn mod_neg<const N: usize>(a: &[u64; N], p: &[u64; N]) -> [u64; N] {
    if a.iter().all(|&l| l == 0) {
        *a
    } else {
        let (out, _) = sub_limbs(p, a);
        out
    }
}

/// Plain (non-Montgomery) modular inverse via binary extended Euclid.
/// Returns `None` for zero input. `a` must be `< p`, `p` odd prime.
pub fn inv_mod<const N: usize>(a: &[u64; N], p: &[u64; N]) -> Option<[u64; N]> {
    if a.iter().all(|&l| l == 0) {
        return None;
    }
    let one = {
        let mut o = [0u64; N];
        o[0] = 1;
        o
    };
    let is_one = |x: &[u64; N]| *x == one;
    let is_even = |x: &[u64; N]| x[0] & 1 == 0;
    // Halve x, adding p first if x is odd; tracks values mod p.
    let halve_mod = |x: &[u64; N]| -> [u64; N] {
        let (val, carry) = if is_even(x) { (*x, 0) } else { add_limbs(x, p) };
        let mut out = [0u64; N];
        let mut high = carry;
        for i in (0..N).rev() {
            out[i] = (val[i] >> 1) | (high << 63);
            high = val[i] & 1;
        }
        out
    };
    let shr1 = |x: &[u64; N]| -> [u64; N] {
        let mut out = [0u64; N];
        let mut high = 0u64;
        for i in (0..N).rev() {
            out[i] = (x[i] >> 1) | (high << 63);
            high = x[i] & 1;
        }
        out
    };

    let mut u = *a;
    let mut v = *p;
    let mut x1 = one;
    let mut x2 = [0u64; N];
    while !is_one(&u) && !is_one(&v) {
        while is_even(&u) {
            u = shr1(&u);
            x1 = halve_mod(&x1);
        }
        while is_even(&v) {
            v = shr1(&v);
            x2 = halve_mod(&x2);
        }
        if geq(&u, &v) {
            u = mod_sub(&u, &v, p);
            x1 = mod_sub(&x1, &x2, p);
        } else {
            v = mod_sub(&v, &u, p);
            x2 = mod_sub(&x2, &x1, p);
        }
    }
    Some(if is_one(&u) { x1 } else { x2 })
}

/// Define a Montgomery-form prime-field type.
///
/// `$name` — the type; `$n` — limb count literal; `$params` — a
/// `fn() -> &'static FieldParams<$n>` providing the derived parameters.
#[macro_export]
macro_rules! impl_montgomery_field {
    ($(#[$attr:meta])* $name:ident, $n:expr, $params:path) => {
        $(#[$attr])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) [u64; $n]);

        impl $name {
            /// Number of 64-bit limbs.
            pub const LIMBS: usize = $n;
            /// Serialized length in bytes.
            pub const BYTES: usize = $n * 8;

            #[inline]
            fn params() -> &'static $crate::montgomery::FieldParams<$n> {
                $params()
            }

            /// The additive identity.
            #[inline]
            pub fn zero() -> Self {
                $name([0u64; $n])
            }

            /// The multiplicative identity (Montgomery form of 1).
            #[inline]
            pub fn one() -> Self {
                $name(Self::params().r)
            }

            /// Construct from a small integer.
            pub fn from_u64(v: u64) -> Self {
                let mut limbs = [0u64; $n];
                limbs[0] = v;
                let p = Self::params();
                $name($crate::montgomery::mont_mul(&limbs, &p.r2, &p.modulus, p.inv))
            }

            /// Construct from a signed small integer.
            pub fn from_i64(v: i64) -> Self {
                if v >= 0 {
                    Self::from_u64(v as u64)
                } else {
                    -Self::from_u64(v.unsigned_abs())
                }
            }

            /// Construct from canonical little-endian limbs; `None` if the
            /// value is not fully reduced (`>= p`).
            pub fn from_canonical_limbs(limbs: [u64; $n]) -> Option<Self> {
                let p = Self::params();
                // reject limbs >= modulus
                let mut borrow = 0u64;
                for i in 0..$n {
                    let (_, b) = eqjoin_bigint::limb::sbb(limbs[i], p.modulus[i], borrow);
                    borrow = b;
                }
                if borrow == 0 {
                    return None;
                }
                Some($name($crate::montgomery::mont_mul(
                    &limbs, &p.r2, &p.modulus, p.inv,
                )))
            }

            /// Reduce a double-width little-endian limb value modulo `p`.
            ///
            /// Used for near-uniform sampling and hash-to-field: the input
            /// is `2N` limbs, the statistical bias is `≈ 2^-(64N - bits)`.
            pub fn from_wide_limbs(limbs: [u64; 2 * $n]) -> Self {
                let p = Self::params();
                let mut lo = [0u64; $n];
                let mut hi = [0u64; $n];
                lo.copy_from_slice(&limbs[..$n]);
                hi.copy_from_slice(&limbs[$n..]);
                // value = lo + hi·R; Montgomery form is lo·R + hi·R².
                let lo_m = $crate::montgomery::mont_mul(&lo, &p.r2, &p.modulus, p.inv);
                let hi_m = $crate::montgomery::mont_mul(&hi, &p.r3, &p.modulus, p.inv);
                $name($crate::montgomery::mod_add(&lo_m, &hi_m, &p.modulus))
            }

            /// Canonical (non-Montgomery) little-endian limbs in `[0, p)`.
            pub fn to_canonical_limbs(&self) -> [u64; $n] {
                let p = Self::params();
                let mut one = [0u64; $n];
                one[0] = 1;
                $crate::montgomery::mont_mul(&self.0, &one, &p.modulus, p.inv)
            }

            /// Canonical big-endian byte serialization.
            pub fn to_bytes(&self) -> [u8; $n * 8] {
                let limbs = self.to_canonical_limbs();
                let mut out = [0u8; $n * 8];
                for i in 0..$n {
                    out[8 * i..8 * i + 8]
                        .copy_from_slice(&limbs[$n - 1 - i].to_be_bytes());
                }
                out
            }

            /// Parse canonical big-endian bytes; `None` if `>= p`.
            pub fn from_bytes(bytes: &[u8; $n * 8]) -> Option<Self> {
                let mut limbs = [0u64; $n];
                for i in 0..$n {
                    let mut word = [0u8; 8];
                    word.copy_from_slice(&bytes[8 * i..8 * i + 8]);
                    limbs[$n - 1 - i] = u64::from_be_bytes(word);
                }
                Self::from_canonical_limbs(limbs)
            }

            /// Uniformly random element.
            pub fn random(rng: &mut dyn eqjoin_crypto::RandomSource) -> Self {
                let mut wide = [0u64; 2 * $n];
                for limb in wide.iter_mut() {
                    *limb = rng.next_u64();
                }
                Self::from_wide_limbs(wide)
            }

            /// Uniformly random nonzero element.
            pub fn random_nonzero(rng: &mut dyn eqjoin_crypto::RandomSource) -> Self {
                loop {
                    let v = Self::random(rng);
                    if !v.is_zero() {
                        return v;
                    }
                }
            }

            /// True iff this is the additive identity.
            #[inline]
            pub fn is_zero(&self) -> bool {
                self.0.iter().all(|&l| l == 0)
            }

            /// Field multiplication.
            #[inline]
            pub fn mul_assign_ref(&mut self, other: &Self) {
                let p = Self::params();
                self.0 = $crate::montgomery::mont_mul(&self.0, &other.0, &p.modulus, p.inv);
            }

            /// `self²`.
            #[inline]
            pub fn square(&self) -> Self {
                let p = Self::params();
                $name($crate::montgomery::mont_mul(
                    &self.0, &self.0, &p.modulus, p.inv,
                ))
            }

            /// `2·self`.
            #[inline]
            pub fn double(&self) -> Self {
                let p = Self::params();
                $name($crate::montgomery::mod_add(&self.0, &self.0, &p.modulus))
            }

            /// Multiplicative inverse (`None` for zero).
            pub fn invert(&self) -> Option<Self> {
                let p = Self::params();
                let plain = self.to_canonical_limbs();
                let inv_plain = $crate::montgomery::inv_mod(&plain, &p.modulus)?;
                Some($name($crate::montgomery::mont_mul(
                    &inv_plain, &p.r2, &p.modulus, p.inv,
                )))
            }

            /// Exponentiation by a little-endian limb-slice exponent.
            pub fn pow_limbs(&self, exp: &[u64]) -> Self {
                let mut res = Self::one();
                for &limb in exp.iter().rev() {
                    for i in (0..64).rev() {
                        res = res.square();
                        if (limb >> i) & 1 == 1 {
                            res *= *self;
                        }
                    }
                }
                res
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                let limbs = self.to_canonical_limbs();
                write!(f, "0x")?;
                for l in limbs.iter().rev() {
                    write!(f, "{l:016x}")?;
                }
                Ok(())
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::zero()
            }
        }

        impl std::ops::Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                let p = Self::params();
                $name($crate::montgomery::mod_add(&self.0, &rhs.0, &p.modulus))
            }
        }

        impl std::ops::Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                let p = Self::params();
                $name($crate::montgomery::mod_sub(&self.0, &rhs.0, &p.modulus))
            }
        }

        impl std::ops::Mul for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                let p = Self::params();
                $name($crate::montgomery::mont_mul(
                    &self.0, &rhs.0, &p.modulus, p.inv,
                ))
            }
        }

        impl std::ops::Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                let p = Self::params();
                $name($crate::montgomery::mod_neg(&self.0, &p.modulus))
            }
        }

        impl std::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                *self = *self + rhs;
            }
        }

        impl std::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                *self = *self - rhs;
            }
        }

        impl std::ops::MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: $name) {
                self.mul_assign_ref(&rhs);
            }
        }

        impl std::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::zero(), |acc, x| acc + x)
            }
        }

        impl std::iter::Product for $name {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::one(), |acc, x| acc * x)
            }
        }

        impl $crate::traits::Field for $name {
            fn zero() -> Self {
                $name::zero()
            }
            fn one() -> Self {
                $name::one()
            }
            fn is_zero(&self) -> bool {
                $name::is_zero(self)
            }
            fn square(&self) -> Self {
                $name::square(self)
            }
            fn double(&self) -> Self {
                $name::double(self)
            }
            fn invert(&self) -> Option<Self> {
                $name::invert(self)
            }
            fn random(rng: &mut dyn eqjoin_crypto::RandomSource) -> Self {
                $name::random(rng)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny 1-limb field (p = 2^61 - 1, a Mersenne prime) exercises the
    // generic machinery independently of the BLS12-381 parameters.
    const TINY_P: u64 = (1 << 61) - 1;

    fn tiny_params() -> FieldParams<1> {
        FieldParams::derive([TINY_P])
    }

    #[test]
    fn derive_small_field_params() {
        let p = tiny_params();
        assert_eq!(p.modulus[0].wrapping_mul(p.inv.wrapping_neg()), 1);
        // R = 2^64 mod p
        let r_expect = ((1u128 << 64) % TINY_P as u128) as u64;
        assert_eq!(p.r[0], r_expect);
        let r2_expect = ((r_expect as u128 * r_expect as u128) % TINY_P as u128) as u64;
        assert_eq!(p.r2[0], r2_expect);
        assert_eq!(p.bits, 61);
    }

    #[test]
    fn mont_mul_matches_u128_model() {
        let p = tiny_params();
        // mont_mul(aR, bR) = abR; verify against plain modular arithmetic.
        let cases = [(3u64, 5u64), (TINY_P - 1, TINY_P - 1), (0, 7), (1, 1)];
        let to_mont = |x: u64| mont_mul(&[x], &p.r2, &p.modulus, p.inv);
        let from_mont = |x: [u64; 1]| mont_mul(&x, &[1], &p.modulus, p.inv)[0];
        for (a, b) in cases {
            let am = to_mont(a);
            let bm = to_mont(b);
            let cm = mont_mul(&am, &bm, &p.modulus, p.inv);
            let expect = ((a as u128 * b as u128) % TINY_P as u128) as u64;
            assert_eq!(from_mont(cm), expect, "a={a} b={b}");
        }
    }

    #[test]
    fn inv_mod_small() {
        let p = [TINY_P];
        for a in [1u64, 2, 3, 12345, TINY_P - 1] {
            let inv = inv_mod(&[a], &p).unwrap();
            let prod = ((a as u128 * inv[0] as u128) % TINY_P as u128) as u64;
            assert_eq!(prod, 1, "a={a}");
        }
        assert!(inv_mod(&[0u64], &p).is_none());
    }

    #[test]
    fn mod_ops_small() {
        let p = [TINY_P];
        assert_eq!(mod_add(&[TINY_P - 1], &[1], &p), [0]);
        assert_eq!(mod_sub(&[0], &[1], &p), [TINY_P - 1]);
        assert_eq!(mod_neg(&[5], &p), [TINY_P - 5]);
        assert_eq!(mod_neg(&[0], &p), [0]);
    }

    #[test]
    fn bit_len_works() {
        assert_eq!(bit_len(&[0u64, 0]), 0);
        assert_eq!(bit_len(&[1u64, 0]), 1);
        assert_eq!(bit_len(&[0u64, 1]), 65);
        assert_eq!(bit_len(&[u64::MAX, u64::MAX]), 128);
    }
}
