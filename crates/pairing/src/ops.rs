//! Process-wide operation counters for the cryptographic hot paths.
//!
//! The bench trajectory (`BENCH_session.json`, written by the
//! `session_series` binary) reports *operation counts*, not just wall
//! times: how many fixed-base exponentiations, variable-base scalar
//! multiplications, pairings, Miller-loop pairs and `GT`
//! exponentiations a workload performed. Counts are exact and
//! machine-independent, so a cache that claims to skip the pairing
//! phase can be audited by counter deltas rather than timing noise.
//!
//! Counters are relaxed atomics — the increments are nanoseconds next
//! to the multi-microsecond operations they count — and cumulative per
//! process; callers measure deltas via [`snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

static FIXED_BASE_MULS: AtomicU64 = AtomicU64::new(0);
static BATCHED_FIXED_BASE_MULS: AtomicU64 = AtomicU64::new(0);
static VARIABLE_BASE_MULS: AtomicU64 = AtomicU64::new(0);
static MSM_POINTS: AtomicU64 = AtomicU64::new(0);
static PAIRINGS: AtomicU64 = AtomicU64::new(0);
static MILLER_PAIRS: AtomicU64 = AtomicU64::new(0);
static PREPARED_MILLER_PAIRS: AtomicU64 = AtomicU64::new(0);
static G2_PREPARES: AtomicU64 = AtomicU64::new(0);
static GT_POWS: AtomicU64 = AtomicU64::new(0);
static CYCLOTOMIC_SQUARES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the cumulative operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Fixed-base generator exponentiations (comb-table `g1`/`g2`),
    /// each paying its own affine normalization (one field inversion).
    pub fixed_base_muls: u64,
    /// Fixed-base exponentiations that went through the *batched* path
    /// ([`crate::scalar_mul::FixedBaseTable::mul_batch`]): a batch of
    /// `n` adds `n` here but shares a **single** Montgomery-trick
    /// inversion across the whole batch, so `fixed_base_muls` staying
    /// flat while this grows is the counter-level proof that ingest
    /// amortized its normalizations.
    pub batched_fixed_base_muls: u64,
    /// Variable-base scalar multiplications (wNAF).
    pub variable_base_muls: u64,
    /// Points fed through Pippenger multi-scalar multiplications
    /// ([`crate::scalar_mul::msm`]); an `n`-point sum adds `n`.
    pub msm_points: u64,
    /// Pairing evaluations (each = one Miller loop + one final
    /// exponentiation; a multi-pairing counts once).
    pub pairings: u64,
    /// Point pairs fed through Miller loops (a multi-pairing over `n`
    /// pairs adds `n`).
    pub miller_pairs: u64,
    /// The subset of `miller_pairs` that ran through the *prepared*
    /// loop ([`crate::pairing::multi_miller_loop_prepared`]) — line
    /// coefficients read from a table instead of being re-derived.
    pub prepared_miller_pairs: u64,
    /// `G2` points prepared into Miller-loop line tables
    /// ([`crate::pairing::G2Prepared`]); a series pays this once per
    /// stored ciphertext element, not per query.
    pub g2_prepares: u64,
    /// `GT` exponentiations.
    pub gt_pows: u64,
    /// Granger–Scott cyclotomic squarings (the fast squaring `Gt::pow`
    /// and the final exponentiation run on) — a nonzero delta proves
    /// the cyclotomic path is engaged.
    pub cyclotomic_squares: u64,
}

impl OpCounts {
    /// Component-wise `self - earlier` (saturating), for measuring a
    /// workload between two snapshots.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            fixed_base_muls: self.fixed_base_muls.saturating_sub(earlier.fixed_base_muls),
            batched_fixed_base_muls: self
                .batched_fixed_base_muls
                .saturating_sub(earlier.batched_fixed_base_muls),
            variable_base_muls: self
                .variable_base_muls
                .saturating_sub(earlier.variable_base_muls),
            msm_points: self.msm_points.saturating_sub(earlier.msm_points),
            pairings: self.pairings.saturating_sub(earlier.pairings),
            miller_pairs: self.miller_pairs.saturating_sub(earlier.miller_pairs),
            prepared_miller_pairs: self
                .prepared_miller_pairs
                .saturating_sub(earlier.prepared_miller_pairs),
            g2_prepares: self.g2_prepares.saturating_sub(earlier.g2_prepares),
            gt_pows: self.gt_pows.saturating_sub(earlier.gt_pows),
            cyclotomic_squares: self
                .cyclotomic_squares
                .saturating_sub(earlier.cyclotomic_squares),
        }
    }
}

/// Read the cumulative counters.
pub fn snapshot() -> OpCounts {
    OpCounts {
        fixed_base_muls: FIXED_BASE_MULS.load(Ordering::Relaxed),
        batched_fixed_base_muls: BATCHED_FIXED_BASE_MULS.load(Ordering::Relaxed),
        variable_base_muls: VARIABLE_BASE_MULS.load(Ordering::Relaxed),
        msm_points: MSM_POINTS.load(Ordering::Relaxed),
        pairings: PAIRINGS.load(Ordering::Relaxed),
        miller_pairs: MILLER_PAIRS.load(Ordering::Relaxed),
        prepared_miller_pairs: PREPARED_MILLER_PAIRS.load(Ordering::Relaxed),
        g2_prepares: G2_PREPARES.load(Ordering::Relaxed),
        gt_pows: GT_POWS.load(Ordering::Relaxed),
        cyclotomic_squares: CYCLOTOMIC_SQUARES.load(Ordering::Relaxed),
    }
}

#[inline]
pub(crate) fn count_fixed_base_mul() {
    FIXED_BASE_MULS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_batched_fixed_base_muls(n: u64) {
    BATCHED_FIXED_BASE_MULS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_variable_base_mul() {
    VARIABLE_BASE_MULS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_msm_points(n: u64) {
    MSM_POINTS.fetch_add(n, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_pairing(pairs: u64) {
    PAIRINGS.fetch_add(1, Ordering::Relaxed);
    MILLER_PAIRS.fetch_add(pairs, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_prepared_pairing(pairs: u64) {
    PAIRINGS.fetch_add(1, Ordering::Relaxed);
    MILLER_PAIRS.fetch_add(pairs, Ordering::Relaxed);
    PREPARED_MILLER_PAIRS.fetch_add(pairs, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_g2_prepares(points: u64) {
    G2_PREPARES.fetch_add(points, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_gt_pow() {
    GT_POWS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_cyclotomic_square() {
    CYCLOTOMIC_SQUARES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_track_increments() {
        let before = snapshot();
        count_fixed_base_mul();
        count_batched_fixed_base_muls(6);
        count_variable_base_mul();
        count_msm_points(5);
        count_pairing(3);
        count_prepared_pairing(2);
        count_g2_prepares(4);
        count_gt_pow();
        count_cyclotomic_square();
        let delta = snapshot().since(&before);
        // Other tests run concurrently and also bump the globals, so
        // assert lower bounds only.
        assert!(delta.fixed_base_muls >= 1);
        assert!(delta.batched_fixed_base_muls >= 6);
        assert!(delta.variable_base_muls >= 1);
        assert!(delta.msm_points >= 5);
        assert!(delta.pairings >= 2);
        assert!(delta.miller_pairs >= 5);
        assert!(delta.prepared_miller_pairs >= 2);
        assert!(delta.g2_prepares >= 4);
        assert!(delta.gt_pows >= 1);
        assert!(delta.cyclotomic_squares >= 1);
        assert_eq!(OpCounts::default().since(&snapshot()), OpCounts::default());
    }
}
