//! The optimal ate pairing `e : G1 × G2 → GT` and the multi-pairing
//! `∏ᵢ e(Pᵢ, Qᵢ)` with a shared Miller loop.
//!
//! # Implementation notes
//!
//! * `G2` points are *untwisted* into `E(Fp12)` via
//!   `(x', y') ↦ (x'/w², y'/w³)` (with `w⁶ = ξ` this maps
//!   `y'² = x'³ + 4ξ` onto `y² = x³ + 4`), and the Miller loop runs with
//!   plain affine chord-and-tangent formulas over `Fp12`. Vertical-line
//!   denominators are omitted: their values lie in `Fp6`, which the easy
//!   part of the final exponentiation annihilates.
//! * The loop parameter is `|z|`; since the BLS parameter is negative the
//!   Miller value is conjugated at the end (`conj(f) = f⁻¹ · f^{p⁶+1}` and
//!   `f^{p⁶+1} ∈ Fp6` is likewise killed by the final exponentiation).
//! * Slope computations need one field inversion per step; across a
//!   multi-pairing all pairs share a single **batched inversion** per step
//!   (Montgomery's trick), which is what makes the `m(t+1)+3`-element
//!   products in `SJ.Dec` affordable.
//! * The final exponentiation splits into the easy part
//!   `(p⁶-1)(p²+1)` and the Hayashida et al. BLS12 hard part
//!   `(z-1)²(z+p)(z²+p²-1) + 3` (a 3-multiple of `(p⁴-p²+1)/r`, verified
//!   symbolically in `params::tests`).

use crate::fp::Fp;
use crate::fp12::Fp12;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::fr::Fr;
use crate::g1::G1Affine;
use crate::g2::G2Affine;
use crate::params::{BLS_X, BLS_X_IS_NEGATIVE};
use crate::traits::{batch_invert, Field};
use std::sync::OnceLock;

/// An element of the pairing target group `GT ⊂ Fp12^*` (order `r`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Gt(pub(crate) Fp12);

impl Gt {
    /// The identity element `1`.
    pub fn one() -> Self {
        Gt(Fp12::one())
    }

    /// Group operation (written multiplicatively, as in the paper).
    pub fn mul(&self, other: &Gt) -> Gt {
        Gt(self.0 * other.0)
    }

    /// Inverse — conjugation, valid on the cyclotomic subgroup.
    pub fn inverse(&self) -> Gt {
        Gt(self.0.conjugate())
    }

    /// Exponentiation by a scalar-field element.
    ///
    /// Runs width-4 wNAF over the cyclotomic subgroup, where the
    /// inverse needed for negative digits is a free conjugation —
    /// ~51 multiplications instead of the square-and-multiply ~128.
    pub fn pow(&self, s: &Fr) -> Gt {
        crate::ops::count_gt_pow();
        Gt(cyclotomic_pow_wnaf(&self.0, &s.to_canonical_limbs()))
    }

    /// Exponentiation by a small integer.
    pub fn pow_u64(&self, e: u64) -> Gt {
        crate::ops::count_gt_pow();
        Gt(cyclotomic_pow_wnaf(&self.0, &[e]))
    }

    /// Canonical serialization (576 bytes) — the hash-join key for
    /// `SJ.Match`.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes()
    }

    /// Access the underlying field element.
    pub fn as_fp12(&self) -> &Fp12 {
        &self.0
    }
}

/// wNAF exponentiation valid on the cyclotomic subgroup, where the
/// inverse of an element is its conjugate (so negative digits cost
/// nothing extra) and squaring is the Granger–Scott cyclotomic squaring
/// (roughly half a generic `Fp12` squaring). Width 4: odd powers
/// `f, f³, f⁵, f⁷` precomputed.
fn cyclotomic_pow_wnaf(base: &Fp12, exp: &[u64]) -> Fp12 {
    let digits = crate::scalar_mul::wnaf_digits(exp, 4);
    if digits.is_empty() {
        return Fp12::one();
    }
    let base_sq = base.cyclotomic_square();
    let mut table = [*base; 4];
    for i in 1..4 {
        table[i] = table[i - 1] * base_sq;
    }
    let mut acc = Fp12::one();
    for &d in digits.iter().rev() {
        acc = acc.cyclotomic_square();
        if d > 0 {
            acc *= table[d as usize / 2];
        } else if d < 0 {
            acc *= table[d.unsigned_abs() as usize / 2].conjugate();
        }
    }
    acc
}

/// Untwist constants `ξ⁻¹·w⁴` (= `w⁻²`) and `ξ⁻¹·w³` (= `w⁻³`).
fn untwist_consts() -> &'static (Fp12, Fp12) {
    static CONSTS: OnceLock<(Fp12, Fp12)> = OnceLock::new();
    CONSTS.get_or_init(|| {
        let xi_inv = Fp2::xi().invert().expect("ξ nonzero");
        // w⁻² = ξ⁻¹·w⁴ = ξ⁻¹·v²  (coefficient c0.c2)
        let w_inv_2 = Fp12::new(Fp6::new(Fp2::zero(), Fp2::zero(), xi_inv), Fp6::zero());
        // w⁻³ = ξ⁻¹·w³ = ξ⁻¹·v·w (coefficient c1.c1)
        let w_inv_3 = Fp12::new(Fp6::zero(), Fp6::new(Fp2::zero(), xi_inv, Fp2::zero()));
        (w_inv_2, w_inv_3)
    })
}

/// Map a twist point into `E(Fp12): y² = x³ + 4`.
pub(crate) fn untwist(q: &G2Affine) -> (Fp12, Fp12) {
    let (w2, w3) = untwist_consts();
    (Fp12::from_fp2(q.x) * *w2, Fp12::from_fp2(q.y) * *w3)
}

/// Multiply `f` by a sparse line value `a + b·(v·w) + c·(v²·w)`
/// (`w`-degrees 0, 3 and 5 — the shape every Miller-loop line takes after
/// scaling by `ξ`). Costs 15 `Fp2` multiplications instead of a full
/// `Fp12` multiplication's 18.
fn mul_by_line(f: &Fp12, a: Fp2, b: Fp2, c: Fp2) -> Fp12 {
    // l = A + B·w with A = (a, 0, 0), B = (0, b, c) over Fp6.
    let t0 = f.c0.scale(a);
    let t1 = mul_fp6_by_0bc(&f.c1, b, c);
    let cross = (f.c0 + f.c1) * Fp6::new(a, b, c);
    Fp12 {
        c0: t0 + t1.mul_by_v(),
        c1: cross - t0 - t1,
    }
}

/// `(f0 + f1·v + f2·v²)·(b·v + c·v²)` with `v³ = ξ`.
fn mul_fp6_by_0bc(f: &Fp6, b: Fp2, c: Fp2) -> Fp6 {
    Fp6::new(
        (f.c1 * c + f.c2 * b).mul_by_xi(),
        f.c0 * b + (f.c2 * c).mul_by_xi(),
        f.c0 * c + f.c1 * b,
    )
}

/// Per-pair Miller-loop state in twist coordinates: `T = (xt, yt)` walks
/// multiples of `Q` on `E'(Fp2)`; `yp_xi` caches `ξ·y_P`.
struct TwistState {
    xp: Fp,
    yp_xi: Fp2,
    xq: Fp2,
    yq: Fp2,
    xt: Fp2,
    yt: Fp2,
}

/// Shared Miller loop over all pairs (identity pairs contribute 1 and are
/// skipped). Returns the un-exponentiated Miller value.
///
/// The loop runs entirely in `Fp2` twist coordinates: the untwist
/// `(x', y') ↦ (x'/w², y'/w³)` turns the affine tangent/chord line at
/// `P = (x_P, y_P)` into (after scaling by the exponentiation-killed
/// factor `ξ ∈ Fp2 ⊂ Fp6`)
///
/// ```text
///   ξ·y_P  +  (λ'·x'_• - y'_•)·w³  -  (λ'·x_P)·w⁵
/// ```
///
/// where `λ' ∈ Fp2` is the twist-affine slope and `•` is `T` (doubling) or
/// `Q` (addition). Slope denominators are batch-inverted across all pairs.
pub fn multi_miller_loop(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    let mut states: Vec<TwistState> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity)
        .map(|(p, q)| TwistState {
            xp: p.x,
            yp_xi: Fp2::xi().scale(p.y),
            xq: q.x,
            yq: q.y,
            xt: q.x,
            yt: q.y,
        })
        .collect();
    crate::ops::count_pairing(states.len() as u64);
    if states.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let bits = 64 - BLS_X.leading_zeros() as usize;
    let mut denoms: Vec<Fp2> = Vec::with_capacity(states.len());

    for i in (0..bits - 1).rev() {
        f = f.square();

        // Doubling: λ' = 3x_T²/(2y_T) on the twist, batched inversion.
        denoms.clear();
        denoms.extend(states.iter().map(|s| s.yt.double()));
        batch_invert(&mut denoms);
        for (s, inv) in states.iter_mut().zip(&denoms) {
            let xt_sq = s.xt.square();
            let lambda = (xt_sq.double() + xt_sq) * *inv;
            let b = lambda * s.xt - s.yt;
            let c = -lambda.scale(s.xp);
            f = mul_by_line(&f, s.yp_xi, b, c);
            let x3 = lambda.square() - s.xt.double();
            let y3 = lambda * (s.xt - x3) - s.yt;
            s.xt = x3;
            s.yt = y3;
        }

        if (BLS_X >> i) & 1 == 1 {
            // Addition: λ' = (y_T - y_Q)/(x_T - x_Q); T = mQ with
            // 2 ≤ m < r-1 never collides with ±Q on an order-r point, so
            // the denominators are nonzero.
            denoms.clear();
            denoms.extend(states.iter().map(|s| s.xt - s.xq));
            batch_invert(&mut denoms);
            for (s, inv) in states.iter_mut().zip(&denoms) {
                let lambda = (s.yt - s.yq) * *inv;
                let b = lambda * s.xq - s.yq;
                let c = -lambda.scale(s.xp);
                f = mul_by_line(&f, s.yp_xi, b, c);
                let x3 = lambda.square() - s.xt - s.xq;
                let y3 = lambda * (s.xt - x3) - s.yt;
                s.xt = x3;
                s.yt = y3;
            }
        }
    }

    if BLS_X_IS_NEGATIVE {
        f = f.conjugate();
    }
    f
}

/// Precomputed Miller-loop line state for one `G2` point: the slope
/// `λ'` and intercept term `λ'·x_• − y_•` of every doubling/addition
/// line, in loop order. These are exactly the `P`-independent parts of
/// the twist-coordinate line
///
/// ```text
///   ξ·y_P  +  (λ'·x'_• − y'_•)·w³  −  (λ'·x_P)·w⁵
/// ```
///
/// so a pairing against a prepared point costs **no slope inversions
/// and no point arithmetic** — only table reads and sparse `Fp12` line
/// multiplications. A stored ciphertext is prepared once (at upload)
/// and then reused by every query of the series, which is the paper's
/// reuse pattern exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct G2Prepared {
    /// `(λ', λ'·x_• − y_•)` per Miller step (63 doublings interleaved
    /// with 5 additions for the BLS12-381 loop parameter).
    coeffs: Vec<(Fp2, Fp2)>,
    /// The point was the identity; it contributes `1` to the product.
    infinity: bool,
}

/// Number of line coefficients a non-identity [`G2Prepared`] carries:
/// one per doubling step plus one per addition step of the Miller loop.
fn prepared_coeff_count() -> usize {
    let bits = 64 - BLS_X.leading_zeros() as usize;
    (bits - 1) + (BLS_X.count_ones() as usize - 1)
}

impl G2Prepared {
    /// Prepare one point ([`G2Prepared::prepare_batch`] with arity 1).
    pub fn from_affine(q: &G2Affine) -> Self {
        Self::prepare_batch(&[*q]).pop().expect("one in, one out")
    }

    /// Prepare a batch of points, sharing one slope inversion per
    /// Miller step across the whole batch (Montgomery's trick) — the
    /// shape of a table upload, where every ciphertext element of every
    /// row is prepared at once.
    pub fn prepare_batch(qs: &[G2Affine]) -> Vec<G2Prepared> {
        struct Walk {
            xq: Fp2,
            yq: Fp2,
            xt: Fp2,
            yt: Fp2,
            slot: usize,
        }
        let mut walks: Vec<Walk> = qs
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.infinity)
            .map(|(slot, q)| Walk {
                xq: q.x,
                yq: q.y,
                xt: q.x,
                yt: q.y,
                slot,
            })
            .collect();
        crate::ops::count_g2_prepares(walks.len() as u64);
        let mut out: Vec<G2Prepared> = qs
            .iter()
            .map(|q| G2Prepared {
                coeffs: Vec::with_capacity(if q.infinity {
                    0
                } else {
                    prepared_coeff_count()
                }),
                infinity: q.infinity,
            })
            .collect();
        if walks.is_empty() {
            return out;
        }

        let bits = 64 - BLS_X.leading_zeros() as usize;
        let mut denoms: Vec<Fp2> = Vec::with_capacity(walks.len());
        for i in (0..bits - 1).rev() {
            // Doubling: λ' = 3x_T²/(2y_T), batched inversion.
            denoms.clear();
            denoms.extend(walks.iter().map(|w| w.yt.double()));
            batch_invert(&mut denoms);
            for (w, inv) in walks.iter_mut().zip(&denoms) {
                let xt_sq = w.xt.square();
                let lambda = (xt_sq.double() + xt_sq) * *inv;
                out[w.slot].coeffs.push((lambda, lambda * w.xt - w.yt));
                let x3 = lambda.square() - w.xt.double();
                let y3 = lambda * (w.xt - x3) - w.yt;
                w.xt = x3;
                w.yt = y3;
            }
            if (BLS_X >> i) & 1 == 1 {
                // Addition: λ' = (y_T - y_Q)/(x_T - x_Q); nonzero
                // denominators for order-r points (see the loop above).
                denoms.clear();
                denoms.extend(walks.iter().map(|w| w.xt - w.xq));
                batch_invert(&mut denoms);
                for (w, inv) in walks.iter_mut().zip(&denoms) {
                    let lambda = (w.yt - w.yq) * *inv;
                    out[w.slot].coeffs.push((lambda, lambda * w.xq - w.yq));
                    let x3 = lambda.square() - w.xt - w.xq;
                    let y3 = lambda * (w.xt - x3) - w.yt;
                    w.xt = x3;
                    w.yt = y3;
                }
            }
        }
        out
    }

    /// True iff this is the prepared identity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Serialize for snapshot persistence: a 1-byte identity marker
    /// followed by the line coefficients as canonical `Fp` limbs.
    pub fn to_bytes(&self) -> Vec<u8> {
        if self.infinity {
            return vec![1];
        }
        let mut out = Vec::with_capacity(1 + self.coeffs.len() * 4 * Fp::BYTES);
        out.push(0);
        for (lambda, b) in &self.coeffs {
            for fp in [lambda.c0, lambda.c1, b.c0, b.c1] {
                out.extend_from_slice(&fp.to_bytes());
            }
        }
        out
    }

    /// Parse [`G2Prepared::to_bytes`] output. Enforces the exact
    /// coefficient count and canonical (`< p`) limb encodings; it does
    /// *not* re-verify that the lines belong to a curve point — the
    /// snapshot layer guards integrity with a checksum.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        match bytes.split_first()? {
            (1, []) => Some(G2Prepared {
                coeffs: Vec::new(),
                infinity: true,
            }),
            (0, rest) => {
                let n = prepared_coeff_count();
                if rest.len() != n * 4 * Fp::BYTES {
                    return None;
                }
                let mut fps = rest
                    .chunks_exact(Fp::BYTES)
                    .map(|chunk| Fp::from_bytes(chunk.try_into().expect("exact chunk")));
                let mut coeffs = Vec::with_capacity(n);
                for _ in 0..n {
                    let lambda = Fp2::new(fps.next()??, fps.next()??);
                    let b = Fp2::new(fps.next()??, fps.next()??);
                    coeffs.push((lambda, b));
                }
                Some(G2Prepared {
                    coeffs,
                    infinity: false,
                })
            }
            _ => None,
        }
    }
}

/// The shared Miller loop over **prepared** `G2` points: identical
/// output to [`multi_miller_loop`] (asserted bit-for-bit by tests), but
/// every line's slope comes from the [`G2Prepared`] table — no
/// inversions, no squarings, no point updates. This is the hot path of
/// `SJ.Dec` over stored ciphertexts.
pub fn multi_miller_loop_prepared(pairs: &[(G1Affine, &G2Prepared)]) -> Fp12 {
    struct Eval<'a> {
        xp: Fp,
        yp_xi: Fp2,
        coeffs: &'a [(Fp2, Fp2)],
    }
    let states: Vec<Eval<'_>> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity)
        .map(|(p, q)| {
            debug_assert_eq!(q.coeffs.len(), prepared_coeff_count());
            Eval {
                xp: p.x,
                yp_xi: Fp2::xi().scale(p.y),
                coeffs: &q.coeffs,
            }
        })
        .collect();
    crate::ops::count_prepared_pairing(states.len() as u64);
    if states.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let bits = 64 - BLS_X.leading_zeros() as usize;
    let mut step = 0usize;
    for i in (0..bits - 1).rev() {
        f = f.square();
        for s in &states {
            let (lambda, b) = s.coeffs[step];
            f = mul_by_line(&f, s.yp_xi, b, -lambda.scale(s.xp));
        }
        step += 1;
        if (BLS_X >> i) & 1 == 1 {
            for s in &states {
                let (lambda, b) = s.coeffs[step];
                f = mul_by_line(&f, s.yp_xi, b, -lambda.scale(s.xp));
            }
            step += 1;
        }
    }

    if BLS_X_IS_NEGATIVE {
        f = f.conjugate();
    }
    f
}

struct PairState {
    xp: Fp12,
    yp: Fp12,
    xq: Fp12,
    yq: Fp12,
    xt: Fp12,
    yt: Fp12,
}

/// Reference Miller loop with generic `Fp12` arithmetic over the untwisted
/// points — kept as a correctness oracle for [`multi_miller_loop`] (the
/// two must agree bit-for-bit) and as the "no twist-coordinate / sparse
/// line optimization" arm of the ablation benchmarks.
pub fn multi_miller_loop_generic(pairs: &[(G1Affine, G2Affine)]) -> Fp12 {
    let mut states: Vec<PairState> = pairs
        .iter()
        .filter(|(p, q)| !p.infinity && !q.infinity)
        .map(|(p, q)| {
            let (xq, yq) = untwist(q);
            PairState {
                xp: Fp12::from_fp(p.x),
                yp: Fp12::from_fp(p.y),
                xq,
                yq,
                xt: xq,
                yt: yq,
            }
        })
        .collect();
    if states.is_empty() {
        return Fp12::one();
    }

    let mut f = Fp12::one();
    let bits = 64 - BLS_X.leading_zeros() as usize;
    let mut denoms = Vec::with_capacity(states.len());

    for i in (0..bits - 1).rev() {
        f = f.square();

        // Doubling step: λ = 3x_T² / (2y_T), batched across pairs.
        denoms.clear();
        denoms.extend(states.iter().map(|s| s.yt.double()));
        batch_invert(&mut denoms);
        for (s, inv) in states.iter_mut().zip(&denoms) {
            let xt_sq = s.xt.square();
            let lambda = (xt_sq.double() + xt_sq) * *inv;
            let line = s.yp - s.yt - lambda * (s.xp - s.xt);
            f *= line;
            let x3 = lambda.square() - s.xt.double();
            let y3 = lambda * (s.xt - x3) - s.yt;
            s.xt = x3;
            s.yt = y3;
        }

        if (BLS_X >> i) & 1 == 1 {
            // Addition step: λ = (y_T - y_Q)/(x_T - x_Q), batched. T = mQ
            // with 2 ≤ m < r-1 never collides with ±Q on an order-r point,
            // so the denominators are nonzero.
            denoms.clear();
            denoms.extend(states.iter().map(|s| s.xt - s.xq));
            batch_invert(&mut denoms);
            for (s, inv) in states.iter_mut().zip(&denoms) {
                let lambda = (s.yt - s.yq) * *inv;
                let line = s.yp - s.yq - lambda * (s.xp - s.xq);
                f *= line;
                let x3 = lambda.square() - s.xt - s.xq;
                let y3 = lambda * (s.xt - x3) - s.yt;
                s.xt = x3;
                s.yt = y3;
            }
        }
    }

    if BLS_X_IS_NEGATIVE {
        f = f.conjugate();
    }
    f
}

/// Exponentiation by `|z|` followed by the sign fix-up, valid for elements
/// of the cyclotomic subgroup (where inversion is conjugation and
/// squaring is the Granger–Scott cyclotomic squaring — `|z|` has only 6
/// set bits, so this is essentially 63 cyclotomic squarings).
fn exp_by_z(m: &Fp12) -> Fp12 {
    let bits = 64 - BLS_X.leading_zeros();
    let mut pow = *m;
    for i in (0..bits - 1).rev() {
        pow = pow.cyclotomic_square();
        if (BLS_X >> i) & 1 == 1 {
            pow *= *m;
        }
    }
    if BLS_X_IS_NEGATIVE {
        pow.conjugate()
    } else {
        pow
    }
}

/// The hard part of the final exponentiation (Hayashida et al.):
/// `m^((z-1)²(z+p)(z²+p²-1) + 3)` for `m` in the cyclotomic subgroup.
fn final_exponentiation_hard(m: &Fp12) -> Fp12 {
    // All arithmetic stays in the cyclotomic subgroup, where the
    // inverse is the conjugate.
    let cyc_inv = |x: &Fp12| x.conjugate();

    // a = m^(z-1), twice → m^((z-1)²).
    let a = exp_by_z(m) * cyc_inv(m);
    let a = exp_by_z(&a) * cyc_inv(&a);
    // b = a^(z+p).
    let b = exp_by_z(&a) * a.frobenius();
    // c = b^(z²+p²-1).
    let c = exp_by_z(&exp_by_z(&b)) * b.frobenius2() * cyc_inv(&b);
    // result = c · m³.
    c * m.cyclotomic_square() * *m
}

/// The final exponentiation `f^((p¹²-1)/r)` (up to a harmless cube).
pub fn final_exponentiation(f: &Fp12) -> Gt {
    // Easy part: f^((p⁶-1)(p²+1)).
    let t = f.conjugate() * f.invert().expect("Miller value nonzero");
    let m = t.frobenius2() * t;
    Gt(final_exponentiation_hard(&m))
}

/// Final exponentiation of a whole decrypt phase at once: the easy
/// part's per-element inversion is batched with Montgomery's trick
/// (one field inversion for `n` Miller values — the same trick the
/// Miller loop already plays on slope denominators), then the hard part
/// runs per element. Output order matches input order;
/// `final_exponentiation_batch(&[f])[0] == final_exponentiation(&f)`.
pub fn final_exponentiation_batch(fs: &[Fp12]) -> Vec<Gt> {
    let mut inverses = fs.to_vec();
    batch_invert(&mut inverses);
    fs.iter()
        .zip(&inverses)
        .map(|(f, f_inv)| {
            let t = f.conjugate() * *f_inv;
            let m = t.frobenius2() * t;
            Gt(final_exponentiation_hard(&m))
        })
        .collect()
}

/// The optimal ate pairing of a single point pair.
pub fn pairing(p: &G1Affine, q: &G2Affine) -> Gt {
    final_exponentiation(&multi_miller_loop(&[(*p, *q)]))
}

/// The product of pairings `∏ᵢ e(Pᵢ, Qᵢ)` with one shared Miller loop and
/// one final exponentiation.
pub fn multi_pairing(pairs: &[(G1Affine, G2Affine)]) -> Gt {
    final_exponentiation(&multi_miller_loop(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{g1, g2, params};
    use eqjoin_crypto::ChaChaRng;

    fn g1_gen() -> G1Affine {
        g1::generator().to_affine()
    }

    fn g2_gen() -> G2Affine {
        g2::generator().to_affine()
    }

    #[test]
    fn untwist_lands_on_e_fp12() {
        let (x, y) = untwist(&g2_gen());
        // y² = x³ + 4 over Fp12.
        assert_eq!(y.square(), x.square() * x + Fp12::from_fp(Fp::from_u64(4)));
    }

    #[test]
    fn untwist_is_homomorphic() {
        // untwist(2Q) must equal the curve double of untwist(Q) on E(Fp12);
        // checked through the affine doubling formula.
        let q = g2_gen();
        let q2 = g2::generator().double().to_affine();
        let (x1, y1) = untwist(&q);
        let (x2, y2) = untwist(&q2);
        let lambda = (x1.square().double() + x1.square()) * (y1.double()).invert().unwrap();
        let x_dbl = lambda.square() - x1.double();
        let y_dbl = lambda * (x1 - x_dbl) - y1;
        assert_eq!((x_dbl, y_dbl), (x2, y2));
    }

    #[test]
    fn fast_loop_matches_generic_oracle() {
        // The twist-coordinate loop scales every line by ξ, so the raw
        // Miller values differ by ξ^(#lines) ∈ Fp2 — a factor the final
        // exponentiation kills. The *pairings* must agree exactly.
        let mut rng = ChaChaRng::seed_from_u64(50);
        let pairs: Vec<(G1Affine, G2Affine)> = (0..3)
            .map(|_| {
                let a = Fr::random(&mut rng);
                let b = Fr::random(&mut rng);
                (
                    g1::mul_fr(g1::generator(), &a).to_affine(),
                    g2::mul_fr(g2::generator(), &b).to_affine(),
                )
            })
            .collect();
        assert_eq!(
            final_exponentiation(&multi_miller_loop(&pairs)),
            final_exponentiation(&multi_miller_loop_generic(&pairs))
        );
        assert_eq!(
            final_exponentiation(&multi_miller_loop(&pairs[..1])),
            final_exponentiation(&multi_miller_loop_generic(&pairs[..1]))
        );
    }

    #[test]
    fn prepared_loop_matches_unprepared_bit_for_bit() {
        let mut rng = ChaChaRng::seed_from_u64(58);
        let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                let a = Fr::random(&mut rng);
                let b = Fr::random(&mut rng);
                (
                    g1::mul_fr(g1::generator(), &a).to_affine(),
                    g2::mul_fr(g2::generator(), &b).to_affine(),
                )
            })
            .collect();
        let prepared: Vec<G2Prepared> =
            G2Prepared::prepare_batch(&pairs.iter().map(|(_, q)| *q).collect::<Vec<_>>());
        let with_prep: Vec<(G1Affine, &G2Prepared)> = pairs
            .iter()
            .zip(&prepared)
            .map(|((p, _), q)| (*p, q))
            .collect();
        // The raw Miller values must agree exactly — the prepared loop
        // replays the very same lines.
        assert_eq!(
            multi_miller_loop_prepared(&with_prep),
            multi_miller_loop(&pairs)
        );
        assert_eq!(
            multi_miller_loop_prepared(&with_prep[..1]),
            multi_miller_loop(&pairs[..1])
        );
        // Batch preparation equals one-at-a-time preparation.
        for ((_, q), prep) in pairs.iter().zip(&prepared) {
            assert_eq!(G2Prepared::from_affine(q), *prep);
        }
    }

    #[test]
    fn prepared_identity_and_serialization() {
        let id = G2Prepared::from_affine(&G2Affine::identity());
        assert!(id.is_identity());
        assert_eq!(multi_miller_loop_prepared(&[(g1_gen(), &id)]), Fp12::one());
        assert_eq!(G2Prepared::from_bytes(&id.to_bytes()).unwrap(), id);

        let q = G2Prepared::from_affine(&g2_gen());
        let bytes = q.to_bytes();
        assert_eq!(G2Prepared::from_bytes(&bytes).unwrap(), q);
        // Truncation and trailing garbage are rejected.
        assert!(G2Prepared::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(G2Prepared::from_bytes(&longer).is_none());
        // Non-canonical limbs (≥ p) are rejected.
        let mut bad = bytes;
        for b in bad[1..49].iter_mut() {
            *b = 0xff;
        }
        assert!(G2Prepared::from_bytes(&bad).is_none());
    }

    #[test]
    fn batched_final_exponentiation_matches_scalar() {
        let mut rng = ChaChaRng::seed_from_u64(59);
        let fs: Vec<Fp12> = (0..5)
            .map(|_| {
                let a = Fr::random(&mut rng);
                let b = Fr::random(&mut rng);
                multi_miller_loop(&[(
                    g1::mul_fr(g1::generator(), &a).to_affine(),
                    g2::mul_fr(g2::generator(), &b).to_affine(),
                )])
            })
            .collect();
        let batch = final_exponentiation_batch(&fs);
        assert_eq!(batch.len(), fs.len());
        for (f, gt) in fs.iter().zip(&batch) {
            assert_eq!(final_exponentiation(f), *gt);
        }
        assert!(final_exponentiation_batch(&[]).is_empty());
    }

    #[test]
    fn non_degeneracy() {
        let e = pairing(&g1_gen(), &g2_gen());
        assert_ne!(e, Gt::one(), "e(G1, G2) must not be 1");
    }

    #[test]
    fn gt_has_order_r() {
        let e = pairing(&g1_gen(), &g2_gen());
        let r = params::consts().r_big.limbs().to_vec();
        assert_eq!(Gt(e.0.pow_slice(&r)), Gt::one());
    }

    #[test]
    fn identity_pairs() {
        assert_eq!(pairing(&G1Affine::identity(), &g2_gen()), Gt::one());
        assert_eq!(pairing(&g1_gen(), &G2Affine::identity()), Gt::one());
        assert_eq!(multi_pairing(&[]), Gt::one());
    }

    #[test]
    fn bilinearity_in_g1() {
        let mut rng = ChaChaRng::seed_from_u64(51);
        let a = Fr::random(&mut rng);
        let pa = g1::mul_fr(g1::generator(), &a).to_affine();
        let lhs = pairing(&pa, &g2_gen());
        let rhs = pairing(&g1_gen(), &g2_gen()).pow(&a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn bilinearity_in_g2() {
        let mut rng = ChaChaRng::seed_from_u64(52);
        let b = Fr::random(&mut rng);
        let qb = g2::mul_fr(g2::generator(), &b).to_affine();
        let lhs = pairing(&g1_gen(), &qb);
        let rhs = pairing(&g1_gen(), &g2_gen()).pow(&b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn full_bilinearity() {
        let mut rng = ChaChaRng::seed_from_u64(53);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let pa = g1::mul_fr(g1::generator(), &a).to_affine();
        let qb = g2::mul_fr(g2::generator(), &b).to_affine();
        assert_eq!(
            pairing(&pa, &qb),
            pairing(&g1_gen(), &g2_gen()).pow(&(a * b))
        );
    }

    #[test]
    fn additivity_left() {
        let mut rng = ChaChaRng::seed_from_u64(54);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let pa = g1::mul_fr(g1::generator(), &a);
        let pb = g1::mul_fr(g1::generator(), &b);
        let sum = pa.add(&pb).to_affine();
        let lhs = pairing(&sum, &g2_gen());
        let rhs = pairing(&pa.to_affine(), &g2_gen()).mul(&pairing(&pb.to_affine(), &g2_gen()));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn multi_pairing_is_product() {
        let mut rng = ChaChaRng::seed_from_u64(55);
        let pairs: Vec<(G1Affine, G2Affine)> = (0..4)
            .map(|_| {
                let a = Fr::random(&mut rng);
                let b = Fr::random(&mut rng);
                (
                    g1::mul_fr(g1::generator(), &a).to_affine(),
                    g2::mul_fr(g2::generator(), &b).to_affine(),
                )
            })
            .collect();
        let product = pairs
            .iter()
            .fold(Gt::one(), |acc, (p, q)| acc.mul(&pairing(p, q)));
        assert_eq!(multi_pairing(&pairs), product);
    }

    #[test]
    fn multi_pairing_inner_product_structure() {
        // ∏ e(g1^aᵢ, g2^bᵢ) = e(g1, g2)^{⟨a, b⟩} — the exact property the
        // FHIPE decryption relies on.
        let mut rng = ChaChaRng::seed_from_u64(56);
        let a: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
        let pairs: Vec<(G1Affine, G2Affine)> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| {
                (
                    g1::mul_fr(g1::generator(), x).to_affine(),
                    g2::mul_fr(g2::generator(), y).to_affine(),
                )
            })
            .collect();
        let ip: Fr = a.iter().zip(&b).map(|(x, y)| *x * *y).sum();
        assert_eq!(
            multi_pairing(&pairs),
            pairing(&g1_gen(), &g2_gen()).pow(&ip)
        );
    }

    #[test]
    fn cyclotomic_pow_matches_square_and_multiply() {
        let e = pairing(&g1_gen(), &g2_gen());
        let mut rng = ChaChaRng::seed_from_u64(57);
        for _ in 0..3 {
            let s = Fr::random(&mut rng);
            let limbs = s.to_canonical_limbs();
            assert_eq!(cyclotomic_pow_wnaf(&e.0, &limbs), e.0.pow_slice(&limbs));
        }
        // Edge exponents: 0, 1, 2, r−1 (the last equals inversion).
        assert_eq!(cyclotomic_pow_wnaf(&e.0, &[0]), Fp12::one());
        assert_eq!(cyclotomic_pow_wnaf(&e.0, &[1]), e.0);
        assert_eq!(cyclotomic_pow_wnaf(&e.0, &[2]), e.0.square());
        assert_eq!(e.pow(&(-Fr::one())), e.inverse());
    }

    #[test]
    fn gt_group_ops() {
        let e = pairing(&g1_gen(), &g2_gen());
        assert_eq!(e.mul(&e.inverse()), Gt::one());
        assert_eq!(e.pow_u64(3), e.mul(&e).mul(&e));
        assert_eq!(e.pow(&Fr::from_u64(1)), e);
        assert_eq!(e.pow(&Fr::zero()), Gt::one());
        assert_eq!(e.to_bytes().len(), 576);
    }
}
