//! The BLS12-381 scalar field `Fr` — the paper's `Z_q` (255-bit prime,
//! 4 limbs, Montgomery form). All protocol plaintext values (hashed join
//! attributes, polynomial coefficients, blinding factors, query keys) live
//! here.

use crate::params;

crate::impl_montgomery_field!(
    /// An element of the BLS12-381 scalar field `Fr` (the paper's `Z_q`).
    Fr,
    4,
    params::fr_params
);

impl Fr {
    /// Hash arbitrary bytes into the field via SHA-256 with a domain tag,
    /// then wide reduction (bias `≈ 2^-257`, negligible).
    ///
    /// This is the paper's "efficient and injective embedding from the
    /// attribute values … to `Z_q` which generates elements … uniformly at
    /// random" (§4.1), instantiated with a cryptographic hash as the paper
    /// prescribes.
    pub fn hash_to_field(domain: &[u8], msg: &[u8]) -> Fr {
        let mut h0 = eqjoin_crypto::Sha256::new();
        h0.update(b"eqjoin-h2f-0\0");
        h0.update(&(domain.len() as u64).to_le_bytes());
        h0.update(domain);
        h0.update(msg);
        let d0 = h0.finalize();
        let mut h1 = eqjoin_crypto::Sha256::new();
        h1.update(b"eqjoin-h2f-1\0");
        h1.update(&d0);
        let d1 = h1.finalize();
        let mut wide = [0u64; 8];
        for i in 0..4 {
            wide[i] = u64::from_le_bytes(d0[8 * i..8 * i + 8].try_into().expect("8 bytes"));
            wide[4 + i] = u64::from_le_bytes(d1[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        Fr::from_wide_limbs(wide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(0x5ca1a8)
    }

    #[test]
    fn identities_and_inverse() {
        let mut r = rng();
        let a = Fr::random_nonzero(&mut r);
        assert_eq!(a * a.invert().unwrap(), Fr::one());
        assert_eq!(a + (-a), Fr::zero());
        assert_eq!(a.square(), a * a);
        assert!(Fr::zero().invert().is_none());
    }

    #[test]
    fn small_values() {
        assert_eq!(Fr::from_u64(6) * Fr::from_u64(7), Fr::from_u64(42));
        assert_eq!(Fr::from_i64(-5) + Fr::from_u64(5), Fr::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        let a = Fr::random(&mut r);
        assert_eq!(Fr::from_bytes(&a.to_bytes()).unwrap(), a);
        assert_eq!(a.to_bytes().len(), 32);
    }

    #[test]
    fn fermat_little_theorem() {
        let c = crate::params::consts();
        let mut exp = c.r_big.limbs().to_vec();
        exp[0] -= 1;
        let mut r = rng();
        let a = Fr::random_nonzero(&mut r);
        assert_eq!(a.pow_limbs(&exp), Fr::one());
    }

    #[test]
    fn hash_to_field_properties() {
        let a = Fr::hash_to_field(b"join", b"value-1");
        let b = Fr::hash_to_field(b"join", b"value-1");
        let c = Fr::hash_to_field(b"join", b"value-2");
        let d = Fr::hash_to_field(b"attr", b"value-1");
        assert_eq!(a, b, "deterministic");
        assert_ne!(a, c, "message separated");
        assert_ne!(a, d, "domain separated");
        assert!(!a.is_zero());
    }

    #[test]
    fn hash_to_field_no_length_extension_confusion() {
        // ("ab", "c") and ("a", "bc") must hash differently.
        assert_ne!(
            Fr::hash_to_field(b"ab", b"c"),
            Fr::hash_to_field(b"a", b"bc")
        );
    }

    #[test]
    fn sum_and_product_iterators() {
        let xs = [Fr::from_u64(1), Fr::from_u64(2), Fr::from_u64(3)];
        assert_eq!(xs.iter().copied().sum::<Fr>(), Fr::from_u64(6));
        assert_eq!(xs.iter().copied().product::<Fr>(), Fr::from_u64(6));
    }
}
