//! The BLS12-381 base field `Fp` (381-bit prime, 6 limbs, Montgomery form).

use crate::params;

crate::impl_montgomery_field!(
    /// An element of the BLS12-381 base field `Fp`.
    Fp,
    6,
    params::fp_params
);

impl Fp {
    /// Legendre symbol: `true` iff the element is a nonzero square.
    pub fn is_square(&self) -> bool {
        if self.is_zero() {
            return true;
        }
        self.pow_limbs(&params::consts().p_minus_1_over_2) == Fp::one()
    }

    /// Square root for `p ≡ 3 mod 4`: `a^((p+1)/4)`; `None` if `a` is not
    /// a square.
    pub fn sqrt(&self) -> Option<Fp> {
        if self.is_zero() {
            return Some(*self);
        }
        let cand = self.pow_limbs(&params::consts().p_plus_1_over_4);
        (cand.square() == *self).then_some(cand)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::{ChaChaRng, RandomSource};
    use proptest::prelude::*;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(0xf9)
    }

    #[test]
    fn identities() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        assert_eq!(a + Fp::zero(), a);
        assert_eq!(a * Fp::one(), a);
        assert_eq!(a - a, Fp::zero());
        assert_eq!(a + (-a), Fp::zero());
        assert_eq!(a * Fp::zero(), Fp::zero());
        assert_eq!(a.double(), a + a);
        assert_eq!(a.square(), a * a);
    }

    #[test]
    fn inversion_roundtrip() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random_nonzero(&mut r);
            assert_eq!(a * a.invert().unwrap(), Fp::one());
        }
        assert!(Fp::zero().invert().is_none());
        assert_eq!(Fp::one().invert().unwrap(), Fp::one());
    }

    #[test]
    fn small_value_arithmetic() {
        assert_eq!(Fp::from_u64(3) + Fp::from_u64(4), Fp::from_u64(7));
        assert_eq!(Fp::from_u64(10) * Fp::from_u64(20), Fp::from_u64(200));
        assert_eq!(Fp::from_u64(5) - Fp::from_u64(8), Fp::from_i64(-3));
        assert_eq!(Fp::from_i64(-1) * Fp::from_i64(-1), Fp::one());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            assert_eq!(Fp::from_bytes(&a.to_bytes()).unwrap(), a);
        }
        // The modulus itself must be rejected.
        let p_limbs = params::fp_params().modulus;
        assert!(Fp::from_canonical_limbs(p_limbs).is_none());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let a = Fp::from_u64(7);
        assert_eq!(a.pow_limbs(&[5]), a * a * a * a * a);
        assert_eq!(a.pow_limbs(&[0]), Fp::one());
        assert_eq!(a.pow_limbs(&[1]), a);
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(p-1) = 1 — exercises the full-width exponentiation path and
        // implicitly validates the derived modulus.
        let c = params::consts();
        let p_minus_1: Vec<u64> = {
            let mut v = c.p_big.limbs().to_vec();
            v[0] -= 1; // p is odd
            v
        };
        let mut r = rng();
        let a = Fp::random_nonzero(&mut r);
        assert_eq!(a.pow_limbs(&p_minus_1), Fp::one());
    }

    #[test]
    fn sqrt_of_squares() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
            assert!(sq.is_square());
        }
    }

    #[test]
    fn non_squares_have_no_root() {
        // -1 is a non-square when p ≡ 3 mod 4; so is -a² for a ≠ 0.
        assert!((-Fp::one()).sqrt().is_none());
        assert!(!(-Fp::one()).is_square());
        let mut r = rng();
        let a = Fp::random_nonzero(&mut r);
        assert!((-(a.square())).sqrt().is_none());
    }

    #[test]
    fn wide_reduction_is_consistent() {
        // from_wide_limbs([lo, 0]) must equal from_canonical reduction.
        let mut wide = [0u64; 12];
        wide[0] = 12345;
        assert_eq!(Fp::from_wide_limbs(wide), Fp::from_u64(12345));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_ring_axioms(sa in any::<u64>(), sb in any::<u64>(), sc in any::<u64>()) {
            let mut r = ChaChaRng::seed_from_u64(sa);
            let a = Fp::random(&mut r);
            let mut r = ChaChaRng::seed_from_u64(sb);
            let b = Fp::random(&mut r);
            let mut r = ChaChaRng::seed_from_u64(sc);
            let c = Fp::random(&mut r);
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_sub_neg(sa in any::<u64>(), sb in any::<u64>()) {
            let mut r = ChaChaRng::seed_from_u64(sa);
            let a = Fp::random(&mut r);
            let mut r = ChaChaRng::seed_from_u64(sb);
            let b = Fp::random(&mut r);
            prop_assert_eq!(a - b, a + (-b));
            prop_assert_eq!(-(-a), a);
        }
    }

    #[test]
    fn random_is_well_distributed_cheaply() {
        // Smoke test: low limb of canonical form should not repeat across
        // a few samples (collision probability ~ 2^-64).
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let v = Fp::random(&mut r).to_canonical_limbs()[0];
            assert!(seen.insert(v));
        }
        let _ = r.next_u64();
    }
}
