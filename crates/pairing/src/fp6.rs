//! Cubic extension `Fp6 = Fp2[v]/(v³ - ξ)` with `ξ = 1 + u`.

use crate::fp2::Fp2;
use crate::traits::Field;
use eqjoin_crypto::RandomSource;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element `c0 + c1·v + c2·v²` of `Fp6`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Fp6 {
    /// Constant coefficient.
    pub c0: Fp2,
    /// Coefficient of `v`.
    pub c1: Fp2,
    /// Coefficient of `v²`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Construct from coefficients.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Fp6 { c0, c1, c2 }
    }

    /// Embed an `Fp2` element.
    pub fn from_fp2(c0: Fp2) -> Self {
        Fp6 {
            c0,
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    /// Multiply by `v`: `(c0, c1, c2) ↦ (ξ·c2, c0, c1)`.
    pub fn mul_by_v(&self) -> Self {
        Fp6 {
            c0: self.c2.mul_by_xi(),
            c1: self.c0,
            c2: self.c1,
        }
    }

    /// Scale every coefficient by an `Fp2` element.
    pub fn scale(&self, k: Fp2) -> Self {
        Fp6 {
            c0: self.c0 * k,
            c1: self.c1 * k,
            c2: self.c2 * k,
        }
    }
}

impl Add for Fp6 {
    type Output = Fp6;
    #[inline]
    fn add(self, rhs: Fp6) -> Fp6 {
        Fp6 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
            c2: self.c2 + rhs.c2,
        }
    }
}

impl Sub for Fp6 {
    type Output = Fp6;
    #[inline]
    fn sub(self, rhs: Fp6) -> Fp6 {
        Fp6 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
            c2: self.c2 - rhs.c2,
        }
    }
}

impl Neg for Fp6 {
    type Output = Fp6;
    #[inline]
    fn neg(self) -> Fp6 {
        Fp6 {
            c0: -self.c0,
            c1: -self.c1,
            c2: -self.c2,
        }
    }
}

impl Mul for Fp6 {
    type Output = Fp6;
    fn mul(self, rhs: Fp6) -> Fp6 {
        // Toom-style interpolation (standard Fp6 schoolbook with shared
        // products): t_i = a_i b_i.
        let t0 = self.c0 * rhs.c0;
        let t1 = self.c1 * rhs.c1;
        let t2 = self.c2 * rhs.c2;

        let s12 = (self.c1 + self.c2) * (rhs.c1 + rhs.c2) - t1 - t2; // a1b2 + a2b1
        let s01 = (self.c0 + self.c1) * (rhs.c0 + rhs.c1) - t0 - t1; // a0b1 + a1b0
        let s02 = (self.c0 + self.c2) * (rhs.c0 + rhs.c2) - t0 - t2; // a0b2 + a2b0

        Fp6 {
            c0: t0 + s12.mul_by_xi(),
            c1: s01 + t2.mul_by_xi(),
            c2: s02 + t1,
        }
    }
}

impl AddAssign for Fp6 {
    fn add_assign(&mut self, rhs: Fp6) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp6 {
    fn sub_assign(&mut self, rhs: Fp6) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp6 {
    fn mul_assign(&mut self, rhs: Fp6) {
        *self = *self * rhs;
    }
}

impl Field for Fp6 {
    fn zero() -> Self {
        Fp6 {
            c0: Fp2::zero(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    fn one() -> Self {
        Fp6 {
            c0: Fp2::one(),
            c1: Fp2::zero(),
            c2: Fp2::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    fn square(&self) -> Self {
        *self * *self
    }

    fn invert(&self) -> Option<Self> {
        // Standard Fp6 inversion: with a = a0 + a1 v + a2 v²,
        //   A = a0² - ξ a1 a2, B = ξ a2² - a0 a1, C = a1² - a0 a2,
        //   F = a0 A + ξ (a2 B + a1 C),  a⁻¹ = (A + B v + C v²)/F.
        let a = self.c0.square() - (self.c1 * self.c2).mul_by_xi();
        let b = self.c2.square().mul_by_xi() - self.c0 * self.c1;
        let c = self.c1.square() - self.c0 * self.c2;
        let f = self.c0 * a + ((self.c2 * b + self.c1 * c).mul_by_xi());
        let f_inv = f.invert()?;
        Some(Fp6 {
            c0: a * f_inv,
            c1: b * f_inv,
            c2: c * f_inv,
        })
    }

    fn random(rng: &mut dyn RandomSource) -> Self {
        Fp6 {
            c0: Fp2::random(rng),
            c1: Fp2::random(rng),
            c2: Fp2::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(6)
    }

    fn v() -> Fp6 {
        Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero())
    }

    #[test]
    fn v_cubed_is_xi() {
        let v3 = v() * v() * v();
        assert_eq!(v3, Fp6::from_fp2(Fp2::xi()));
    }

    #[test]
    fn mul_by_v_matches_mul() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        assert_eq!(a.mul_by_v(), a * v());
    }

    #[test]
    fn field_axioms_random() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fp6::random(&mut r);
            let b = Fp6::random(&mut r);
            let c = Fp6::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..8 {
            let a = Fp6::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fp6::one());
        }
        assert!(Fp6::zero().invert().is_none());
        // Inverses of basis monomials hit all branches of the formula.
        assert_eq!(v() * v().invert().unwrap(), Fp6::one());
        let v2 = v() * v();
        assert_eq!(v2 * v2.invert().unwrap(), Fp6::one());
    }

    #[test]
    fn embedding_is_homomorphic() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let b = Fp2::random(&mut r);
        assert_eq!(Fp6::from_fp2(a) * Fp6::from_fp2(b), Fp6::from_fp2(a * b));
        assert_eq!(Fp6::from_fp2(a) + Fp6::from_fp2(b), Fp6::from_fp2(a + b));
    }

    #[test]
    fn scale_matches_embedded_mul() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        let k = Fp2::random(&mut r);
        assert_eq!(a.scale(k), a * Fp6::from_fp2(k));
    }
}
