//! From-scratch implementation of the BLS12-381 pairing-friendly curve,
//! providing the asymmetric bilinear group `(G1, G2, GT, q, e)` that the
//! paper's Secure Join scheme (and the underlying function-hiding
//! inner-product encryption of Kim et al.) is built on.
//!
//! # Design
//!
//! * **Every constant is derived from the BLS parameter**
//!   `z = -0xd201_0000_0001_0000`: base-field modulus
//!   `p = (z-1)²(z⁴-z²+1)/3 + z`, scalar modulus `r = z⁴-z²+1`, Montgomery
//!   parameters, Frobenius coefficients, cofactors and generators. No
//!   magic hex blobs; tests cross-check the derived values against the
//!   published standard ones.
//! * **Field tower** `Fp → Fp2 → Fp6 → Fp12` with
//!   `Fp2 = Fp[u]/(u²+1)`, `Fp6 = Fp2[v]/(v³-ξ)`, `ξ = 1+u`,
//!   `Fp12 = Fp6[w]/(w²-v)`.
//! * **Pairing**: optimal ate, computed with affine Miller-loop formulas
//!   over the untwisted `G2` image in `Fp12` (the untwist
//!   `(x', y') ↦ (x'/w², y'/w³)` keeps the formulas textbook-verifiable),
//!   with **batched inversions across a multi-pairing** so the product of
//!   pairings in `SJ.Dec` shares one inversion per Miller step and a single
//!   final exponentiation.
//! * **Fast scalar multiplication** ([`scalar_mul`]): width-5 wNAF for
//!   variable bases and affine fixed-base comb tables for the
//!   generators (built once, then ≤ 64 mixed additions per
//!   exponentiation); [`ops`] counts every hot-path operation so the
//!   benchmark trajectory can audit "skipped work" claims exactly.
//! * **[`mock`] engine**: a transparent-exponent stand-in with the same
//!   [`engine::Engine`] API, used by fast protocol tests and by the
//!   full-scale shape experiments (see DESIGN.md §4).
//!
//! This is a research prototype: arithmetic is *not* constant-time (the
//! paper's security model is leakage at the query level, not side
//! channels), and `unsafe` is not used.

#![forbid(unsafe_code)]

pub mod curve;
pub mod engine;
pub mod fp;
pub mod fp12;
pub mod fp2;
pub mod fp6;
pub mod fr;
pub mod g1;
pub mod g2;
pub mod mock;
pub mod montgomery;
pub mod ops;
pub mod pairing;
pub mod params;
pub mod scalar_mul;
pub mod traits;

pub use engine::{Bls12, Engine};
pub use fp::Fp;
pub use fp12::Fp12;
pub use fp2::Fp2;
pub use fp6::Fp6;
pub use fr::Fr;
pub use g1::{G1Affine, G1Projective};
pub use g2::{G2Affine, G2Projective};
pub use mock::MockEngine;
pub use ops::OpCounts;
pub use pairing::{
    final_exponentiation, final_exponentiation_batch, multi_miller_loop,
    multi_miller_loop_prepared, multi_pairing, pairing, G2Prepared, Gt,
};
pub use traits::Field;
