//! The group `G1`: the `r`-torsion of `E(Fp): y² = x³ + 4`.
//!
//! The generator is constructed deterministically (smallest valid `x`,
//! lexicographically smaller `y`, cleared by the cofactor `h1`) rather than
//! hard-coded; its order is verified at derivation time.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fp::Fp;
use crate::fr::Fr;
use crate::params;
use crate::scalar_mul::mul_wnaf;

use std::sync::OnceLock;

/// Curve parameters of `E(Fp)`.
#[derive(Clone, Copy, Debug)]
pub struct G1Params;

impl CurveParams for G1Params {
    type Base = Fp;
    fn b() -> Fp {
        Fp::from_u64(4)
    }
}

/// Affine `G1` point.
pub type G1Affine = Affine<G1Params>;
/// Jacobian `G1` point.
pub type G1Projective = Projective<G1Params>;

/// Number of bytes in the uncompressed affine serialization.
pub const G1_BYTES: usize = 2 * Fp::BYTES;

/// Deterministic generator of the order-`r` subgroup.
pub fn generator() -> &'static G1Projective {
    static GEN: OnceLock<G1Projective> = OnceLock::new();
    GEN.get_or_init(|| {
        let c = params::consts();
        let mut x = Fp::one();
        loop {
            if let Some(point) = point_with_x(x) {
                let cleared = mul_wnaf(&point.to_projective(), &c.g1_cofactor);
                if !cleared.is_identity() {
                    assert!(
                        mul_wnaf(&cleared, &c.r_limbs).is_identity(),
                        "cofactor-cleared point must have order r"
                    );
                    return cleared;
                }
            }
            x += Fp::one();
        }
    })
}

/// The curve point with the given `x`, if one exists (canonical `y`).
fn point_with_x(x: Fp) -> Option<G1Affine> {
    let rhs = x.square() * x + G1Params::b();
    let y = rhs.sqrt()?;
    // Canonicalize the y choice by byte order so the generator derivation
    // is platform-independent.
    let y = canonical_y(y);
    G1Affine::new(x, y)
}

fn canonical_y(y: Fp) -> Fp {
    let neg = -y;
    if y.to_bytes() <= neg.to_bytes() {
        y
    } else {
        neg
    }
}

/// Multiply a point by a scalar-field element (wNAF).
pub fn mul_fr(point: &G1Projective, s: &Fr) -> G1Projective {
    mul_wnaf(point, &s.to_canonical_limbs())
}

/// Check membership in the order-`r` subgroup (`r·P = O`, via wNAF).
pub fn in_subgroup(point: &G1Projective) -> bool {
    mul_wnaf(point, &params::consts().r_limbs).is_identity()
}

/// Hash arbitrary bytes to a subgroup point (try-and-increment over the
/// hashed x-coordinate, then cofactor clearing). Not constant-time; used
/// for tests and baselines, not the core protocol.
pub fn hash_to_g1(domain: &[u8], msg: &[u8]) -> G1Projective {
    let mut counter = 0u32;
    loop {
        let mut material = Vec::with_capacity(msg.len() + 8);
        material.extend_from_slice(&counter.to_le_bytes());
        material.extend_from_slice(msg);
        let fe = crate::fr::Fr::hash_to_field(domain, &material);
        // Map Fr bits into Fp (injective: r < p).
        let limbs4 = fe.to_canonical_limbs();
        let mut limbs6 = [0u64; 6];
        limbs6[..4].copy_from_slice(&limbs4);
        let x = Fp::from_canonical_limbs(limbs6).expect("r < p");
        if let Some(point) = point_with_x(x) {
            // Cofactor clearing through the wNAF path: the naive ladder
            // here used to dominate every try-and-increment attempt.
            let cleared = mul_wnaf(&point.to_projective(), &params::consts().g1_cofactor);
            if !cleared.is_identity() {
                return cleared;
            }
        }
        counter += 1;
    }
}

/// Serialize an affine point (uncompressed; all-zero = identity).
pub fn to_bytes(point: &G1Affine) -> [u8; G1_BYTES] {
    let mut out = [0u8; G1_BYTES];
    if !point.infinity {
        out[..Fp::BYTES].copy_from_slice(&point.x.to_bytes());
        out[Fp::BYTES..].copy_from_slice(&point.y.to_bytes());
    }
    out
}

/// Deserialize an affine point; checks the curve equation and subgroup.
pub fn from_bytes(bytes: &[u8; G1_BYTES]) -> Option<G1Affine> {
    if bytes.iter().all(|&b| b == 0) {
        return Some(G1Affine::identity());
    }
    let mut xb = [0u8; Fp::BYTES];
    let mut yb = [0u8; Fp::BYTES];
    xb.copy_from_slice(&bytes[..Fp::BYTES]);
    yb.copy_from_slice(&bytes[Fp::BYTES..]);
    let point = G1Affine::new(Fp::from_bytes(&xb)?, Fp::from_bytes(&yb)?)?;
    in_subgroup(&point.to_projective()).then_some(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::{ChaChaRng, RandomSource};

    #[test]
    fn generator_has_order_r() {
        let g = generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(in_subgroup(g));
        // Order exactly r (not a proper divisor): r is prime, so any
        // non-identity point of r-torsion has order r.
        assert!(!g.mul_limbs(&[2]).is_identity());
    }

    #[test]
    fn generator_matches_standard_one_in_subgroup_size() {
        // r·G = O and (r-1)·G = -G.
        let c = params::consts();
        let g = generator();
        let mut r_minus_1 = c.r_big.limbs().to_vec();
        r_minus_1[0] -= 1;
        assert_eq!(g.mul_limbs(&r_minus_1), g.neg());
    }

    #[test]
    fn scalar_mul_by_fr_is_group_hom() {
        let g = generator();
        let mut rng = ChaChaRng::seed_from_u64(31);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(
            mul_fr(g, &a).add(&mul_fr(g, &b)),
            mul_fr(g, &(a + b)),
            "additive homomorphism"
        );
        assert_eq!(mul_fr(&mul_fr(g, &a), &b), mul_fr(g, &(a * b)));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = ChaChaRng::seed_from_u64(32);
        let s = Fr::random(&mut rng);
        let p = mul_fr(generator(), &s).to_affine();
        let bytes = to_bytes(&p);
        assert_eq!(from_bytes(&bytes).unwrap(), p);
        // Identity encodes as all-zero.
        let id = G1Affine::identity();
        assert_eq!(to_bytes(&id), [0u8; G1_BYTES]);
        assert!(from_bytes(&[0u8; G1_BYTES]).unwrap().infinity);
    }

    #[test]
    fn from_bytes_rejects_off_curve() {
        let mut bytes = [0u8; G1_BYTES];
        bytes[Fp::BYTES - 1] = 1; // x = 1, y = 0: not on curve
        assert!(from_bytes(&bytes).is_none());
    }

    #[test]
    fn hash_to_g1_lands_in_subgroup() {
        let p = hash_to_g1(b"test", b"hello");
        let q = hash_to_g1(b"test", b"world");
        assert!(in_subgroup(&p) && in_subgroup(&q));
        assert_ne!(p, q);
        assert_eq!(p, hash_to_g1(b"test", b"hello"));
    }

    #[test]
    fn random_points_via_rng() {
        let mut rng = ChaChaRng::seed_from_u64(33);
        let s = Fr::random(&mut rng);
        let p = mul_fr(generator(), &s);
        assert!(p.is_on_curve() && in_subgroup(&p));
        let _ = rng.next_u32();
    }
}
