//! Fast scalar multiplication: wNAF variable-base multiplication,
//! precomputed fixed-base comb tables for the group generators (single
//! and batched), and a Pippenger bucket-method [`msm`].
//!
//! The naive ladder ([`Projective::mul_limbs`]) costs 256 doublings and
//! ~128 general additions for a 256-bit scalar. The paths here replace
//! it everywhere hot:
//!
//! * **[`mul_wnaf`]** — width-5 non-adjacent form: the scalar is recoded
//!   into signed odd digits `{±1, ±3, …, ±15}` so on average only one in
//!   `w + 1 = 6` positions needs an addition (~43 for 256 bits), and the
//!   8-entry odd-multiples table is batch-normalized to affine once so
//!   every addition is a cheap mixed add. Negative digits are free:
//!   point negation only flips `y`.
//! * **[`FixedBaseTable`]** — for the *fixed* generators: all
//!   `j·256^w·G` multiples (32 radix-256 windows × 255 nonzero digits)
//!   are precomputed at first use and batch-normalized to affine, after
//!   which `g^s` is at most 32 mixed additions and **zero doublings**.
//!   `SJ.Enc` and `SJ.TokenGen` are per-component fixed-base
//!   exponentiations, so this is the client's hottest path.
//! * **[`FixedBaseTable::mul_batch`]** — the bulk-ingest shape: a whole
//!   slice of scalars walks the same comb table, accumulates per-scalar
//!   in projective form, and normalizes every result with **one**
//!   shared Montgomery-trick inversion instead of one inversion per
//!   scalar. `SJ.Enc` needs `m(t+1)+3` generator exponentiations per
//!   row; batching turns their `m(t+1)+3` inversions into 1.
//! * **[`msm`]** — Pippenger's bucket method for variable-base sums
//!   `Σ sᵢ·Pᵢ`, sub-linear in per-point cost once the sum is wide.
//!
//! Recoding works on arbitrary-length limb slices — the ~508-bit `G2`
//! cofactor clears through the same code as 255-bit `Fr` scalars.
//!
//! # Constant-time discipline
//!
//! Every path in this module is variable-time in its scalars (wNAF
//! digit patterns, comb byte lookups, Pippenger bucket indices). The
//! waiver scope is unchanged from the seed: these scalars are used for
//! *encryption and token generation against the public group
//! generators* — the attacker already knows the base point, and the
//! timing leak on the scalar is the documented out-of-scope channel
//! (README "Static analysis & audits"). Batching does not widen the
//! scope: `mul_batch` and `msm` touch exactly the data the per-scalar
//! paths already touched, in a different order.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fr::Fr;
use crate::ops;
use crate::traits::{batch_invert, Field};

/// wNAF window width used by [`mul_wnaf`] (digits `±1, ±3, …, ±15`).
pub const WNAF_WINDOW: u32 = 5;

/// Recode a little-endian limb scalar into width-`w` non-adjacent form.
///
/// Returns little-endian signed digits `d_i` with
/// `value = Σ d_i · 2^i`, each digit zero or odd with
/// `|d_i| < 2^(w-1)`; at most one of any `w` consecutive digits is
/// nonzero. `w` must be in `2..=7` so digits fit an `i8`.
// audit-allow(ct-discipline): wNAF recoding is variable-time in the scalar's digit pattern by construction; scalar-mul timing channels are documented out of scope (README "Static analysis & audits")
pub fn wnaf_digits(scalar: &[u64], w: u32) -> Vec<i8> {
    assert!((2..=7).contains(&w), "window width must be in 2..=7");
    let mut k: Vec<u64> = scalar.to_vec();
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let mut digits = Vec::with_capacity(64 * k.len() + 1);
    while !k.iter().all(|&limb| limb == 0) {
        let digit = if k[0] & 1 == 1 {
            let mut d = (k[0] & mask) as i64;
            if d >= half {
                d -= 1i64 << w;
            }
            if d > 0 {
                sub_small(&mut k, d as u64);
            } else {
                add_small(&mut k, d.unsigned_abs());
            }
            d as i8
        } else {
            0
        };
        digits.push(digit);
        shr1(&mut k);
    }
    digits
}

/// `k -= d` for small `d` (`k` known to be odd and `>= d`).
fn sub_small(k: &mut [u64], d: u64) {
    let (v, borrow) = k[0].overflowing_sub(d);
    k[0] = v;
    let mut borrow = borrow;
    for limb in k.iter_mut().skip(1) {
        if !borrow {
            break;
        }
        let (v, b) = limb.overflowing_sub(1);
        *limb = v;
        borrow = b;
    }
    debug_assert!(!borrow, "wNAF recoding subtracted past zero");
}

/// `k += d` for small `d` (may grow by one limb).
fn add_small(k: &mut Vec<u64>, d: u64) {
    let (v, carry) = k[0].overflowing_add(d);
    k[0] = v;
    let mut carry = carry;
    let mut i = 1;
    while carry {
        if i == k.len() {
            k.push(1);
            return;
        }
        let (v, c) = k[i].overflowing_add(1);
        k[i] = v;
        carry = c;
        i += 1;
    }
}

/// `k >>= 1`.
fn shr1(k: &mut [u64]) {
    let mut high = 0u64;
    for limb in k.iter_mut().rev() {
        let next_high = *limb & 1;
        *limb = (*limb >> 1) | (high << 63);
        high = next_high;
    }
}

/// Normalize a batch of Jacobian points to affine with a **single**
/// field inversion (Montgomery's trick); identities map to the affine
/// identity.
pub fn batch_normalize<C: CurveParams>(points: &[Projective<C>]) -> Vec<Affine<C>> {
    let mut zs: Vec<C::Base> = points
        .iter()
        .map(|p| if p.is_identity() { C::Base::one() } else { p.z })
        .collect();
    batch_invert(&mut zs);
    points
        .iter()
        .zip(&zs)
        .map(|(p, z_inv)| {
            if p.is_identity() {
                Affine::identity()
            } else {
                let z_inv2 = z_inv.square();
                Affine {
                    x: p.x * z_inv2,
                    y: p.y * z_inv2 * *z_inv,
                    infinity: false,
                }
            }
        })
        .collect()
}

/// Variable-base scalar multiplication via width-5 wNAF with an
/// affine odd-multiples table: ~256 doublings + ~43 mixed additions
/// for a 256-bit scalar, vs the ladder's 256 + ~128 general additions.
///
/// Accepts any little-endian limb slice (cofactors included).
// audit-allow(ct-discipline): digit-indexed table walk of the standard variable-time wNAF loop; same documented scope as wnaf_digits
pub fn mul_wnaf<C: CurveParams>(point: &Projective<C>, scalar: &[u64]) -> Projective<C> {
    ops::count_variable_base_mul();
    if point.is_identity() {
        return Projective::identity();
    }
    let digits = wnaf_digits(scalar, WNAF_WINDOW);
    if digits.is_empty() {
        return Projective::identity();
    }
    // Odd multiples P, 3P, …, 15P, normalized with one inversion so the
    // main loop runs on mixed additions only.
    let table_len = 1usize << (WNAF_WINDOW - 2);
    let two_p = point.double();
    let mut table = Vec::with_capacity(table_len);
    table.push(*point);
    for i in 1..table_len {
        table.push(table[i - 1].add(&two_p));
    }
    let table = batch_normalize(&table);

    let mut acc = Projective::<C>::identity();
    for &d in digits.iter().rev() {
        acc = acc.double();
        if d != 0 {
            let entry = &table[d.unsigned_abs() as usize / 2];
            if d > 0 {
                acc = acc.add_affine(entry);
            } else {
                acc = acc.add_affine(&entry.neg());
            }
        }
    }
    acc
}

/// Precomputed fixed-base comb table: `entry(w, j) = j·256^w·G` for 32
/// radix-256 windows of a 256-bit scalar and `j` in `1..=255`, every
/// entry stored in affine form (one batched inversion at build time).
///
/// A multiplication reads one nonzero byte per window — at most **32
/// mixed additions and no doublings** per exponentiation. The table is
/// `32 × 255` points (≈ 0.8 MiB for `G1`, ≈ 1.5 MiB for `G2`) built
/// once per generator behind a `OnceLock` in [`crate::engine`]; the
/// ~8k-addition build amortizes across the first handful of `SJ.Enc` /
/// `SJ.TokenGen` vector exponentiations.
pub struct FixedBaseTable<C: CurveParams> {
    /// Flat `windows × 255` entry storage.
    entries: Vec<Affine<C>>,
}

impl<C: CurveParams> FixedBaseTable<C> {
    /// Number of radix-256 windows covering a 256-bit scalar.
    const WINDOWS: usize = 32;
    /// Nonzero digits per window (`1..=255`).
    const DIGITS: usize = 255;

    /// Precompute the table for `base` (intended for the group
    /// generators; cost `32 × 255` additions plus one inversion).
    pub fn build(base: &Projective<C>) -> Self {
        let mut flat = Vec::with_capacity(Self::WINDOWS * Self::DIGITS);
        let mut window_base = *base;
        for _ in 0..Self::WINDOWS {
            let mut multiple = window_base;
            for _ in 1..=Self::DIGITS {
                flat.push(multiple);
                multiple = multiple.add(&window_base);
            }
            window_base = multiple; // 256 · window_base
        }
        FixedBaseTable {
            entries: batch_normalize(&flat),
        }
    }

    /// `s · G` by table lookups: one mixed addition per nonzero byte of
    /// the canonical scalar.
    pub fn mul(&self, s: &Fr) -> Projective<C> {
        ops::count_fixed_base_mul();
        self.comb_acc(s)
    }

    /// The comb walk itself, shared by [`FixedBaseTable::mul`] and
    /// [`FixedBaseTable::mul_batch`] (counting is the callers' job).
    // audit-allow(ct-discipline): byte-indexed comb lookup is variable-time in the scalar bytes; same documented scope as wnaf_digits
    fn comb_acc(&self, s: &Fr) -> Projective<C> {
        let limbs = s.to_canonical_limbs();
        let mut acc = Projective::<C>::identity();
        for w in 0..Self::WINDOWS {
            let byte = ((limbs[w / 8] >> (8 * (w % 8))) & 0xff) as usize;
            if byte != 0 {
                acc = acc.add_affine(&self.entries[w * Self::DIGITS + (byte - 1)]);
            }
        }
        acc
    }

    /// Batched `sᵢ · G` over a slice of scalars: every scalar walks the
    /// shared comb table in projective form, then **one** Montgomery
    /// batch inversion normalizes all results to affine. The per-scalar
    /// [`FixedBaseTable::mul`]` + to_affine()` path pays one field
    /// inversion *each*; a row's worth of `SJ.Enc` exponentiations
    /// (`m(t+1)+3` of them) here pays exactly one.
    ///
    /// Output order matches `scalars`; counted under
    /// `batched_fixed_base_muls` (not `fixed_base_muls`) so benches can
    /// audit which path ran.
    pub fn mul_batch(&self, scalars: &[Fr]) -> Vec<Affine<C>> {
        ops::count_batched_fixed_base_muls(scalars.len() as u64);
        let accs: Vec<Projective<C>> = scalars.iter().map(|s| self.comb_acc(s)).collect();
        batch_normalize(&accs)
    }
}

/// Pippenger window width (bits) for an `n`-point sum: the classic
/// `log2(n)`-ish heuristic, clamped so tiny sums don't pay bucket setup
/// and huge sums don't blow up bucket memory.
fn pippenger_window(n: usize) -> usize {
    match n {
        0..=3 => 2,
        4..=15 => 4,
        16..=127 => 6,
        128..=1023 => 8,
        1024..=8191 => 10,
        _ => 12,
    }
}

/// Multi-scalar multiplication `Σ sᵢ·Pᵢ` via Pippenger's bucket method.
///
/// The scalar bits are split into `⌈255/c⌉` windows of `c` bits
/// (`c` grows with `n`, see [`pippenger_window`]). For each window,
/// every point is dropped into the bucket indexed by its window digit
/// (digit 0 skips), buckets are collapsed with the running-sum trick —
/// `Σ j·Bⱼ` computed with `2·(2ᶜ−1)` additions and no multiplications —
/// and the window totals combine with `c` doublings in between. Total
/// cost is roughly `255/c · (n + 2ᶜ⁺¹)` additions versus `n · 255`
/// doublings for per-point ladders: sub-linear per point once `n`
/// clears the window size.
///
/// # Constant-time discipline
///
/// Bucket indices are the scalar digits, so memory access order is
/// scalar-dependent — exactly the waiver scope documented at module
/// level: callers use this for sums over the *public* generators or
/// public ciphertext points with encryption-side scalars, where the
/// scalar-timing channel is the accepted out-of-scope leak.
///
/// Identity points contribute nothing; `points` and `scalars` must have
/// equal length. Counted under `msm_points` (an `n`-point call adds
/// `n`).
// audit-allow(ct-discipline): digit-indexed bucket accumulation is variable-time in the scalars; same documented scope as wnaf_digits
pub fn msm<C: CurveParams>(points: &[Affine<C>], scalars: &[Fr]) -> Projective<C> {
    assert_eq!(points.len(), scalars.len(), "msm length mismatch");
    ops::count_msm_points(points.len() as u64);
    if points.is_empty() {
        return Projective::identity();
    }
    let c = pippenger_window(points.len());
    let limbs: Vec<[u64; 4]> = scalars.iter().map(|s| s.to_canonical_limbs()).collect();
    // Fr is 255 bits; windows walk top-down so the accumulated total is
    // shifted left by c bits between windows.
    let windows = 255usize.div_ceil(c);
    let mut total = Projective::<C>::identity();
    let mut buckets: Vec<Projective<C>> = vec![Projective::identity(); (1 << c) - 1];
    for w in (0..windows).rev() {
        if w + 1 != windows {
            for _ in 0..c {
                total = total.double();
            }
        }
        for b in buckets.iter_mut() {
            *b = Projective::identity();
        }
        let bit = w * c;
        for (p, l) in points.iter().zip(&limbs) {
            let digit = window_digit(l, bit, c);
            if digit != 0 {
                buckets[digit - 1] = buckets[digit - 1].add_affine(p);
            }
        }
        // Running-sum trick: Σ j·Bⱼ = Σ (Bⱼ + Bⱼ₊₁ + …) summed top-down.
        let mut running = Projective::<C>::identity();
        let mut window_sum = Projective::<C>::identity();
        for b in buckets.iter().rev() {
            running = running.add(b);
            window_sum = window_sum.add(&running);
        }
        total = total.add(&window_sum);
    }
    total
}

/// Extract the `c`-bit window starting at bit `bit` from a 4-limb
/// little-endian scalar (windows may straddle a limb boundary).
fn window_digit(limbs: &[u64; 4], bit: usize, c: usize) -> usize {
    let limb = bit / 64;
    let shift = bit % 64;
    if limb >= 4 {
        return 0;
    }
    let mut v = limbs[limb] >> shift;
    if shift + c > 64 && limb + 1 < 4 {
        v |= limbs[limb + 1] << (64 - shift);
    }
    (v & ((1u64 << c) - 1)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g1::G1Params;
    use crate::{g1, params};
    use eqjoin_crypto::{ChaChaRng, RandomSource};

    #[test]
    fn wnaf_digits_reconstruct_the_scalar() {
        let mut rng = ChaChaRng::seed_from_u64(71);
        for w in 2..=7u32 {
            for _ in 0..8 {
                let scalar = [rng.next_u64(), rng.next_u64(), rng.next_u64(), 0];
                let digits = wnaf_digits(&scalar, w);
                // Σ d_i 2^i with i128 windows over 64-bit chunks.
                let mut value = [0u64; 5];
                for &d in digits.iter().rev() {
                    // value = 2·value + d
                    let mut carry = 0u64;
                    for limb in value.iter_mut() {
                        let doubled = (*limb as u128) << 1 | carry as u128;
                        *limb = doubled as u64;
                        carry = (doubled >> 64) as u64;
                    }
                    if d >= 0 {
                        let (v, mut c) = value[0].overflowing_add(d as u64);
                        value[0] = v;
                        let mut j = 1;
                        while c {
                            let (v, c2) = value[j].overflowing_add(1);
                            value[j] = v;
                            c = c2;
                            j += 1;
                        }
                    } else {
                        let (v, mut b) = value[0].overflowing_sub(d.unsigned_abs() as u64);
                        value[0] = v;
                        let mut j = 1;
                        while b {
                            let (v, b2) = value[j].overflowing_sub(1);
                            value[j] = v;
                            b = b2;
                            j += 1;
                        }
                    }
                }
                assert_eq!(&value[..4], &scalar, "w = {w}");
                assert_eq!(value[4], 0);
                // Digit constraints: zero or odd, |d| < 2^(w-1), and no
                // two nonzero digits within w positions.
                let mut last_nonzero: Option<usize> = None;
                for (i, &d) in digits.iter().enumerate() {
                    assert!(d == 0 || d % 2 != 0);
                    assert!((d.unsigned_abs() as i64) < (1 << (w - 1)));
                    if d != 0 {
                        if let Some(prev) = last_nonzero {
                            assert!(i - prev >= w as usize);
                        }
                        last_nonzero = Some(i);
                    }
                }
            }
        }
    }

    #[test]
    fn wnaf_digits_edge_scalars() {
        assert!(wnaf_digits(&[0, 0], 5).is_empty());
        assert_eq!(wnaf_digits(&[1], 5), vec![1]);
        let digits = wnaf_digits(&[2], 5);
        assert_eq!(digits, vec![0, 1]);
        // All-ones limb forces the add_small carry-growth path.
        let digits = wnaf_digits(&[u64::MAX], 5);
        assert!(!digits.is_empty());
        let p = *g1::generator();
        assert_eq!(mul_wnaf(&p, &[u64::MAX]), p.mul_limbs(&[u64::MAX]));
    }

    #[test]
    fn mul_wnaf_matches_ladder_on_g1() {
        let mut rng = ChaChaRng::seed_from_u64(72);
        let g = g1::generator();
        for _ in 0..4 {
            let scalar = [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ];
            assert_eq!(mul_wnaf(g, &scalar), g.mul_limbs(&scalar));
        }
        // Long limb slices (cofactor-shaped) agree too.
        let long = params::consts().g2_cofactor.clone();
        assert_eq!(mul_wnaf(g, &long), g.mul_limbs(&long));
        assert!(mul_wnaf(g, &[0, 0, 0, 0]).is_identity());
        assert!(mul_wnaf(&Projective::<G1Params>::identity(), &[5]).is_identity());
    }

    #[test]
    fn fixed_base_table_matches_ladder() {
        let g = g1::generator();
        let table = FixedBaseTable::build(g);
        let mut rng = ChaChaRng::seed_from_u64(73);
        for _ in 0..4 {
            let s = Fr::random(&mut rng);
            assert_eq!(table.mul(&s), g.mul_limbs(&s.to_canonical_limbs()));
        }
        assert!(table.mul(&Fr::zero()).is_identity());
        assert_eq!(table.mul(&Fr::one()), *g);
    }

    #[test]
    fn mul_batch_matches_per_scalar_path_on_g1_and_g2() {
        let mut rng = ChaChaRng::seed_from_u64(74);
        let mut scalars: Vec<Fr> = (0..9).map(|_| Fr::random(&mut rng)).collect();
        // Edge scalars: 0, 1, r−1.
        scalars.push(Fr::zero());
        scalars.push(Fr::one());
        scalars.push(-Fr::one());

        let g1t = FixedBaseTable::build(g1::generator());
        let batch = g1t.mul_batch(&scalars);
        assert_eq!(batch.len(), scalars.len());
        for (s, a) in scalars.iter().zip(&batch) {
            assert_eq!(*a, g1t.mul(s).to_affine());
        }

        let g2t = FixedBaseTable::build(crate::g2::generator());
        let batch = g2t.mul_batch(&scalars);
        for (s, a) in scalars.iter().zip(&batch) {
            assert_eq!(*a, g2t.mul(s).to_affine());
        }

        assert!(g1t.mul_batch(&[]).is_empty());
        assert!(g1t.mul_batch(&[Fr::zero()])[0].infinity);
    }

    #[test]
    fn msm_matches_sum_of_per_point_muls() {
        let mut rng = ChaChaRng::seed_from_u64(75);
        let g = g1::generator();
        // Sizes straddling the window-width breakpoints.
        for n in [1usize, 3, 4, 17, 40] {
            let points: Vec<_> = (0..n)
                .map(|_| g.mul_limbs(&Fr::random(&mut rng).to_canonical_limbs()))
                .collect();
            let affine = batch_normalize(&points);
            let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut rng)).collect();
            let mut expect = Projective::<G1Params>::identity();
            for (p, s) in points.iter().zip(&scalars) {
                expect = expect.add(&p.mul_limbs(&s.to_canonical_limbs()));
            }
            assert_eq!(msm(&affine, &scalars), expect, "n = {n}");
        }
    }

    #[test]
    fn msm_edge_scalars_and_identities() {
        let g = *g1::generator();
        let ga = g.to_affine();
        assert!(msm::<G1Params>(&[], &[]).is_identity());
        assert!(msm(&[ga], &[Fr::zero()]).is_identity());
        assert_eq!(msm(&[ga], &[Fr::one()]), g);
        // r−1 wraps to −G.
        assert_eq!(msm(&[ga], &[-Fr::one()]), g.neg());
        // Identity points contribute nothing.
        assert_eq!(
            msm(
                &[Affine::identity(), ga, Affine::identity()],
                &[Fr::from_u64(7), Fr::from_u64(3), Fr::from_u64(11)]
            ),
            g.mul_limbs(&[3])
        );
        // G2 spot check: s·G₂ + (r−1−s)·G₂ + G₂ = identity… i.e. sums cancel.
        let g2 = *crate::g2::generator();
        let g2a = g2.to_affine();
        let s = Fr::from_u64(12345);
        assert_eq!(
            msm(&[g2a, g2a], &[s, -s]),
            Projective::<crate::g2::G2Params>::identity()
        );
        assert_eq!(
            msm(&[g2a, g2a.neg()], &[s, s]),
            Projective::<crate::g2::G2Params>::identity()
        );
    }

    #[test]
    fn window_digit_straddles_limbs() {
        let limbs = [u64::MAX, 0b1011, 0, 1 << 63];
        assert_eq!(window_digit(&limbs, 0, 8), 0xff);
        // Window crossing the limb 0 → 1 boundary: top 4 bits of limb 0
        // (all ones) plus bottom 4 of limb 1 (0b1011).
        assert_eq!(window_digit(&limbs, 60, 8), 0b1011_1111);
        assert_eq!(window_digit(&limbs, 64, 4), 0b1011);
        // The 255th bit (top of limb 3) in a width-3 window at bit 252.
        assert_eq!(window_digit(&limbs, 252, 3), 0);
        assert_eq!(window_digit(&limbs, 192 + 60, 4), 0b1000);
        assert_eq!(window_digit(&limbs, 256, 4), 0);
    }

    #[test]
    fn batch_normalize_handles_identities() {
        let g = *g1::generator();
        let points = vec![
            Projective::<G1Params>::identity(),
            g,
            g.double(),
            Projective::<G1Params>::identity(),
        ];
        let affine = batch_normalize(&points);
        assert!(affine[0].infinity && affine[3].infinity);
        assert_eq!(affine[1], g.to_affine());
        assert_eq!(affine[2], g.double().to_affine());
        assert!(batch_normalize::<G1Params>(&[]).is_empty());
    }
}
