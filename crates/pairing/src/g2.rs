//! The group `G2`: the `r`-torsion of the sextic twist
//! `E'(Fp2): y² = x³ + 4(1+u) = x³ + 4ξ`.
//!
//! As for `G1`, the generator is found deterministically and cleared by
//! the (≈508-bit) cofactor `h2`, with the order verified at derivation
//! time.

use crate::curve::{Affine, CurveParams, Projective};
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fr::Fr;
use crate::params;
use crate::scalar_mul::mul_wnaf;
use crate::traits::Field;
use std::sync::OnceLock;

/// Curve parameters of the twist `E'(Fp2)`.
#[derive(Clone, Copy, Debug)]
pub struct G2Params;

impl CurveParams for G2Params {
    type Base = Fp2;
    fn b() -> Fp2 {
        // 4·ξ = 4 + 4u.
        Fp2::new(Fp::from_u64(4), Fp::from_u64(4))
    }
}

/// Affine `G2` point.
pub type G2Affine = Affine<G2Params>;
/// Jacobian `G2` point.
pub type G2Projective = Projective<G2Params>;

/// Number of bytes in the uncompressed affine serialization.
pub const G2_BYTES: usize = 4 * Fp::BYTES;

/// Deterministic generator of the order-`r` subgroup of the twist.
pub fn generator() -> &'static G2Projective {
    static GEN: OnceLock<G2Projective> = OnceLock::new();
    GEN.get_or_init(|| {
        let c = params::consts();
        let mut n = 0u64;
        loop {
            // Walk x = n + u, n = 0, 1, 2, … (x with a u-component so we
            // don't accidentally start in a proper subfield).
            let x = Fp2::new(Fp::from_u64(n), Fp::one());
            if let Some(point) = point_with_x(x) {
                let cleared = mul_wnaf(&point.to_projective(), &c.g2_cofactor);
                if !cleared.is_identity() {
                    assert!(
                        mul_wnaf(&cleared, &c.r_limbs).is_identity(),
                        "cofactor-cleared twist point must have order r"
                    );
                    return cleared;
                }
            }
            n += 1;
        }
    })
}

fn point_with_x(x: Fp2) -> Option<G2Affine> {
    let rhs = x.square() * x + G2Params::b();
    let y = rhs.sqrt()?;
    let y = canonical_y(y);
    G2Affine::new(x, y)
}

fn canonical_y(y: Fp2) -> Fp2 {
    let neg = -y;
    let yb = (y.c0.to_bytes(), y.c1.to_bytes());
    let nb = (neg.c0.to_bytes(), neg.c1.to_bytes());
    if yb <= nb {
        y
    } else {
        neg
    }
}

/// Multiply a point by a scalar-field element (wNAF).
pub fn mul_fr(point: &G2Projective, s: &Fr) -> G2Projective {
    mul_wnaf(point, &s.to_canonical_limbs())
}

/// Check membership in the order-`r` subgroup (`r·P = O`, via wNAF).
pub fn in_subgroup(point: &G2Projective) -> bool {
    mul_wnaf(point, &params::consts().r_limbs).is_identity()
}

/// Serialize an affine point (uncompressed; all-zero = identity).
pub fn to_bytes(point: &G2Affine) -> [u8; G2_BYTES] {
    let mut out = [0u8; G2_BYTES];
    if !point.infinity {
        out[..Fp::BYTES].copy_from_slice(&point.x.c0.to_bytes());
        out[Fp::BYTES..2 * Fp::BYTES].copy_from_slice(&point.x.c1.to_bytes());
        out[2 * Fp::BYTES..3 * Fp::BYTES].copy_from_slice(&point.y.c0.to_bytes());
        out[3 * Fp::BYTES..].copy_from_slice(&point.y.c1.to_bytes());
    }
    out
}

/// Deserialize an affine point; checks the curve equation and subgroup.
pub fn from_bytes(bytes: &[u8; G2_BYTES]) -> Option<G2Affine> {
    if bytes.iter().all(|&b| b == 0) {
        return Some(G2Affine::identity());
    }
    let part = |i: usize| -> Option<Fp> {
        let mut b = [0u8; Fp::BYTES];
        b.copy_from_slice(&bytes[i * Fp::BYTES..(i + 1) * Fp::BYTES]);
        Fp::from_bytes(&b)
    };
    let x = Fp2::new(part(0)?, part(1)?);
    let y = Fp2::new(part(2)?, part(3)?);
    let point = G2Affine::new(x, y)?;
    in_subgroup(&point.to_projective()).then_some(point)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    #[test]
    fn generator_has_order_r() {
        let g = generator();
        assert!(g.is_on_curve());
        assert!(!g.is_identity());
        assert!(in_subgroup(g));
        assert!(!g.mul_limbs(&[2]).is_identity());
    }

    #[test]
    fn twist_group_laws() {
        let g = generator();
        let two_g = g.double();
        let three_g = two_g.add(g);
        assert_eq!(three_g.sub(g), two_g);
        assert_eq!(g.mul_limbs(&[3]), three_g);
        assert!(three_g.is_on_curve());
    }

    #[test]
    fn scalar_mul_homomorphism() {
        let g = generator();
        let mut rng = ChaChaRng::seed_from_u64(41);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(mul_fr(g, &a).add(&mul_fr(g, &b)), mul_fr(g, &(a + b)));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = ChaChaRng::seed_from_u64(42);
        let p = mul_fr(generator(), &Fr::random(&mut rng)).to_affine();
        assert_eq!(from_bytes(&to_bytes(&p)).unwrap(), p);
        assert!(from_bytes(&[0u8; G2_BYTES]).unwrap().infinity);
    }

    #[test]
    fn from_bytes_rejects_non_subgroup_points() {
        // A random twist point (before cofactor clearing) is on the curve
        // but almost surely outside the r-subgroup; serialization must
        // reject it.
        let mut n = 0u64;
        let raw = loop {
            let x = Fp2::new(Fp::from_u64(n), Fp::one());
            if let Some(p) = point_with_x(x) {
                if !in_subgroup(&p.to_projective()) {
                    break p;
                }
            }
            n += 1;
        };
        assert!(from_bytes(&to_bytes(&raw)).is_none());
    }
}
