//! Derivation of every BLS12-381 constant from the BLS family parameter.
//!
//! BLS12 curves are parameterized by one integer `z`; for BLS12-381,
//! `z = -0xd201_0000_0001_0000`. The family polynomials are
//!
//! * scalar field modulus  `r(z) = z⁴ - z² + 1`
//! * base field modulus    `p(z) = (z-1)²·r(z)/3 + z`
//! * G1 cofactor           `h1(z) = (z-1)²/3`
//! * G2 cofactor           `h2(z) = (z⁸ - 4z⁷ + 5z⁶ - 4z⁴ + 6z³ - 4z² - 4z + 13)/9`
//! * trace of Frobenius    `t(z) = z + 1`
//!
//! Since `z < 0`, every polynomial is rearranged in `|z|` so all
//! intermediate values are non-negative (see the inline comments). The
//! derived values are cross-checked against the published standard
//! constants in the test module.

use crate::montgomery::FieldParams;
use eqjoin_bigint::BigUint;
use std::sync::OnceLock;

/// `|z|` for BLS12-381 (`z` itself is negative).
pub const BLS_X: u64 = 0xd201_0000_0001_0000;

/// Sign of the BLS parameter (true = negative), affecting the Miller loop
/// and final exponentiation.
pub const BLS_X_IS_NEGATIVE: bool = true;

/// All derived curve constants.
pub struct Constants {
    /// Montgomery parameters of the base field `Fp` (381 bits, 6 limbs).
    pub fp: FieldParams<6>,
    /// Montgomery parameters of the scalar field `Fr` (255 bits, 4 limbs).
    pub fr: FieldParams<4>,
    /// `p` as a big integer.
    pub p_big: BigUint,
    /// `r` as a big integer.
    pub r_big: BigUint,
    /// `(p - 1) / 2` — Legendre-symbol exponent.
    pub p_minus_1_over_2: Vec<u64>,
    /// `(p + 1) / 4` — square-root exponent (`p ≡ 3 mod 4`).
    pub p_plus_1_over_4: Vec<u64>,
    /// `(p - 1) / 6` — Frobenius coefficient exponent (`p ≡ 1 mod 6`).
    pub p_minus_1_over_6: Vec<u64>,
    /// G1 cofactor `h1` limbs.
    pub g1_cofactor: Vec<u64>,
    /// G2 cofactor `h2` limbs.
    pub g2_cofactor: Vec<u64>,
    /// `r` limbs (for subgroup checks).
    pub r_limbs: Vec<u64>,
}

/// Global constants, derived once per process.
pub fn consts() -> &'static Constants {
    static CONSTS: OnceLock<Constants> = OnceLock::new();
    CONSTS.get_or_init(derive)
}

fn derive() -> Constants {
    let z = BigUint::from_u64(BLS_X);
    let one = BigUint::one();

    // r = z⁴ - z² + 1 (identical in z and |z|: even powers only).
    let z2 = z.square();
    let z4 = z2.square();
    let r_big = z4.sub(&z2).add(&one);

    // p = (z-1)²·r/3 + z. With z = -|z|: (z-1)² = (|z|+1)², and +z = -|z|.
    let zp1_sq = z.add(&one).square();
    let p_big = zp1_sq.mul(&r_big).div_exact_u64(3).sub(&z);

    // Structural sanity checks used throughout the tower construction.
    assert_eq!(
        p_big.rem(&BigUint::from_u64(4)),
        BigUint::from_u64(3),
        "p ≡ 3 mod 4"
    );
    assert_eq!(
        p_big.rem(&BigUint::from_u64(6)),
        BigUint::from_u64(1),
        "p ≡ 1 mod 6"
    );
    assert_eq!(p_big.bit_len(), 381);
    assert_eq!(r_big.bit_len(), 255);

    let fp = FieldParams::derive(p_big.to_limbs_fixed::<6>());
    let fr = FieldParams::derive(r_big.to_limbs_fixed::<4>());

    let p_minus_1 = p_big.sub(&one);
    let p_minus_1_over_2 = p_minus_1.div_exact_u64(2).limbs().to_vec();
    let p_minus_1_over_6 = p_minus_1.div_exact_u64(6).limbs().to_vec();
    let p_plus_1_over_4 = p_big.add(&one).div_exact_u64(4).limbs().to_vec();

    // h1 = (z-1)²/3 = (|z|+1)²/3.
    let g1_cofactor = zp1_sq.div_exact_u64(3).limbs().to_vec();

    // h2 = (z⁸ - 4z⁷ + 5z⁶ - 4z⁴ + 6z³ - 4z² - 4z + 13)/9. Substituting
    // z = -|z| flips the sign of odd powers:
    //   9·h2 = |z|⁸ + 4|z|⁷ + 5|z|⁶ + 4|z| + 13 - (4|z|⁴ + 6|z|³ + 4|z|²)
    let z3 = z2.mul(&z);
    let z6 = z3.square();
    let z7 = z6.mul(&z);
    let z8 = z7.mul(&z);
    let positive = z8
        .add(&z7.mul_u64(4))
        .add(&z6.mul_u64(5))
        .add(&z.mul_u64(4))
        .add(&BigUint::from_u64(13));
    let negative = z4.mul_u64(4).add(&z3.mul_u64(6)).add(&z2.mul_u64(4));
    let g2_cofactor = positive.sub(&negative).div_exact_u64(9).limbs().to_vec();

    Constants {
        fp,
        fr,
        p_minus_1_over_2,
        p_plus_1_over_4,
        p_minus_1_over_6,
        g1_cofactor,
        g2_cofactor,
        r_limbs: r_big.limbs().to_vec(),
        p_big,
        r_big,
    }
}

/// Base-field parameters accessor (used by the `Fp` type).
pub fn fp_params() -> &'static FieldParams<6> {
    &consts().fp
}

/// Scalar-field parameters accessor (used by the `Fr` type).
pub fn fr_params() -> &'static FieldParams<4> {
    &consts().fr
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published standard BLS12-381 moduli — the derivation must
    /// reproduce them exactly.
    #[test]
    fn derived_moduli_match_standard() {
        let c = consts();
        assert_eq!(
            c.p_big.to_hex(),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624\
             1eabfffeb153ffffb9feffffffffaaab"
                .replace(char::is_whitespace, "")
        );
        assert_eq!(
            c.r_big.to_hex(),
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001"
        );
    }

    #[test]
    fn montgomery_inv_is_consistent() {
        let c = consts();
        assert_eq!(
            c.fp.modulus[0].wrapping_mul(c.fp.inv.wrapping_neg()),
            1,
            "fp inv"
        );
        assert_eq!(
            c.fr.modulus[0].wrapping_mul(c.fr.inv.wrapping_neg()),
            1,
            "fr inv"
        );
    }

    #[test]
    fn cofactor_times_r_covers_curve_order() {
        // #E(Fp) = h1 · r must equal p + 1 - t with t = z + 1 = 1 - |z|,
        // i.e. p + |z| (since t = 1 - |z|, p + 1 - t = p + |z|).
        let c = consts();
        let h1 = BigUint::from_limbs(&c.g1_cofactor);
        let lhs = h1.mul(&c.r_big);
        let rhs = c.p_big.add(&BigUint::from_u64(BLS_X));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn exponents_recombine() {
        let c = consts();
        let one = BigUint::one();
        let half = BigUint::from_limbs(&c.p_minus_1_over_2);
        assert_eq!(half.mul_u64(2).add(&one), c.p_big);
        let sixth = BigUint::from_limbs(&c.p_minus_1_over_6);
        assert_eq!(sixth.mul_u64(6).add(&one), c.p_big);
        let quarter = BigUint::from_limbs(&c.p_plus_1_over_4);
        assert_eq!(quarter.mul_u64(4), c.p_big.add(&one));
    }

    #[test]
    fn g2_cofactor_size() {
        // h2 has ~508 bits for BLS12-381.
        let c = consts();
        let h2 = BigUint::from_limbs(&c.g2_cofactor);
        assert!(h2.bit_len() > 500 && h2.bit_len() < 520, "{}", h2.bit_len());
    }

    #[test]
    fn hard_part_decomposition_holds() {
        // Final-exponentiation hard part (Hayashida et al. for BLS12):
        //   (x-1)²·(x+p)·(x²+p²-1) + 3  ==  3·(p⁴-p²+1)/r
        // Verified without division: LHS·r == 3·(p⁴-p²+1).
        let c = consts();
        let one = BigUint::one();
        let p = &c.p_big;
        let p2 = p.square();
        let p4 = p2.square();
        let x_minus_1_sq = BigUint::from_u64(BLS_X).add(&one).square(); // (x-1)² with x<0
        let x_plus_p = p.sub(&BigUint::from_u64(BLS_X)); // p - |x|
        let x2_plus_p2_minus_1 = BigUint::from_u64(BLS_X).square().add(&p2).sub(&one);
        let lhs = x_minus_1_sq
            .mul(&x_plus_p)
            .mul(&x2_plus_p2_minus_1)
            .add(&BigUint::from_u64(3));
        let rhs = p4.sub(&p2).add(&one).mul_u64(3);
        assert_eq!(lhs.mul(&c.r_big), rhs);
    }
}
