//! Quadratic extension `Fp12 = Fp6[w]/(w² - v)` — the pairing target
//! field. Includes the `p`-power Frobenius endomorphism (whose
//! coefficients are derived at runtime from `ξ^((p-1)/6)`), used by the
//! final exponentiation.

use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::fp6::Fp6;
use crate::params;
use crate::traits::Field;
use eqjoin_crypto::RandomSource;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::sync::OnceLock;

/// An element `c0 + c1·w` of `Fp12`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Fp12 {
    /// Constant coefficient.
    pub c0: Fp6,
    /// Coefficient of `w`.
    pub c1: Fp6,
}

/// Frobenius coefficients `γ^k = ξ^(k(p-1)/6)` for `k = 0..6`, derived once.
fn gamma_pows() -> &'static [Fp2; 6] {
    static GAMMA: OnceLock<[Fp2; 6]> = OnceLock::new();
    GAMMA.get_or_init(|| {
        let gamma = Fp2::xi().pow_slice(&params::consts().p_minus_1_over_6);
        let mut pows = [Fp2::one(); 6];
        for k in 1..6 {
            pows[k] = pows[k - 1] * gamma;
        }
        pows
    })
}

impl Fp12 {
    /// Construct from coefficients.
    pub const fn new(c0: Fp6, c1: Fp6) -> Self {
        Fp12 { c0, c1 }
    }

    /// Embed an `Fp6` element.
    pub fn from_fp6(c0: Fp6) -> Self {
        Fp12 {
            c0,
            c1: Fp6::zero(),
        }
    }

    /// Embed an `Fp2` element.
    pub fn from_fp2(c: Fp2) -> Self {
        Self::from_fp6(Fp6::from_fp2(c))
    }

    /// Embed an `Fp` element.
    pub fn from_fp(c: Fp) -> Self {
        Self::from_fp2(Fp2::from_fp(c))
    }

    /// Conjugation over `Fp6`: `c0 - c1·w`. Equals the `p⁶`-power Frobenius
    /// map; for elements of the cyclotomic subgroup it is the inverse.
    pub fn conjugate(&self) -> Self {
        Fp12 {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// The `p`-power Frobenius endomorphism.
    ///
    /// In the `w`-power basis `(1, w, w², …, w⁵)` over `Fp2` the map sends
    /// coefficient `c_k` of `w^k` to `conj(c_k)·ξ^(k(p-1)/6)` because
    /// `(w^k)^p = w^k · (w⁶)^(k(p-1)/6)` and `w⁶ = ξ` (`p ≡ 1 mod 6`).
    /// Our tower stores `w^{0,2,4}` in `c0` and `w^{1,3,5}` in `c1`.
    pub fn frobenius(&self) -> Self {
        let g = gamma_pows();
        Fp12 {
            c0: Fp6::new(
                self.c0.c0.conjugate(),
                self.c0.c1.conjugate() * g[2],
                self.c0.c2.conjugate() * g[4],
            ),
            c1: Fp6::new(
                self.c1.c0.conjugate() * g[1],
                self.c1.c1.conjugate() * g[3],
                self.c1.c2.conjugate() * g[5],
            ),
        }
    }

    /// The `p²`-power Frobenius (two applications of [`Self::frobenius`]).
    pub fn frobenius2(&self) -> Self {
        self.frobenius().frobenius()
    }

    /// Granger–Scott cyclotomic squaring, valid for elements of the
    /// cyclotomic subgroup (`x^(p⁶+1) = 1` — everything the easy part of
    /// the final exponentiation emits, hence every `GT` element).
    ///
    /// Decomposing `Fp12 = Fp4[w]` with `Fp4 = Fp2[v·w]`, the norm-1
    /// condition collapses a full squaring (3 `Fp6` multiplications ≈ 18
    /// `Fp2` multiplications) into three `Fp4` squarings — 9 `Fp2`
    /// squarings plus additions, roughly half the work. `Gt::pow` and the
    /// hard part of the final exponentiation are squaring-dominated, so
    /// they run on this.
    pub fn cyclotomic_square(&self) -> Self {
        crate::ops::count_cyclotomic_square();
        // Coefficients in the w-power basis: c0 = (z0, z4, z3)·(1, v, v²),
        // c1 = (z2, z1, z5)·(1, v, v²) — the Fp4 pairs are (z0, z1),
        // (z2, z3), (z4, z5).
        let z0 = self.c0.c0;
        let z4 = self.c0.c1;
        let z3 = self.c0.c2;
        let z2 = self.c1.c0;
        let z1 = self.c1.c1;
        let z5 = self.c1.c2;

        let (t0, t1) = fp4_square(z0, z1);
        let z0 = (t0 - z0).double() + t0;
        let z1 = (t1 + z1).double() + t1;

        let (t0, t1) = fp4_square(z2, z3);
        let (t2, t3) = fp4_square(z4, z5);
        let z4 = (t0 - z4).double() + t0;
        let z5 = (t1 + z5).double() + t1;

        let t0 = t3.mul_by_xi();
        let z2 = (t0 + z2).double() + t0;
        let z3 = (t2 - z3).double() + t2;

        Fp12 {
            c0: Fp6::new(z0, z4, z3),
            c1: Fp6::new(z2, z1, z5),
        }
    }

    /// Scale by an `Fp2` element (coefficient-wise).
    pub fn scale_fp2(&self, k: Fp2) -> Self {
        Fp12 {
            c0: self.c0.scale(k),
            c1: self.c1.scale(k),
        }
    }

    /// Canonical byte serialization (12 × 48 bytes, coefficients in tower
    /// order). Used for `GT` equality hashing in the hash join.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 * Fp::BYTES);
        for part in [&self.c0, &self.c1] {
            for coeff in [&part.c0, &part.c1, &part.c2] {
                out.extend_from_slice(&coeff.c0.to_bytes());
                out.extend_from_slice(&coeff.c1.to_bytes());
            }
        }
        out
    }
}

/// Squaring in `Fp4 = Fp2[s]/(s² - v·w… )` represented by its two `Fp2`
/// coefficients: `(a + b·s)² = a² + ξ·b² + (2ab)·s`.
fn fp4_square(a: Fp2, b: Fp2) -> (Fp2, Fp2) {
    let t0 = a.square();
    let t1 = b.square();
    let c0 = t1.mul_by_xi() + t0;
    let c1 = (a + b).square() - t0 - t1;
    (c0, c1)
}

impl Add for Fp12 {
    type Output = Fp12;
    #[inline]
    fn add(self, rhs: Fp12) -> Fp12 {
        Fp12 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fp12 {
    type Output = Fp12;
    #[inline]
    fn sub(self, rhs: Fp12) -> Fp12 {
        Fp12 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fp12 {
    type Output = Fp12;
    #[inline]
    fn neg(self) -> Fp12 {
        Fp12 {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fp12 {
    type Output = Fp12;
    fn mul(self, rhs: Fp12) -> Fp12 {
        // Karatsuba over Fp6 with w² = v.
        let t0 = self.c0 * rhs.c0;
        let t1 = self.c1 * rhs.c1;
        let sum = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Fp12 {
            c0: t0 + t1.mul_by_v(),
            c1: sum - t0 - t1,
        }
    }
}

impl AddAssign for Fp12 {
    fn add_assign(&mut self, rhs: Fp12) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp12 {
    fn sub_assign(&mut self, rhs: Fp12) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp12 {
    fn mul_assign(&mut self, rhs: Fp12) {
        *self = *self * rhs;
    }
}

impl Field for Fp12 {
    fn zero() -> Self {
        Fp12 {
            c0: Fp6::zero(),
            c1: Fp6::zero(),
        }
    }

    fn one() -> Self {
        Fp12 {
            c0: Fp6::one(),
            c1: Fp6::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (c0 + c1 w)² = c0² + v c1² + 2 c0 c1 w.
        let t0 = self.c0.square();
        let t1 = self.c1.square();
        let cross = self.c0 * self.c1;
        Fp12 {
            c0: t0 + t1.mul_by_v(),
            c1: cross + cross,
        }
    }

    fn invert(&self) -> Option<Self> {
        // (c0 + c1 w)⁻¹ = (c0 - c1 w)/(c0² - v c1²).
        let denom = self.c0.square() - self.c1.square().mul_by_v();
        let d_inv = denom.invert()?;
        Some(Fp12 {
            c0: self.c0 * d_inv,
            c1: -(self.c1 * d_inv),
        })
    }

    fn random(rng: &mut dyn RandomSource) -> Self {
        Fp12 {
            c0: Fp6::random(rng),
            c1: Fp6::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(12)
    }

    fn w() -> Fp12 {
        Fp12::new(Fp6::zero(), Fp6::one())
    }

    #[test]
    fn w_squared_is_v() {
        let v = Fp12::from_fp6(Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero()));
        assert_eq!(w().square(), v);
        assert_eq!(w() * w(), v);
    }

    #[test]
    fn w_sixth_is_xi() {
        let mut acc = Fp12::one();
        for _ in 0..6 {
            acc *= w();
        }
        assert_eq!(acc, Fp12::from_fp2(Fp2::xi()));
    }

    #[test]
    fn field_axioms_random() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            let b = Fp12::random(&mut r);
            let c = Fp12::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp12::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fp12::one());
        }
        assert_eq!(w() * w().invert().unwrap(), Fp12::one());
    }

    #[test]
    fn frobenius_matches_pth_power() {
        // The coefficient-wise Frobenius must equal x ↦ x^p. This pins the
        // whole γ-coefficient derivation.
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let expect = a.pow_slice(params::consts().p_big.limbs());
        assert_eq!(a.frobenius(), expect);
    }

    #[test]
    fn frobenius_is_additive_and_multiplicative() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let b = Fp12::random(&mut r);
        assert_eq!((a + b).frobenius(), a.frobenius() + b.frobenius());
        assert_eq!((a * b).frobenius(), a.frobenius() * b.frobenius());
    }

    #[test]
    fn frobenius_order_twelve() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let mut x = a;
        for _ in 0..12 {
            x = x.frobenius();
        }
        assert_eq!(x, a);
        // Six applications give conjugation (the p⁶ power).
        let mut y = a;
        for _ in 0..6 {
            y = y.frobenius();
        }
        assert_eq!(y, a.conjugate());
    }

    #[test]
    fn bytes_are_canonical_and_injective() {
        let mut r = rng();
        let a = Fp12::random(&mut r);
        let b = Fp12::random(&mut r);
        assert_eq!(a.to_bytes().len(), 576);
        assert_eq!(a.to_bytes(), a.to_bytes());
        assert_ne!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn cyclotomic_square_matches_generic_square_on_the_subgroup() {
        let mut r = rng();
        for _ in 0..4 {
            let a = Fp12::random(&mut r);
            if a.is_zero() {
                continue;
            }
            // Project into the cyclotomic subgroup via the easy part of
            // the final exponentiation: x ↦ x^((p⁶-1)(p²+1)).
            let t = a.conjugate() * a.invert().unwrap();
            let m = t.frobenius2() * t;
            assert_eq!(m.cyclotomic_square(), m.square());
            assert_eq!(
                m.cyclotomic_square().cyclotomic_square(),
                m.square().square()
            );
            // Sanity: membership really holds (x^(p⁶+1) = 1 ⇔ the
            // conjugate is the inverse).
            assert_eq!(m * m.conjugate(), Fp12::one());
        }
    }

    #[test]
    fn embeddings_compose() {
        let x = Fp::from_u64(9);
        assert_eq!(Fp12::from_fp(x) * Fp12::from_fp(x), Fp12::from_fp(x * x));
    }
}
