//! Quadratic extension `Fp2 = Fp[u]/(u² + 1)`.
//!
//! `-1` is a quadratic non-residue in `Fp` because `p ≡ 3 mod 4`
//! (asserted during parameter derivation), so this is a field.

use crate::fp::Fp;
use crate::traits::Field;
use eqjoin_crypto::RandomSource;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element `c0 + c1·u` of `Fp2`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Fp2 {
    /// Constant coefficient.
    pub c0: Fp,
    /// Coefficient of `u`.
    pub c1: Fp,
}

impl Fp2 {
    /// Construct from coefficients.
    pub const fn new(c0: Fp, c1: Fp) -> Self {
        Fp2 { c0, c1 }
    }

    /// Embed an `Fp` element.
    pub fn from_fp(c0: Fp) -> Self {
        Fp2 { c0, c1: Fp::zero() }
    }

    /// The distinguished non-residue `ξ = 1 + u` used to build `Fp6`.
    pub fn xi() -> Self {
        Fp2 {
            c0: Fp::one(),
            c1: Fp::one(),
        }
    }

    /// Complex conjugate `c0 - c1·u`; this is also the `p`-power Frobenius
    /// endomorphism on `Fp2`.
    pub fn conjugate(&self) -> Self {
        Fp2 {
            c0: self.c0,
            c1: -self.c1,
        }
    }

    /// Multiply by the non-residue `ξ = 1 + u`:
    /// `(c0 + c1·u)(1 + u) = (c0 - c1) + (c0 + c1)·u`.
    pub fn mul_by_xi(&self) -> Self {
        Fp2 {
            c0: self.c0 - self.c1,
            c1: self.c0 + self.c1,
        }
    }

    /// Scale by an `Fp` element.
    pub fn scale(&self, k: Fp) -> Self {
        Fp2 {
            c0: self.c0 * k,
            c1: self.c1 * k,
        }
    }

    /// The norm `c0² + c1²` (an `Fp` element).
    pub fn norm(&self) -> Fp {
        self.c0.square() + self.c1.square()
    }

    /// `true` iff the element is a square in `Fp2`.
    ///
    /// `a` is a square iff `a^((p²-1)/2) = 1`, and
    /// `a^((p²-1)/2) = norm(a)^((p-1)/2)`, so the test reduces to a
    /// Legendre symbol of the norm.
    pub fn is_square(&self) -> bool {
        self.norm().is_square()
    }

    /// Square root via the "complex method" for `p ≡ 3 mod 4`; `None` if
    /// the element is not a square.
    pub fn sqrt(&self) -> Option<Fp2> {
        if self.is_zero() {
            return Some(*self);
        }
        if self.c1.is_zero() {
            // sqrt of an Fp element inside Fp2.
            return match self.c0.sqrt() {
                Some(r) => Some(Fp2::from_fp(r)),
                None => {
                    // c0 is a non-square in Fp; then -c0 is a square
                    // (p ≡ 3 mod 4) and (r·u)² = -r² = c0 with r² = -c0.
                    let r = (-self.c0).sqrt()?;
                    Some(Fp2::new(Fp::zero(), r))
                }
            };
        }
        let lambda = self.norm().sqrt()?;
        let half = Fp::from_u64(2).invert().expect("2 invertible");
        // δ = (c0 + λ)/2, falling back to (c0 - λ)/2.
        let mut delta = (self.c0 + lambda) * half;
        if !delta.is_square() {
            delta = (self.c0 - lambda) * half;
        }
        let c = delta.sqrt()?;
        let c_inv_2 = (c.double()).invert()?;
        let d = self.c1 * c_inv_2;
        let cand = Fp2::new(c, d);
        (cand.square() == *self).then_some(cand)
    }
}

impl Add for Fp2 {
    type Output = Fp2;
    #[inline]
    fn add(self, rhs: Fp2) -> Fp2 {
        Fp2 {
            c0: self.c0 + rhs.c0,
            c1: self.c1 + rhs.c1,
        }
    }
}

impl Sub for Fp2 {
    type Output = Fp2;
    #[inline]
    fn sub(self, rhs: Fp2) -> Fp2 {
        Fp2 {
            c0: self.c0 - rhs.c0,
            c1: self.c1 - rhs.c1,
        }
    }
}

impl Neg for Fp2 {
    type Output = Fp2;
    #[inline]
    fn neg(self) -> Fp2 {
        Fp2 {
            c0: -self.c0,
            c1: -self.c1,
        }
    }
}

impl Mul for Fp2 {
    type Output = Fp2;
    #[inline]
    fn mul(self, rhs: Fp2) -> Fp2 {
        // Karatsuba: (a0 + a1 u)(b0 + b1 u) with u² = -1.
        let t0 = self.c0 * rhs.c0;
        let t1 = self.c1 * rhs.c1;
        let sum = (self.c0 + self.c1) * (rhs.c0 + rhs.c1);
        Fp2 {
            c0: t0 - t1,
            c1: sum - t0 - t1,
        }
    }
}

impl AddAssign for Fp2 {
    fn add_assign(&mut self, rhs: Fp2) {
        *self = *self + rhs;
    }
}
impl SubAssign for Fp2 {
    fn sub_assign(&mut self, rhs: Fp2) {
        *self = *self - rhs;
    }
}
impl MulAssign for Fp2 {
    fn mul_assign(&mut self, rhs: Fp2) {
        *self = *self * rhs;
    }
}

impl Field for Fp2 {
    fn zero() -> Self {
        Fp2 {
            c0: Fp::zero(),
            c1: Fp::zero(),
        }
    }

    fn one() -> Self {
        Fp2 {
            c0: Fp::one(),
            c1: Fp::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero()
    }

    fn square(&self) -> Self {
        // (a0 + a1 u)² = (a0+a1)(a0-a1) + 2 a0 a1 u.
        let t = (self.c0 + self.c1) * (self.c0 - self.c1);
        let cross = (self.c0 * self.c1).double();
        Fp2 { c0: t, c1: cross }
    }

    fn invert(&self) -> Option<Self> {
        // (a0 + a1 u)⁻¹ = (a0 - a1 u) / (a0² + a1²).
        let n = self.norm().invert()?;
        Some(Fp2 {
            c0: self.c0 * n,
            c1: -(self.c1 * n),
        })
    }

    fn random(rng: &mut dyn RandomSource) -> Self {
        Fp2 {
            c0: Fp::random(rng),
            c1: Fp::random(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    fn rng() -> ChaChaRng {
        ChaChaRng::seed_from_u64(2)
    }

    fn u() -> Fp2 {
        Fp2::new(Fp::zero(), Fp::one())
    }

    #[test]
    fn u_squared_is_minus_one() {
        assert_eq!(u().square(), -Fp2::one());
        assert_eq!(u() * u(), -Fp2::one());
    }

    #[test]
    fn field_axioms_random() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            let b = Fp2::random(&mut r);
            let c = Fp2::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
        }
    }

    #[test]
    fn inversion() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), Fp2::one());
        }
        assert!(Fp2::zero().invert().is_none());
    }

    #[test]
    fn conjugate_is_frobenius() {
        // a^p == conjugate(a).
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let frob = a.pow_slice(crate::params::consts().p_big.limbs());
        assert_eq!(frob, a.conjugate());
    }

    #[test]
    fn mul_by_xi_matches_mul() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        assert_eq!(a.mul_by_xi(), a * Fp2::xi());
    }

    #[test]
    fn norm_is_multiplicative() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let b = Fp2::random(&mut r);
        assert_eq!((a * b).norm(), a.norm() * b.norm());
        assert_eq!(a.norm(), (a * a.conjugate()).c0);
    }

    #[test]
    fn sqrt_roundtrip() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp2::random(&mut r);
            let sq = a.square();
            let root = sq.sqrt().expect("square has a root");
            assert!(root == a || root == -a, "root mismatch");
        }
    }

    #[test]
    fn sqrt_of_fp_embedded() {
        // Both Fp-square and Fp-non-square cases embedded in Fp2.
        let four = Fp2::from_fp(Fp::from_u64(4));
        let root = four.sqrt().unwrap();
        assert_eq!(root.square(), four);
        let minus_four = -four;
        let root2 = minus_four.sqrt().expect("-4 is a square in Fp2");
        assert_eq!(root2.square(), minus_four);
    }

    #[test]
    fn xi_is_not_a_square() {
        // ξ = 1 + u generates the sextic twist; it must be a non-square
        // (and non-cube) for the tower to be a field.
        assert!(!Fp2::xi().is_square());
        assert!(Fp2::xi().sqrt().is_none());
    }

    #[test]
    fn scale_matches_embedded_mul() {
        let mut r = rng();
        let a = Fp2::random(&mut r);
        let k = Fp::from_u64(12345);
        assert_eq!(a.scale(k), a * Fp2::from_fp(k));
    }
}
