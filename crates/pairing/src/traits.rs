//! Shared abstractions: the [`Field`] trait implemented by every level of
//! the tower (`Fp`, `Fp2`, `Fp6`, `Fp12`) and the scalar field `Fr`.

use eqjoin_crypto::RandomSource;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A finite field, used generically by the curve and tower arithmetic.
///
/// Arithmetic is exposed through the standard operator traits (elements are
/// small `Copy` values); the trait adds constructors and the operations the
/// generic code needs beyond operators.
pub trait Field:
    Copy
    + Clone
    + PartialEq
    + Eq
    + Debug
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// True iff the element is zero.
    fn is_zero(&self) -> bool;
    /// `self²` (may be faster than `self * self`).
    fn square(&self) -> Self;
    /// `2·self`.
    fn double(&self) -> Self {
        *self + *self
    }
    /// Multiplicative inverse; `None` for zero.
    fn invert(&self) -> Option<Self>;
    /// Uniformly random element.
    fn random(rng: &mut dyn RandomSource) -> Self;

    /// Exponentiation by a little-endian limb-slice exponent.
    fn pow_slice(&self, exp: &[u64]) -> Self {
        let mut res = Self::one();
        for &limb in exp.iter().rev() {
            for i in (0..64).rev() {
                res = res.square();
                if (limb >> i) & 1 == 1 {
                    res *= *self;
                }
            }
        }
        res
    }
}

/// Invert a batch of field elements with a single inversion
/// (Montgomery's trick). Panics if any element is zero.
pub fn batch_invert<F: Field>(values: &mut [F]) {
    if values.is_empty() {
        return;
    }
    // Prefix products.
    let mut prefix = Vec::with_capacity(values.len());
    let mut acc = F::one();
    for v in values.iter() {
        assert!(!v.is_zero(), "batch_invert: zero element");
        prefix.push(acc);
        acc *= *v;
    }
    let mut inv = acc.invert().expect("product of nonzero elements");
    // Walk back, peeling one inverse at a time.
    for i in (0..values.len()).rev() {
        let orig = values[i];
        values[i] = inv * prefix[i];
        inv *= orig;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp;
    use eqjoin_crypto::ChaChaRng;

    #[test]
    fn batch_invert_matches_individual() {
        let mut rng = ChaChaRng::seed_from_u64(11);
        let originals: Vec<Fp> = (0..17).map(|_| Fp::random_nonzero(&mut rng)).collect();
        let mut batch = originals.clone();
        batch_invert(&mut batch);
        for (o, b) in originals.iter().zip(&batch) {
            assert_eq!(o.invert().unwrap(), *b);
            assert_eq!(*o * *b, Fp::one());
        }
    }

    #[test]
    fn batch_invert_empty_and_single() {
        let mut empty: Vec<Fp> = vec![];
        batch_invert(&mut empty);
        let mut single = vec![Fp::from_u64(7)];
        batch_invert(&mut single);
        assert_eq!(single[0] * Fp::from_u64(7), Fp::one());
    }

    #[test]
    #[should_panic(expected = "zero element")]
    fn batch_invert_rejects_zero() {
        let mut vals = vec![Fp::one(), Fp::zero()];
        batch_invert(&mut vals);
    }
}
