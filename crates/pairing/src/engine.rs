//! The [`Engine`] abstraction over a bilinear group, and its production
//! implementation [`Bls12`].
//!
//! The Secure Join scheme and the FHIPE layer are generic over this trait,
//! which lets the test suite and the large-scale shape experiments swap in
//! the transparent [`crate::MockEngine`] while the cryptographic
//! benchmarks use the real curve. All scheme code treats group elements
//! opaquely: only generator exponentiations, pairings and `GT` equality
//! are required (plus general adds/muls used by the baseline schemes).

use crate::fr::Fr;
use crate::g1::{self, G1Affine};
use crate::g2::{self, G2Affine};
use crate::pairing as pr;
use crate::scalar_mul::FixedBaseTable;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::OnceLock;

/// A bilinear group `(G1, G2, GT, q, e)` with the operations the schemes
/// need. Groups are written additively at this layer; the paper's
/// multiplicative `g^x` corresponds to `mul_gen(x)`.
pub trait Engine: 'static + Clone + Copy + Debug + Send + Sync {
    /// First source group.
    type G1: Clone + Copy + PartialEq + Debug + Send + Sync;
    /// Second source group.
    type G2: Clone + Copy + PartialEq + Debug + Send + Sync;
    /// Target group.
    type Gt: Clone + Copy + PartialEq + Eq + Hash + Debug + Send + Sync;

    /// Human-readable engine name (used in benchmark reports).
    const NAME: &'static str;

    /// `g1^s` for the fixed generator (fixed-base optimized).
    fn g1_mul_gen(s: &Fr) -> Self::G1;
    /// `g2^s` for the fixed generator (fixed-base optimized).
    fn g2_mul_gen(s: &Fr) -> Self::G2;

    /// Batch form of [`Engine::g1_mul_gen`]: engines may share the
    /// affine-normalization inversions across the whole slice
    /// (Montgomery's trick — the BLS engine pays one inversion per call
    /// instead of one per scalar). Output order matches `scalars`. The
    /// default falls back to per-scalar calls but still counts the
    /// batch, so op-counter audits see the intended path either way.
    fn g1_mul_gen_batch(scalars: &[Fr]) -> Vec<Self::G1> {
        crate::ops::count_batched_fixed_base_muls(scalars.len() as u64);
        scalars.iter().map(Self::g1_mul_gen).collect()
    }
    /// Batch form of [`Engine::g2_mul_gen`]; see
    /// [`Engine::g1_mul_gen_batch`].
    fn g2_mul_gen_batch(scalars: &[Fr]) -> Vec<Self::G2> {
        crate::ops::count_batched_fixed_base_muls(scalars.len() as u64);
        scalars.iter().map(Self::g2_mul_gen).collect()
    }
    /// Multi-scalar multiplication `Σ sᵢ·pᵢ` in `G1` (slices must have
    /// equal length). The BLS engine runs Pippenger's bucket method
    /// ([`crate::scalar_mul::msm`]); the default folds per-point muls.
    fn g1_msm(points: &[Self::G1], scalars: &[Fr]) -> Self::G1 {
        assert_eq!(points.len(), scalars.len(), "msm length mismatch");
        crate::ops::count_msm_points(points.len() as u64);
        points
            .iter()
            .zip(scalars)
            .fold(Self::g1_identity(), |acc, (p, s)| {
                Self::g1_add(&acc, &Self::g1_mul(p, s))
            })
    }
    /// Multi-scalar multiplication `Σ sᵢ·qᵢ` in `G2`; see
    /// [`Engine::g1_msm`].
    fn g2_msm(points: &[Self::G2], scalars: &[Fr]) -> Self::G2 {
        assert_eq!(points.len(), scalars.len(), "msm length mismatch");
        crate::ops::count_msm_points(points.len() as u64);
        points
            .iter()
            .zip(scalars)
            .fold(Self::g2_identity(), |acc, (q, s)| {
                Self::g2_add(&acc, &Self::g2_mul(q, s))
            })
    }

    /// Identity of `G1`.
    fn g1_identity() -> Self::G1;
    /// Identity of `G2`.
    fn g2_identity() -> Self::G2;
    /// Group operation in `G1`.
    fn g1_add(a: &Self::G1, b: &Self::G1) -> Self::G1;
    /// Group operation in `G2`.
    fn g2_add(a: &Self::G2, b: &Self::G2) -> Self::G2;
    /// Scalar multiplication with an arbitrary base in `G1`.
    fn g1_mul(p: &Self::G1, s: &Fr) -> Self::G1;
    /// Scalar multiplication with an arbitrary base in `G2`.
    fn g2_mul(p: &Self::G2, s: &Fr) -> Self::G2;

    /// A `G2` element with its Miller-loop line state precomputed
    /// ([`crate::pairing::G2Prepared`] for the real curve) — pairings
    /// against it skip the per-step slope derivations entirely. Stored
    /// ciphertexts are kept in this form so a *series* of queries pays
    /// the line computation once per ciphertext, not once per pairing.
    type G2Prepared: Clone + Debug + Send + Sync;

    /// The bilinear map `e(p, q)`.
    fn pair(p: &Self::G1, q: &Self::G2) -> Self::Gt;
    /// `∏ᵢ e(pᵢ, qᵢ)` (slices must have equal length).
    fn multi_pair(ps: &[Self::G1], qs: &[Self::G2]) -> Self::Gt;

    /// Precompute the Miller-loop line state of one `G2` element.
    fn g2_prepare(q: &Self::G2) -> Self::G2Prepared;
    /// Batch form of [`Engine::g2_prepare`]; engines may share the
    /// per-step slope inversions across the whole batch.
    fn g2_prepare_batch(qs: &[Self::G2]) -> Vec<Self::G2Prepared> {
        qs.iter().map(Self::g2_prepare).collect()
    }
    /// `∏ᵢ e(pᵢ, qᵢ)` against prepared elements — must agree exactly
    /// with [`Engine::multi_pair`] on the originating points.
    fn multi_pair_prepared(ps: &[Self::G1], qs: &[Self::G2Prepared]) -> Self::Gt;
    /// One multi-pairing per row, sharing work *across* rows where the
    /// engine can (BLS batches the final exponentiation's easy-part
    /// inversions with Montgomery's trick). Output order matches
    /// `rows`. This is the shape of a decrypt phase: one token against
    /// many stored ciphertexts.
    fn multi_pair_prepared_batch(ps: &[Self::G1], rows: &[&[Self::G2Prepared]]) -> Vec<Self::Gt> {
        rows.iter()
            .map(|row| Self::multi_pair_prepared(ps, row))
            .collect()
    }
    /// Serialize a prepared element (snapshot persistence).
    fn g2_prepared_bytes(q: &Self::G2Prepared) -> Vec<u8>;
    /// Deserialize a prepared element (length- and canonicality-checked;
    /// integrity beyond that is the snapshot checksum's job).
    fn g2_prepared_from_bytes(bytes: &[u8]) -> Option<Self::G2Prepared>;

    /// Identity of `GT`.
    fn gt_one() -> Self::Gt;
    /// Group operation in `GT` (multiplicative notation in the paper).
    fn gt_mul(a: &Self::Gt, b: &Self::Gt) -> Self::Gt;
    /// Exponentiation in `GT`.
    fn gt_pow(a: &Self::Gt, s: &Fr) -> Self::Gt;
    /// Inverse in `GT`.
    fn gt_inv(a: &Self::Gt) -> Self::Gt;
    /// Canonical bytes of a `GT` element — the hash-join key.
    fn gt_bytes(a: &Self::Gt) -> Vec<u8>;

    /// Serialize a `G1` element.
    fn g1_bytes(p: &Self::G1) -> Vec<u8>;
    /// Deserialize a `G1` element (validated).
    fn g1_from_bytes(bytes: &[u8]) -> Option<Self::G1>;
    /// Serialize a `G2` element.
    fn g2_bytes(p: &Self::G2) -> Vec<u8>;
    /// Deserialize a `G2` element (validated).
    fn g2_from_bytes(bytes: &[u8]) -> Option<Self::G2>;
}

fn g1_table() -> &'static FixedBaseTable<crate::g1::G1Params> {
    static TABLE: OnceLock<FixedBaseTable<crate::g1::G1Params>> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::build(g1::generator()))
}

fn g2_table() -> &'static FixedBaseTable<crate::g2::G2Params> {
    static TABLE: OnceLock<FixedBaseTable<crate::g2::G2Params>> = OnceLock::new();
    TABLE.get_or_init(|| FixedBaseTable::build(g2::generator()))
}

/// The production BLS12-381 engine.
#[derive(Clone, Copy, Debug)]
pub struct Bls12;

impl Engine for Bls12 {
    type G1 = G1Affine;
    type G2 = G2Affine;
    type Gt = pr::Gt;
    type G2Prepared = pr::G2Prepared;

    const NAME: &'static str = "bls12-381";

    fn g1_mul_gen(s: &Fr) -> G1Affine {
        g1_table().mul(s).to_affine()
    }

    fn g2_mul_gen(s: &Fr) -> G2Affine {
        g2_table().mul(s).to_affine()
    }

    fn g1_mul_gen_batch(scalars: &[Fr]) -> Vec<G1Affine> {
        g1_table().mul_batch(scalars)
    }

    fn g2_mul_gen_batch(scalars: &[Fr]) -> Vec<G2Affine> {
        g2_table().mul_batch(scalars)
    }

    fn g1_msm(points: &[G1Affine], scalars: &[Fr]) -> G1Affine {
        crate::scalar_mul::msm(points, scalars).to_affine()
    }

    fn g2_msm(points: &[G2Affine], scalars: &[Fr]) -> G2Affine {
        crate::scalar_mul::msm(points, scalars).to_affine()
    }

    fn g1_identity() -> G1Affine {
        G1Affine::identity()
    }

    fn g2_identity() -> G2Affine {
        G2Affine::identity()
    }

    fn g1_add(a: &G1Affine, b: &G1Affine) -> G1Affine {
        a.to_projective().add(&b.to_projective()).to_affine()
    }

    fn g2_add(a: &G2Affine, b: &G2Affine) -> G2Affine {
        a.to_projective().add(&b.to_projective()).to_affine()
    }

    fn g1_mul(p: &G1Affine, s: &Fr) -> G1Affine {
        g1::mul_fr(&p.to_projective(), s).to_affine()
    }

    fn g2_mul(p: &G2Affine, s: &Fr) -> G2Affine {
        g2::mul_fr(&p.to_projective(), s).to_affine()
    }

    fn pair(p: &G1Affine, q: &G2Affine) -> pr::Gt {
        pr::pairing(p, q)
    }

    fn multi_pair(ps: &[G1Affine], qs: &[G2Affine]) -> pr::Gt {
        assert_eq!(ps.len(), qs.len(), "multi_pair length mismatch");
        let pairs: Vec<(G1Affine, G2Affine)> = ps.iter().copied().zip(qs.iter().copied()).collect();
        pr::multi_pairing(&pairs)
    }

    fn g2_prepare(q: &G2Affine) -> pr::G2Prepared {
        pr::G2Prepared::from_affine(q)
    }

    fn g2_prepare_batch(qs: &[G2Affine]) -> Vec<pr::G2Prepared> {
        pr::G2Prepared::prepare_batch(qs)
    }

    fn multi_pair_prepared(ps: &[G1Affine], qs: &[pr::G2Prepared]) -> pr::Gt {
        assert_eq!(ps.len(), qs.len(), "multi_pair_prepared length mismatch");
        let pairs: Vec<(G1Affine, &pr::G2Prepared)> = ps.iter().copied().zip(qs.iter()).collect();
        pr::final_exponentiation(&pr::multi_miller_loop_prepared(&pairs))
    }

    fn multi_pair_prepared_batch(ps: &[G1Affine], rows: &[&[pr::G2Prepared]]) -> Vec<pr::Gt> {
        // One prepared Miller loop per row, then a single batched final
        // exponentiation across the whole phase.
        let millers: Vec<_> = rows
            .iter()
            .map(|qs| {
                assert_eq!(ps.len(), qs.len(), "multi_pair_prepared length mismatch");
                let pairs: Vec<(G1Affine, &pr::G2Prepared)> =
                    ps.iter().copied().zip(qs.iter()).collect();
                pr::multi_miller_loop_prepared(&pairs)
            })
            .collect();
        pr::final_exponentiation_batch(&millers)
    }

    fn g2_prepared_bytes(q: &pr::G2Prepared) -> Vec<u8> {
        q.to_bytes()
    }

    fn g2_prepared_from_bytes(bytes: &[u8]) -> Option<pr::G2Prepared> {
        pr::G2Prepared::from_bytes(bytes)
    }

    fn gt_one() -> pr::Gt {
        pr::Gt::one()
    }

    fn gt_mul(a: &pr::Gt, b: &pr::Gt) -> pr::Gt {
        a.mul(b)
    }

    fn gt_pow(a: &pr::Gt, s: &Fr) -> pr::Gt {
        a.pow(s)
    }

    fn gt_inv(a: &pr::Gt) -> pr::Gt {
        a.inverse()
    }

    fn gt_bytes(a: &pr::Gt) -> Vec<u8> {
        a.to_bytes()
    }

    fn g1_bytes(p: &G1Affine) -> Vec<u8> {
        g1::to_bytes(p).to_vec()
    }

    fn g1_from_bytes(bytes: &[u8]) -> Option<G1Affine> {
        let arr: &[u8; g1::G1_BYTES] = bytes.try_into().ok()?;
        g1::from_bytes(arr)
    }

    fn g2_bytes(p: &G2Affine) -> Vec<u8> {
        g2::to_bytes(p).to_vec()
    }

    fn g2_from_bytes(bytes: &[u8]) -> Option<G2Affine> {
        let arr: &[u8; g2::G2_BYTES] = bytes.try_into().ok()?;
        g2::from_bytes(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    #[test]
    fn fixed_base_matches_double_and_add() {
        let mut rng = ChaChaRng::seed_from_u64(61);
        for _ in 0..5 {
            let s = Fr::random(&mut rng);
            assert_eq!(
                Bls12::g1_mul_gen(&s),
                g1::mul_fr(g1::generator(), &s).to_affine()
            );
            assert_eq!(
                Bls12::g2_mul_gen(&s),
                g2::mul_fr(g2::generator(), &s).to_affine()
            );
        }
    }

    #[test]
    fn fixed_base_edge_scalars() {
        assert!(Bls12::g1_mul_gen(&Fr::zero()).infinity);
        assert_eq!(Bls12::g1_mul_gen(&Fr::one()), g1::generator().to_affine());
        assert_eq!(
            Bls12::g1_mul_gen(&Fr::from_u64(16)),
            g1::mul_fr(g1::generator(), &Fr::from_u64(16)).to_affine()
        );
        assert_eq!(
            Bls12::g1_mul_gen(&(-Fr::one())),
            g1::generator().neg().to_affine()
        );
    }

    #[test]
    fn batch_mul_gen_matches_per_scalar() {
        let mut rng = ChaChaRng::seed_from_u64(65);
        let mut scalars: Vec<Fr> = (0..7).map(|_| Fr::random(&mut rng)).collect();
        scalars.push(Fr::zero());
        scalars.push(Fr::one());
        scalars.push(-Fr::one());
        let g1s = Bls12::g1_mul_gen_batch(&scalars);
        let g2s = Bls12::g2_mul_gen_batch(&scalars);
        for (i, s) in scalars.iter().enumerate() {
            assert_eq!(g1s[i], Bls12::g1_mul_gen(s));
            assert_eq!(g2s[i], Bls12::g2_mul_gen(s));
        }
        assert!(Bls12::g1_mul_gen_batch(&[]).is_empty());
    }

    #[test]
    fn engine_msm_matches_fold() {
        let mut rng = ChaChaRng::seed_from_u64(66);
        let points: Vec<G1Affine> = (0..5)
            .map(|_| Bls12::g1_mul_gen(&Fr::random(&mut rng)))
            .collect();
        let scalars: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let mut expect = Bls12::g1_identity();
        for (p, s) in points.iter().zip(&scalars) {
            expect = Bls12::g1_add(&expect, &Bls12::g1_mul(p, s));
        }
        assert_eq!(Bls12::g1_msm(&points, &scalars), expect);

        let q: Vec<G2Affine> = (0..3)
            .map(|_| Bls12::g2_mul_gen(&Fr::random(&mut rng)))
            .collect();
        let qs: Vec<Fr> = (0..3).map(|_| Fr::random(&mut rng)).collect();
        let mut expect2 = Bls12::g2_identity();
        for (p, s) in q.iter().zip(&qs) {
            expect2 = Bls12::g2_add(&expect2, &Bls12::g2_mul(p, s));
        }
        assert_eq!(Bls12::g2_msm(&q, &qs), expect2);
    }

    #[test]
    fn batch_counters_audit_the_batched_path() {
        let before = crate::ops::snapshot();
        let scalars = vec![Fr::from_u64(3); 4];
        let _ = Bls12::g1_mul_gen_batch(&scalars);
        let points: Vec<G1Affine> = vec![Bls12::g1_mul_gen(&Fr::one()); 2];
        let _ = Bls12::g1_msm(&points, &[Fr::from_u64(5), Fr::from_u64(9)]);
        let delta = crate::ops::snapshot().since(&before);
        assert!(delta.batched_fixed_base_muls >= 4);
        assert!(delta.msm_points >= 2);
    }

    #[test]
    fn engine_bilinearity() {
        let mut rng = ChaChaRng::seed_from_u64(62);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let lhs = Bls12::pair(&Bls12::g1_mul_gen(&a), &Bls12::g2_mul_gen(&b));
        let e_gen = Bls12::pair(
            &Bls12::g1_mul_gen(&Fr::one()),
            &Bls12::g2_mul_gen(&Fr::one()),
        );
        assert_eq!(lhs, Bls12::gt_pow(&e_gen, &(a * b)));
    }

    #[test]
    fn engine_serialization_roundtrip() {
        let mut rng = ChaChaRng::seed_from_u64(63);
        let s = Fr::random(&mut rng);
        let p = Bls12::g1_mul_gen(&s);
        let q = Bls12::g2_mul_gen(&s);
        assert_eq!(Bls12::g1_from_bytes(&Bls12::g1_bytes(&p)).unwrap(), p);
        assert_eq!(Bls12::g2_from_bytes(&Bls12::g2_bytes(&q)).unwrap(), q);
        assert!(Bls12::g1_from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn engine_group_ops_consistent() {
        let mut rng = ChaChaRng::seed_from_u64(64);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        assert_eq!(
            Bls12::g1_add(&Bls12::g1_mul_gen(&a), &Bls12::g1_mul_gen(&b)),
            Bls12::g1_mul_gen(&(a + b))
        );
        assert_eq!(
            Bls12::g1_mul(&Bls12::g1_mul_gen(&a), &b),
            Bls12::g1_mul_gen(&(a * b))
        );
        assert_eq!(
            Bls12::g2_mul(&Bls12::g2_mul_gen(&a), &b),
            Bls12::g2_mul_gen(&(a * b))
        );
    }
}
