//! A transparent-exponent mock bilinear group.
//!
//! Elements of `G1`, `G2` and `GT` are represented *by their discrete
//! logarithms* in `Fr`, and the "pairing" multiplies exponents. This is
//! obviously **not secure** (discrete logs are public by construction) but
//! it is a perfect *functional* model of a bilinear group of order `r`:
//! every algebraic identity the schemes rely on holds exactly.
//!
//! It is used for (a) fast protocol unit/property tests, and (b) the
//! full-scale *shape* experiments of Figures 3/4, where the runtime of the
//! real pairing would dominate wall-clock without changing the reported
//! shapes (DESIGN.md §4 documents this substitution).

use crate::engine::Engine;
use crate::fr::Fr;

/// Mock `G1` element `g1^x`, stored as `x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MockG1(pub Fr);

/// Mock `G2` element `g2^x`, stored as `x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MockG2(pub Fr);

/// Mock `GT` element `e(g1,g2)^x`, stored as `x`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MockGt(pub Fr);

/// The mock engine.
#[derive(Clone, Copy, Debug)]
pub struct MockEngine;

impl Engine for MockEngine {
    type G1 = MockG1;
    type G2 = MockG2;
    type Gt = MockGt;
    // Nothing to precompute when exponents are transparent — the
    // "prepared" form is the element itself.
    type G2Prepared = MockG2;

    const NAME: &'static str = "mock";

    fn g1_mul_gen(s: &Fr) -> MockG1 {
        MockG1(*s)
    }

    fn g2_mul_gen(s: &Fr) -> MockG2 {
        MockG2(*s)
    }

    fn g1_identity() -> MockG1 {
        MockG1(Fr::zero())
    }

    fn g2_identity() -> MockG2 {
        MockG2(Fr::zero())
    }

    fn g1_add(a: &MockG1, b: &MockG1) -> MockG1 {
        MockG1(a.0 + b.0)
    }

    fn g2_add(a: &MockG2, b: &MockG2) -> MockG2 {
        MockG2(a.0 + b.0)
    }

    fn g1_mul(p: &MockG1, s: &Fr) -> MockG1 {
        MockG1(p.0 * *s)
    }

    fn g2_mul(p: &MockG2, s: &Fr) -> MockG2 {
        MockG2(p.0 * *s)
    }

    fn pair(p: &MockG1, q: &MockG2) -> MockGt {
        MockGt(p.0 * q.0)
    }

    fn multi_pair(ps: &[MockG1], qs: &[MockG2]) -> MockGt {
        assert_eq!(ps.len(), qs.len(), "multi_pair length mismatch");
        MockGt(ps.iter().zip(qs).map(|(p, q)| p.0 * q.0).sum())
    }

    fn g2_prepare(q: &MockG2) -> MockG2 {
        *q
    }

    fn multi_pair_prepared(ps: &[MockG1], qs: &[MockG2]) -> MockGt {
        Self::multi_pair(ps, qs)
    }

    fn g2_prepared_bytes(q: &MockG2) -> Vec<u8> {
        Self::g2_bytes(q)
    }

    fn g2_prepared_from_bytes(bytes: &[u8]) -> Option<MockG2> {
        Self::g2_from_bytes(bytes)
    }

    fn gt_one() -> MockGt {
        MockGt(Fr::zero())
    }

    fn gt_mul(a: &MockGt, b: &MockGt) -> MockGt {
        MockGt(a.0 + b.0)
    }

    fn gt_pow(a: &MockGt, s: &Fr) -> MockGt {
        MockGt(a.0 * *s)
    }

    fn gt_inv(a: &MockGt) -> MockGt {
        MockGt(-a.0)
    }

    fn gt_bytes(a: &MockGt) -> Vec<u8> {
        a.0.to_bytes().to_vec()
    }

    fn g1_bytes(p: &MockG1) -> Vec<u8> {
        p.0.to_bytes().to_vec()
    }

    fn g1_from_bytes(bytes: &[u8]) -> Option<MockG1> {
        let arr: &[u8; 32] = bytes.try_into().ok()?;
        Fr::from_bytes(arr).map(MockG1)
    }

    fn g2_bytes(p: &MockG2) -> Vec<u8> {
        p.0.to_bytes().to_vec()
    }

    fn g2_from_bytes(bytes: &[u8]) -> Option<MockG2> {
        let arr: &[u8; 32] = bytes.try_into().ok()?;
        Fr::from_bytes(arr).map(MockG2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqjoin_crypto::ChaChaRng;

    #[test]
    fn mock_bilinearity() {
        let mut rng = ChaChaRng::seed_from_u64(71);
        let a = Fr::random(&mut rng);
        let b = Fr::random(&mut rng);
        let e = MockEngine::pair(&MockEngine::g1_mul_gen(&a), &MockEngine::g2_mul_gen(&b));
        let e_gen = MockEngine::pair(
            &MockEngine::g1_mul_gen(&Fr::one()),
            &MockEngine::g2_mul_gen(&Fr::one()),
        );
        assert_eq!(e, MockEngine::gt_pow(&e_gen, &(a * b)));
    }

    #[test]
    fn mock_multi_pair_inner_product() {
        let mut rng = ChaChaRng::seed_from_u64(72);
        let a: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let b: Vec<Fr> = (0..5).map(|_| Fr::random(&mut rng)).collect();
        let ps: Vec<MockG1> = a.iter().map(MockEngine::g1_mul_gen).collect();
        let qs: Vec<MockG2> = b.iter().map(MockEngine::g2_mul_gen).collect();
        let ip: Fr = a.iter().zip(&b).map(|(x, y)| *x * *y).sum();
        assert_eq!(MockEngine::multi_pair(&ps, &qs), MockGt(ip));
    }

    #[test]
    fn mock_serialization() {
        let mut rng = ChaChaRng::seed_from_u64(73);
        let p = MockEngine::g1_mul_gen(&Fr::random(&mut rng));
        assert_eq!(
            MockEngine::g1_from_bytes(&MockEngine::g1_bytes(&p)).unwrap(),
            p
        );
    }

    #[test]
    fn mock_gt_bytes_equality_semantics() {
        // Equal exponents ⇒ equal bytes (hash-join key property).
        let a = MockGt(Fr::from_u64(5));
        let b = MockEngine::gt_mul(&MockGt(Fr::from_u64(2)), &MockGt(Fr::from_u64(3)));
        assert_eq!(MockEngine::gt_bytes(&a), MockEngine::gt_bytes(&b));
    }
}
