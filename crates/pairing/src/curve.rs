//! Generic short-Weierstrass curve arithmetic `y² = x³ + b` (the `a = 0`
//! shape of both BLS12-381 groups), parameterized over the base field.
//!
//! Points are represented in Jacobian coordinates `(X, Y, Z)` with
//! `x = X/Z²`, `y = Y/Z³`; the identity is `Z = 0`. Formulas are the
//! standard EFD `dbl-2009-l` and `add-2007-bl`.

use crate::traits::Field;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Static parameters of a concrete curve.
pub trait CurveParams: 'static + Copy + Clone + Debug + Send + Sync {
    /// The field the coordinates live in.
    type Base: Field;
    /// The constant `b` in `y² = x³ + b`.
    fn b() -> Self::Base;
}

/// An affine point (or the point at infinity).
#[derive(Clone, Copy, Debug)]
pub struct Affine<C: CurveParams> {
    /// x-coordinate (meaningless if `infinity`).
    pub x: C::Base,
    /// y-coordinate (meaningless if `infinity`).
    pub y: C::Base,
    /// True for the identity element.
    pub infinity: bool,
}

/// A Jacobian-coordinates point.
#[derive(Clone, Copy, Debug)]
pub struct Projective<C: CurveParams> {
    /// Jacobian X.
    pub x: C::Base,
    /// Jacobian Y.
    pub y: C::Base,
    /// Jacobian Z (`0` for the identity).
    pub z: C::Base,
    _marker: PhantomData<C>,
}

impl<C: CurveParams> PartialEq for Affine<C> {
    fn eq(&self, other: &Self) -> bool {
        match (self.infinity, other.infinity) {
            (true, true) => true,
            (false, false) => self.x == other.x && self.y == other.y,
            _ => false,
        }
    }
}
impl<C: CurveParams> Eq for Affine<C> {}

impl<C: CurveParams> Affine<C> {
    /// The point at infinity.
    pub fn identity() -> Self {
        Affine {
            x: C::Base::zero(),
            y: C::Base::zero(),
            infinity: true,
        }
    }

    /// Construct from coordinates, checking the curve equation.
    pub fn new(x: C::Base, y: C::Base) -> Option<Self> {
        let p = Affine {
            x,
            y,
            infinity: false,
        };
        p.is_on_curve().then_some(p)
    }

    /// Check `y² = x³ + b` (identity passes).
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        self.y.square() == self.x.square() * self.x + C::b()
    }

    /// Negate (reflect over the x-axis).
    pub fn neg(&self) -> Self {
        Affine {
            x: self.x,
            y: -self.y,
            infinity: self.infinity,
        }
    }

    /// Lift to Jacobian coordinates.
    pub fn to_projective(&self) -> Projective<C> {
        if self.infinity {
            Projective::identity()
        } else {
            Projective {
                x: self.x,
                y: self.y,
                z: C::Base::one(),
                _marker: PhantomData,
            }
        }
    }
}

impl<C: CurveParams> PartialEq for Projective<C> {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1², Y1/Z1³) == (X2/Z2², Y2/Z2³) cross-multiplied.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * (z2z2 * other.z) == other.y * (z1z1 * self.z)
            }
            _ => false,
        }
    }
}
impl<C: CurveParams> Eq for Projective<C> {}

impl<C: CurveParams> Projective<C> {
    /// The identity element.
    pub fn identity() -> Self {
        Projective {
            x: C::Base::one(),
            y: C::Base::one(),
            z: C::Base::zero(),
            _marker: PhantomData,
        }
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (EFD `dbl-2009-l`, a = 0).
    pub fn double(&self) -> Self {
        if self.is_identity() {
            return *self;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = ((self.x + b).square() - a - c).double();
        let e = a.double() + a;
        let f = e.square();
        let x3 = f - d.double();
        let eight_c = c.double().double().double();
        let y3 = e * (d - x3) - eight_c;
        let z3 = (self.y * self.z).double();
        if z3.is_zero() {
            // y was zero: the tangent is vertical (cannot happen on odd-order
            // subgroups, but handle it for generic correctness).
            return Self::identity();
        }
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// General point addition (EFD `add-2007-bl`).
    pub fn add(&self, other: &Self) -> Self {
        if self.is_identity() {
            return *other;
        }
        if other.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x * z2z2;
        let u2 = other.x * z1z1;
        let s1 = self.y * other.z * z2z2;
        let s2 = other.y * self.z * z1z1;
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + other.z).square() - z1z1 - z2z2) * h;
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Mixed addition with an affine point (`Z2 = 1`; EFD
    /// `madd-2007-bl`). Saves ~4 field multiplications over the general
    /// [`Projective::add`] — the workhorse of table-based scalar
    /// multiplication, where every table entry is pre-normalized.
    pub fn add_affine(&self, other: &Affine<C>) -> Self {
        if other.infinity {
            return *self;
        }
        if self.is_identity() {
            return other.to_projective();
        }
        let z1z1 = self.z.square();
        let u2 = other.x * z1z1;
        let s2 = other.y * self.z * z1z1;
        if self.x == u2 {
            return if self.y == s2 {
                self.double()
            } else {
                Self::identity()
            };
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Projective {
            x: x3,
            y: y3,
            z: z3,
            _marker: PhantomData,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        Projective {
            x: self.x,
            y: -self.y,
            z: self.z,
            _marker: PhantomData,
        }
    }

    /// Subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Scalar multiplication by a little-endian limb-slice scalar
    /// (double-and-add, MSB first).
    ///
    /// This is the slow textbook ladder, kept as the correctness
    /// oracle and benchmark baseline for the optimized paths in
    /// [`crate::scalar_mul`] (wNAF and fixed-base comb tables); hot
    /// code should call [`crate::scalar_mul::mul_wnaf`] instead.
    // audit-allow(ct-discipline): textbook double-and-add, kept only as the correctness oracle and benchmark baseline for scalar_mul
    pub fn mul_limbs(&self, scalar: &[u64]) -> Self {
        let mut acc = Self::identity();
        for &limb in scalar.iter().rev() {
            for i in (0..64).rev() {
                acc = acc.double();
                if (limb >> i) & 1 == 1 {
                    acc = acc.add(self);
                }
            }
        }
        acc
    }

    /// Normalize to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let z_inv = self.z.invert().expect("nonzero z");
        let z_inv2 = z_inv.square();
        Affine {
            x: self.x * z_inv2,
            y: self.y * z_inv2 * z_inv,
            infinity: false,
        }
    }

    /// Check the curve equation in Jacobian form:
    /// `Y² = X³ + b·Z⁶` (identity passes).
    pub fn is_on_curve(&self) -> bool {
        if self.is_identity() {
            return true;
        }
        let z6 = self.z.square().square() * self.z.square();
        self.y.square() == self.x.square() * self.x + C::b() * z6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fp::Fp;

    // A concrete instantiation for testing the generic formulas: the G1
    // curve y² = x³ + 4 over Fp.
    #[derive(Clone, Copy, Debug)]
    struct TestCurve;
    impl CurveParams for TestCurve {
        type Base = Fp;
        fn b() -> Fp {
            Fp::from_u64(4)
        }
    }

    fn base_point() -> Projective<TestCurve> {
        // Smallest x with a valid y on y² = x³ + 4 (not necessarily in the
        // r-torsion; fine for formula tests on the full group).
        let mut x = Fp::zero();
        loop {
            let rhs = x.square() * x + Fp::from_u64(4);
            if let Some(y) = rhs.sqrt() {
                return Affine::<TestCurve>::new(x, y).unwrap().to_projective();
            }
            x += Fp::one();
        }
    }

    #[test]
    fn identity_laws() {
        let p = base_point();
        let id = Projective::<TestCurve>::identity();
        assert_eq!(p.add(&id), p);
        assert_eq!(id.add(&p), p);
        assert_eq!(id.double(), id);
        assert!(id.to_affine().infinity);
        assert_eq!(p.add(&p.neg()), id);
    }

    #[test]
    fn double_matches_add() {
        let p = base_point();
        assert_eq!(p.double(), p.add(&p));
        assert!(p.double().is_on_curve());
    }

    #[test]
    fn associativity_and_commutativity() {
        let p = base_point();
        let q = p.double();
        let r = q.double();
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
    }

    #[test]
    fn scalar_mul_small() {
        let p = base_point();
        assert_eq!(p.mul_limbs(&[0]), Projective::identity());
        assert_eq!(p.mul_limbs(&[1]), p);
        assert_eq!(p.mul_limbs(&[2]), p.double());
        assert_eq!(p.mul_limbs(&[5]), p.double().double().add(&p));
        // (a+b)P = aP + bP
        assert_eq!(
            p.mul_limbs(&[7]).add(&p.mul_limbs(&[8])),
            p.mul_limbs(&[15])
        );
    }

    #[test]
    fn affine_roundtrip() {
        let p = base_point().mul_limbs(&[12345]);
        let a = p.to_affine();
        assert!(a.is_on_curve());
        assert_eq!(a.to_projective(), p);
        assert_eq!(a.neg().to_projective(), p.neg());
    }

    #[test]
    fn new_rejects_off_curve() {
        assert!(Affine::<TestCurve>::new(Fp::from_u64(1), Fp::from_u64(1)).is_none());
    }

    #[test]
    fn projective_eq_ignores_scaling() {
        let p = base_point().mul_limbs(&[99]);
        // Scale Jacobian coordinates by λ²,λ³ — same point.
        let lambda = Fp::from_u64(7);
        let scaled = Projective::<TestCurve> {
            x: p.x * lambda.square(),
            y: p.y * lambda.square() * lambda,
            z: p.z * lambda,
            _marker: PhantomData,
        };
        assert_eq!(p, scaled);
        assert!(scaled.is_on_curve());
    }

    #[test]
    fn add_affine_matches_general_add() {
        let p = base_point().mul_limbs(&[1234]);
        let q = base_point().mul_limbs(&[987]);
        let qa = q.to_affine();
        assert_eq!(p.add_affine(&qa), p.add(&q));
        // Branches: identity on either side, doubling, inverse pair.
        let id = Projective::<TestCurve>::identity();
        assert_eq!(id.add_affine(&qa), q);
        assert_eq!(p.add_affine(&Affine::identity()), p);
        assert_eq!(q.add_affine(&qa), q.double());
        assert!(q.add_affine(&qa.neg()).is_identity());
    }

    #[test]
    fn mixed_branch_in_add() {
        let p = base_point();
        // add with equal x / equal y triggers the doubling branch
        assert_eq!(p.add(&p), p.double());
        // and with negated y the identity branch
        assert!(p.add(&p.neg()).is_identity());
    }
}
