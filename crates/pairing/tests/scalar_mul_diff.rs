//! Differential tests for the fast scalar-multiplication paths: wNAF
//! and the fixed-base comb tables must agree **bit-for-bit** with the
//! textbook double-and-add oracle (`Projective::mul_limbs`) on random
//! and edge scalars, on both `G1` and `G2`.

use eqjoin_pairing::curve::Projective;
use eqjoin_pairing::scalar_mul::{mul_wnaf, FixedBaseTable};
use eqjoin_pairing::{g1, g2, params, Bls12, Engine, Fr};
use proptest::prelude::*;

/// The edge scalars of the acceptance checklist: 0, 1, 2 and r−1.
fn edge_scalars() -> Vec<Fr> {
    vec![Fr::zero(), Fr::one(), Fr::from_u64(2), -Fr::one()]
}

#[test]
fn edge_scalars_agree_with_oracle_on_g1_and_g2() {
    let g1_table = FixedBaseTable::build(g1::generator());
    let g2_table = FixedBaseTable::build(g2::generator());
    for s in edge_scalars() {
        let limbs = s.to_canonical_limbs();
        let oracle_g1 = g1::generator().mul_limbs(&limbs);
        let oracle_g2 = g2::generator().mul_limbs(&limbs);
        assert_eq!(mul_wnaf(g1::generator(), &limbs), oracle_g1, "{s:?}");
        assert_eq!(mul_wnaf(g2::generator(), &limbs), oracle_g2, "{s:?}");
        assert_eq!(g1_table.mul(&s), oracle_g1, "{s:?}");
        assert_eq!(g2_table.mul(&s), oracle_g2, "{s:?}");
        // The engine's fixed-base entry points route through the same
        // comb tables.
        assert_eq!(Bls12::g1_mul_gen(&s), oracle_g1.to_affine(), "{s:?}");
        assert_eq!(Bls12::g2_mul_gen(&s), oracle_g2.to_affine(), "{s:?}");
    }
}

#[test]
fn r_times_generator_is_identity_via_every_path() {
    // r ≡ 0, so every multiplication path must land on the identity —
    // this is exactly the `in_subgroup` routing.
    let r = params::consts().r_limbs.clone();
    assert!(mul_wnaf(g1::generator(), &r).is_identity());
    assert!(mul_wnaf(g2::generator(), &r).is_identity());
    assert!(g1::in_subgroup(g1::generator()));
    assert!(g2::in_subgroup(g2::generator()));
}

/// Build an `Fr` from four random limbs (wide-reduced, so the whole
/// scalar field is reachable).
fn fr_from(parts: (u64, u64, u64, u64)) -> Fr {
    Fr::from_wide_limbs([parts.0, parts.1, parts.2, parts.3, 0, 0, 0, 0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wnaf_matches_oracle_on_g1(parts in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), small in any::<u64>()) {
        let s = fr_from(parts);
        let limbs = s.to_canonical_limbs();
        prop_assert_eq!(mul_wnaf(g1::generator(), &limbs), g1::generator().mul_limbs(&limbs));
        // Variable bases too, not just the generator.
        let base = g1::mul_fr(g1::generator(), &Fr::from_u64(small | 1));
        prop_assert_eq!(mul_wnaf(&base, &limbs), base.mul_limbs(&limbs));
    }

    #[test]
    fn wnaf_matches_oracle_on_g2(parts in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let s = fr_from(parts);
        let limbs = s.to_canonical_limbs();
        prop_assert_eq!(mul_wnaf(g2::generator(), &limbs), g2::generator().mul_limbs(&limbs));
    }

    #[test]
    fn comb_tables_match_oracle(parts in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        let s = fr_from(parts);
        let limbs = s.to_canonical_limbs();
        prop_assert_eq!(Bls12::g1_mul_gen(&s), g1::generator().mul_limbs(&limbs).to_affine());
        prop_assert_eq!(Bls12::g2_mul_gen(&s), g2::generator().mul_limbs(&limbs).to_affine());
    }

    #[test]
    fn wnaf_matches_oracle_on_raw_limb_slices(parts in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())) {
        // Raw (unreduced) slices exercise recoding beyond the scalar
        // field — the cofactor-clearing shape.
        let limbs = [parts.0, parts.1, parts.2, parts.3];
        prop_assert_eq!(mul_wnaf(g1::generator(), &limbs), g1::generator().mul_limbs(&limbs));
    }
}

#[test]
fn identity_base_stays_identity() {
    let id = Projective::<g1::G1Params>::identity();
    assert!(mul_wnaf(&id, &[12345]).is_identity());
    let id2 = Projective::<g2::G2Params>::identity();
    assert!(mul_wnaf(&id2, &[12345]).is_identity());
}
