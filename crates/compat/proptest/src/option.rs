//! Option strategies (`proptest::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`, `None` with probability ~1/4
/// (upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
