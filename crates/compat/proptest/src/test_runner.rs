//! Test configuration and the deterministic RNG cases draw from.

/// Mirror of `proptest::test_runner::ProptestConfig` (the `cases` knob
/// only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; that is cheap for the arithmetic
        // properties this workspace tests.
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64: tiny, fast, and statistically fine for test-case
/// generation (not cryptographic — the workspace's own `eqjoin-crypto`
/// RNG is for that).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic stream for one (test name, case index) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        seed ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bound reduction; bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Render the payload of a caught panic for the failure report.
pub fn panic_message(err: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
