//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! in-tree stand-in provides exactly the surface the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`Strategy`] with `prop_map`, implemented for integer ranges,
//!   tuples, and the combinators in [`collection`] and [`option`],
//! * `any::<T>()` for the integer types the tests draw from,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics differ from upstream proptest in one deliberate way: there
//! is **no shrinking** — a failing case panics with the generated inputs
//! in the message instead of a minimized counterexample. Generation is
//! deterministic per test (seeded from the test name), so failures
//! reproduce across runs.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run a block of property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn prop_name(a in strategy_a, b in strategy_b) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut __rng,
                        );
                    )+
                    // Capture the inputs for the failure report before the
                    // body may move them.
                    let __case_desc = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(err) = __result {
                        panic!(
                            "proptest case {}/{} failed for inputs: {}\n{}",
                            case + 1,
                            config.cases,
                            __case_desc,
                            $crate::test_runner::panic_message(&err),
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}
