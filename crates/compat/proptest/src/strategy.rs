//! The [`Strategy`] trait and the primitive strategies the tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Upstream proptest separates `Strategy` from `ValueTree` to support
/// shrinking; this subset collapses the two — `generate` produces the
/// value directly.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (upstream `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Draw enough 64-bit words for the width.
                let mut v: u128 = 0;
                let words = (<$t>::BITS as usize).div_ceil(64);
                for _ in 0..words {
                    v = (v << 64) | rng.next_u64() as u128;
                }
                v as $t
            }
        }

        // Spans go through i128 so negative signed bounds neither
        // sign-extend into huge u128 values nor underflow; every
        // integer span below 2^64 fits a u64.
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1).min(u64::MAX as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128 + 1)
                    .min(u64::MAX as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}
