//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Lengths a [`vec`] strategy may draw.
pub trait SizeRange {
    /// Draw one length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
