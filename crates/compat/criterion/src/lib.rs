//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this in-tree
//! stand-in implements the surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`measurement_time`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and `Bencher::iter` — with a
//! simple warmup + timed-samples loop and a plain-text median/mean
//! report instead of criterion's statistical machinery.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (used when the group name already names the
    /// function).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Names accepted by `bench_function` / `bench_with_input`.
pub trait IntoBenchmarkName {
    /// The display name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples (after one
    /// untimed warmup call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = std_black_box(routine());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let _ = std_black_box(routine());
            self.results.push(t0.elapsed());
        }
    }

    /// Like [`Bencher::iter`], with an untimed per-sample setup call
    /// producing the routine's input.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std_black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            let _ = std_black_box(routine(input));
            self.results.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the simple loop ignores it (the
    /// sample count alone bounds runtime).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher);
        report(&self.group_name, &name.into_name(), &bencher.results);
        let _ = &self.criterion; // group lifetime ties reports to one run
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<N, I, F>(&mut self, name: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut bencher, input);
        report(&self.group_name, &name.into_name(), &bencher.results);
        self
    }

    /// End the group (prints nothing extra; provided for compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with generated `main`s.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group_name = name.into();
        println!("\n== {group_name} ==");
        BenchmarkGroup {
            criterion: self,
            group_name,
            sample_size: 10,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned()).bench_function("", f);
        self
    }
}

fn report(group: &str, name: &str, samples: &[Duration]) {
    let label = if name.is_empty() {
        group.to_owned()
    } else {
        format!("{group}/{name}")
    };
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<48} median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        sorted.len()
    );
}

/// Mirror of `criterion_group!`: defines a function running each
/// benchmark with a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
