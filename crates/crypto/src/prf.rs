//! A keyed pseudo-random function with labeled domains, plus key
//! derivation for the per-column pre-filter tags and baseline schemes.

use crate::hmac::{hkdf_expand, hmac_sha256};
use crate::rng::RandomSource;

/// A keyed PRF (HMAC-SHA-256 under the hood) with domain separation.
#[derive(Clone)]
pub struct Prf {
    key: [u8; 32],
}

impl Prf {
    /// Construct from an explicit 32-byte key.
    pub fn from_key(key: [u8; 32]) -> Self {
        Prf { key }
    }

    /// Sample a fresh PRF key from `rng`.
    pub fn generate(rng: &mut dyn RandomSource) -> Self {
        let mut key = [0u8; 32];
        rng.fill_bytes(&mut key);
        Prf { key }
    }

    /// Derive a child PRF for a labeled sub-domain (e.g. one per column).
    pub fn derive(&self, label: &[u8]) -> Prf {
        let out = hkdf_expand(&self.key, label, 32);
        let mut key = [0u8; 32];
        key.copy_from_slice(&out);
        Prf { key }
    }

    /// Evaluate the PRF on `input`, returning 32 bytes.
    pub fn eval(&self, input: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.key, input)
    }

    /// Evaluate and truncate to a 16-byte tag (pre-filter tag size).
    pub fn tag16(&self, input: &[u8]) -> [u8; 16] {
        let full = self.eval(input);
        let mut out = [0u8; 16];
        out.copy_from_slice(&full[..16]);
        out
    }

    /// Raw key access (used to persist client state).
    pub fn key_bytes(&self) -> &[u8; 32] {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ChaChaRng;

    #[test]
    fn deterministic_and_key_separated() {
        let a = Prf::from_key([1u8; 32]);
        let b = Prf::from_key([2u8; 32]);
        assert_eq!(a.eval(b"x"), a.eval(b"x"));
        assert_ne!(a.eval(b"x"), b.eval(b"x"));
        assert_ne!(a.eval(b"x"), a.eval(b"y"));
    }

    #[test]
    fn derived_domains_are_independent() {
        let root = Prf::from_key([7u8; 32]);
        let col_a = root.derive(b"col:a");
        let col_b = root.derive(b"col:b");
        assert_ne!(col_a.eval(b"v"), col_b.eval(b"v"));
        assert_ne!(col_a.eval(b"v"), root.eval(b"v"));
        // Re-derivation is stable.
        assert_eq!(root.derive(b"col:a").eval(b"v"), col_a.eval(b"v"));
    }

    #[test]
    fn tag16_is_prefix() {
        let prf = Prf::from_key([9u8; 32]);
        assert_eq!(prf.tag16(b"q")[..], prf.eval(b"q")[..16]);
    }

    #[test]
    fn generate_uses_rng() {
        let mut r1 = ChaChaRng::seed_from_u64(5);
        let mut r2 = ChaChaRng::seed_from_u64(5);
        let p1 = Prf::generate(&mut r1);
        let p2 = Prf::generate(&mut r2);
        assert_eq!(p1.eval(b"m"), p2.eval(b"m"));
    }
}
