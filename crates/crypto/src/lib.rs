//! Symmetric-cryptography substrate for the encrypted-join system.
//!
//! The paper's scheme needs (a) a cryptographic hash `H(·)` mapping join
//! attribute values into `Z_q` "acting as much as practically possible like
//! a random function" (§4.3), (b) randomness for keys, blinding factors and
//! matrix sampling, and (c) payload encryption so the client can recover the
//! plaintext of joined rows. No external crypto crates are assumed, so this
//! crate implements the required primitives from scratch:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256. Round constants are *derived* at
//!   startup with exact integer cube/square roots instead of being
//!   hard-coded, and checked against the standard test vectors.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104) and an HKDF-style expander.
//! * [`chacha20`] — the RFC 8439 ChaCha20 stream cipher.
//! * [`rng`] — a deterministic ChaCha20-based CSPRNG behind the dyn-safe
//!   [`RandomSource`] trait used everywhere randomness is needed. All
//!   protocol randomness flows through this trait so experiments are
//!   reproducible bit-for-bit from a seed.
//! * [`aead`] — encrypt-then-MAC authenticated encryption
//!   (ChaCha20 + HMAC-SHA-256) for row payloads.
//! * [`prf`] — a keyed PRF and key-derivation helpers used by the
//!   pre-filter tags and the baseline schemes.

#![forbid(unsafe_code)]

pub mod aead;
pub mod chacha20;
pub mod hmac;
pub mod prf;
pub mod rng;
pub mod sha256;

pub use aead::{AeadError, AeadKey};
pub use hmac::{hkdf_expand, hmac_sha256};
pub use prf::Prf;
pub use rng::{ChaChaRng, RandomSource};
pub use sha256::{sha256, Sha256};
