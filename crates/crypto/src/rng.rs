//! Deterministic ChaCha20-based CSPRNG behind the dyn-safe
//! [`RandomSource`] trait.
//!
//! Every piece of protocol randomness (FHIPE matrices, blinding factors
//! `γ`, `δ`, query keys `k`, polynomial scalings) is drawn through this
//! trait, which keeps the whole system reproducible from a single seed —
//! essential for the paper-reproduction experiments and for property tests.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::sha256::sha256;

/// A source of cryptographically-strong random bytes.
///
/// Deliberately dyn-safe so protocol code can take `&mut dyn RandomSource`
/// without generic plumbing.
pub trait RandomSource {
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Next random `u64`.
    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Next random `u32`.
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Uniform value in `[0, bound)` by rejection sampling (`bound > 0`).
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the result exactly uniform.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// ChaCha20-based deterministic random generator.
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; KEY_LEN],
    nonce: [u8; NONCE_LEN],
    counter: u32,
    buf: [u8; 64],
    buf_pos: usize,
}

impl ChaChaRng {
    /// Construct from a full 32-byte seed.
    pub fn from_seed(seed: [u8; KEY_LEN]) -> Self {
        ChaChaRng {
            key: seed,
            nonce: [0u8; NONCE_LEN],
            counter: 0,
            buf: [0u8; 64],
            buf_pos: 64,
        }
    }

    /// Construct from a 64-bit seed (expanded through SHA-256).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut msg = *b"eqjoin-rng-seed-........";
        msg[16..24].copy_from_slice(&seed.to_le_bytes());
        Self::from_seed(sha256(&msg))
    }

    /// Construct from ambient entropy (time + PID + a process counter).
    ///
    /// This is a research artifact: "from_entropy" is best-effort and meant
    /// for interactive use; experiments should always use explicit seeds.
    pub fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let mut material = Vec::with_capacity(64);
        material.extend_from_slice(&now.to_le_bytes());
        material.extend_from_slice(&std::process::id().to_le_bytes());
        material.extend_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
        let bt = std::time::Instant::now();
        material.extend_from_slice(&(&bt as *const _ as usize).to_le_bytes());
        Self::from_seed(sha256(&material))
    }

    fn refill(&mut self) {
        self.buf = chacha20::block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.checked_add(1).unwrap_or_else(|| {
            // Counter exhausted: ratchet the key forward and restart.
            self.key = sha256(&self.key);
            0
        });
        self.buf_pos = 0;
    }
}

impl RandomSource for ChaChaRng {
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.buf_pos == 64 {
                self.refill();
            }
            let take = (dest.len() - filled).min(64 - self.buf_pos);
            dest[filled..filled + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            filled += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = ChaChaRng::seed_from_u64(42);
        let mut b = ChaChaRng::seed_from_u64(42);
        let mut c = ChaChaRng::seed_from_u64(43);
        let (mut ba, mut bb, mut bc) = ([0u8; 97], [0u8; 97], [0u8; 97]);
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        c.fill_bytes(&mut bc);
        assert_eq!(ba, bb);
        assert_ne!(ba, bc);
    }

    #[test]
    fn chunked_reads_match_bulk() {
        let mut bulk = ChaChaRng::seed_from_u64(7);
        let mut chunked = ChaChaRng::seed_from_u64(7);
        let mut big = [0u8; 200];
        bulk.fill_bytes(&mut big);
        let mut acc = Vec::new();
        for size in [1usize, 3, 64, 63, 69] {
            let mut b = vec![0u8; size];
            chunked.fill_bytes(&mut b);
            acc.extend_from_slice(&b);
        }
        assert_eq!(&big[..], &acc[..]);
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut rng = ChaChaRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_bounded(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn entropy_instances_differ() {
        let mut a = ChaChaRng::from_entropy();
        let mut b = ChaChaRng::from_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_u32_and_u64_advance_stream() {
        let mut rng = ChaChaRng::seed_from_u64(9);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let c = rng.next_u32();
        let d = rng.next_u32();
        assert_ne!(c, d);
    }
}
