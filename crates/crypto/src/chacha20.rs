//! ChaCha20 stream cipher (RFC 8439).

/// The "expand 32-byte k" constant words.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Compute one 64-byte ChaCha20 keystream block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("key word"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("nonce word"));
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream starting at block
/// `initial_counter`. Encryption and decryption are the same operation.
pub fn apply_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
        let key = test_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let ks = block(&key, 1, &nonce);
        let expected_first_words: [u32; 4] = [0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3];
        for (i, w) in expected_first_words.iter().enumerate() {
            assert_eq!(
                u32::from_le_bytes(ks[4 * i..4 * i + 4].try_into().unwrap()),
                *w,
                "word {i}"
            );
        }
    }

    #[test]
    fn roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let plaintext: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut buf = plaintext.clone();
        apply_keystream(&key, &nonce, 0, &mut buf);
        assert_ne!(buf, plaintext);
        apply_keystream(&key, &nonce, 0, &mut buf);
        assert_eq!(buf, plaintext);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = test_key();
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        apply_keystream(&key, &[1u8; NONCE_LEN], 0, &mut a);
        apply_keystream(&key, &[2u8; NONCE_LEN], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_offset_is_contiguous() {
        // Applying from counter 0 over 128 bytes equals applying two 64-byte
        // halves at counters 0 and 1.
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        let mut whole = vec![0u8; 128];
        apply_keystream(&key, &nonce, 0, &mut whole);
        let mut lo = vec![0u8; 64];
        let mut hi = vec![0u8; 64];
        apply_keystream(&key, &nonce, 0, &mut lo);
        apply_keystream(&key, &nonce, 1, &mut hi);
        assert_eq!(&whole[..64], &lo[..]);
        assert_eq!(&whole[64..], &hi[..]);
    }

    #[test]
    fn quarter_round_rfc_vector() {
        // RFC 8439 §2.1.1 test vector.
        let mut st = [0u32; 16];
        st[0] = 0x11111111;
        st[1] = 0x01020304;
        st[2] = 0x9b8d6f43;
        st[3] = 0x01234567;
        quarter_round(&mut st, 0, 1, 2, 3);
        assert_eq!(st[0], 0xea2a92f4);
        assert_eq!(st[1], 0xcb1cf8ce);
        assert_eq!(st[2], 0x4581472e);
        assert_eq!(st[3], 0x5881c4bb);
    }
}
