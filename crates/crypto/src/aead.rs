//! Authenticated encryption for row payloads: ChaCha20 encrypt-then-MAC
//! with HMAC-SHA-256.
//!
//! Wire format: `nonce (12) || ciphertext || tag (32)`. The MAC covers the
//! nonce, the associated data length, the associated data and the
//! ciphertext, so truncation and AD-substitution are rejected.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::hmac::{ct_eq, hkdf_expand, hmac_sha256};
use crate::rng::RandomSource;

/// MAC tag length in bytes.
pub const TAG_LEN: usize = 32;

/// Errors returned by [`AeadKey::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// Ciphertext is shorter than `nonce + tag`.
    Truncated,
    /// MAC verification failed.
    BadTag,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::Truncated => write!(f, "ciphertext too short"),
            AeadError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for AeadError {}

/// An authenticated-encryption key (independent sub-keys for encryption
/// and authentication, derived from one 32-byte master key).
#[derive(Clone)]
pub struct AeadKey {
    enc: [u8; KEY_LEN],
    mac: [u8; 32],
}

impl AeadKey {
    /// Derive the AEAD sub-keys from a 32-byte master key.
    pub fn from_master(master: &[u8; 32]) -> Self {
        let okm = hkdf_expand(master, b"eqjoin-aead-v1", KEY_LEN + 32);
        let mut enc = [0u8; KEY_LEN];
        let mut mac = [0u8; 32];
        enc.copy_from_slice(&okm[..KEY_LEN]);
        mac.copy_from_slice(&okm[KEY_LEN..]);
        AeadKey { enc, mac }
    }

    /// Sample a fresh key.
    pub fn generate(rng: &mut dyn RandomSource) -> Self {
        let mut master = [0u8; 32];
        rng.fill_bytes(&mut master);
        Self::from_master(&master)
    }

    fn mac_input(nonce: &[u8; NONCE_LEN], ad: &[u8], ct: &[u8]) -> Vec<u8> {
        let mut m = Vec::with_capacity(NONCE_LEN + 8 + ad.len() + ct.len());
        m.extend_from_slice(nonce);
        m.extend_from_slice(&(ad.len() as u64).to_le_bytes());
        m.extend_from_slice(ad);
        m.extend_from_slice(ct);
        m
    }

    /// Encrypt `plaintext` binding `ad` (associated data), drawing a fresh
    /// nonce from `rng`.
    pub fn seal(&self, rng: &mut dyn RandomSource, ad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        let mut ct = plaintext.to_vec();
        chacha20::apply_keystream(&self.enc, &nonce, 1, &mut ct);
        let tag = hmac_sha256(&self.mac, &Self::mac_input(&nonce, ad, &ct));
        let mut out = Vec::with_capacity(NONCE_LEN + ct.len() + TAG_LEN);
        out.extend_from_slice(&nonce);
        out.extend_from_slice(&ct);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt and verify; returns the plaintext.
    pub fn open(&self, ad: &[u8], sealed: &[u8]) -> Result<Vec<u8>, AeadError> {
        if sealed.len() < NONCE_LEN + TAG_LEN {
            return Err(AeadError::Truncated);
        }
        let (nonce_bytes, rest) = sealed.split_at(NONCE_LEN);
        let (ct, tag) = rest.split_at(rest.len() - TAG_LEN);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(nonce_bytes);
        let expect = hmac_sha256(&self.mac, &Self::mac_input(&nonce, ad, ct));
        if !ct_eq(&expect, tag) {
            return Err(AeadError::BadTag);
        }
        let mut pt = ct.to_vec();
        chacha20::apply_keystream(&self.enc, &nonce, 1, &mut pt);
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::ChaChaRng;

    fn key() -> AeadKey {
        AeadKey::from_master(&[3u8; 32])
    }

    #[test]
    fn roundtrip() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let sealed = k.seal(&mut rng, b"row:7", b"secret payload");
        assert_eq!(k.open(b"row:7", &sealed).unwrap(), b"secret payload");
    }

    #[test]
    fn wrong_ad_rejected() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let sealed = k.seal(&mut rng, b"row:7", b"secret payload");
        assert_eq!(k.open(b"row:8", &sealed), Err(AeadError::BadTag));
    }

    #[test]
    fn tamper_rejected() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let mut sealed = k.seal(&mut rng, b"", b"secret payload");
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert!(k.open(b"", &sealed).is_err(), "flip at {i} accepted");
            sealed[i] ^= 1;
        }
        assert!(k.open(b"", &sealed).is_ok());
    }

    #[test]
    fn truncation_rejected() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let sealed = k.seal(&mut rng, b"", b"payload");
        assert_eq!(k.open(b"", &sealed[..10]), Err(AeadError::Truncated));
        assert_eq!(
            k.open(b"", &sealed[..sealed.len() - 1]),
            Err(AeadError::BadTag)
        );
    }

    #[test]
    fn fresh_nonce_randomizes_ciphertext() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let a = k.seal(&mut rng, b"", b"same message");
        let b = k.seal(&mut rng, b"", b"same message");
        assert_ne!(a, b);
        assert_eq!(k.open(b"", &a).unwrap(), k.open(b"", &b).unwrap());
    }

    #[test]
    fn wrong_key_rejected() {
        let k1 = key();
        let k2 = AeadKey::from_master(&[4u8; 32]);
        let mut rng = ChaChaRng::seed_from_u64(0);
        let sealed = k1.seal(&mut rng, b"", b"msg");
        assert!(k2.open(b"", &sealed).is_err());
    }

    #[test]
    fn empty_plaintext() {
        let k = key();
        let mut rng = ChaChaRng::seed_from_u64(0);
        let sealed = k.seal(&mut rng, b"ad", b"");
        assert_eq!(k.open(b"ad", &sealed).unwrap(), Vec::<u8>::new());
    }
}
