//! SHA-256 (FIPS 180-4), implemented from the specification.
//!
//! The round constants `K[0..64]` are the first 32 bits of the fractional
//! parts of the cube roots of the first 64 primes, and the initial state
//! `H0[0..8]` the same for square roots of the first 8 primes. Instead of
//! hard-coding the tables we derive them with *exact* integer root
//! computations at first use; the standard FIPS test vectors below then
//! pin down full correctness.

use std::sync::OnceLock;

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 64;

fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes.iter().all(|p| !cand.is_multiple_of(*p)) {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

/// Exact integer square root of a `u128` by binary search.
fn isqrt(n: u128) -> u128 {
    let (mut lo, mut hi) = (0u128, 1u128 << 64);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).map(|m| m <= n).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Exact integer cube root of a `u128` by binary search.
fn icbrt(n: u128) -> u128 {
    let (mut lo, mut hi) = (0u128, 1u128 << 43);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let cube = mid.checked_mul(mid).and_then(|m| m.checked_mul(mid));
        if cube.map(|c| c <= n).unwrap_or(false) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

struct Tables {
    k: [u32; 64],
    h0: [u32; 8],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let primes = first_primes(64);
        let mut k = [0u32; 64];
        for (i, &p) in primes.iter().enumerate() {
            // frac(p^(1/3)) * 2^32 == floor(cbrt(p * 2^96)) mod 2^32 (exact).
            k[i] = (icbrt((p as u128) << 96) & 0xffff_ffff) as u32;
        }
        let mut h0 = [0u32; 8];
        for (i, &p) in primes.iter().take(8).enumerate() {
            h0[i] = (isqrt((p as u128) << 64) & 0xffff_ffff) as u32;
        }
        Tables { k, h0 }
    })
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: tables().h0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= BLOCK_LEN {
            let (block, tail) = rest.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
        self
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        let pad_len = {
            let rem = (self.buf_len + 1 + 8) % BLOCK_LEN;
            let zeros = if rem == 0 { 0 } else { BLOCK_LEN - rem };
            1 + zeros + 8
        };
        pad[0] = 0x80;
        pad[pad_len - 8..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        let pad = pad;
        self.update(&pad[..pad_len]);
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = &tables().k;
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn derived_constants_match_fips() {
        let t = tables();
        // Spot-check the published FIPS 180-4 values.
        assert_eq!(t.h0[0], 0x6a09e667);
        assert_eq!(t.h0[7], 0x5be0cd19);
        assert_eq!(t.k[0], 0x428a2f98);
        assert_eq!(t.k[63], 0xc67178f2);
    }

    #[test]
    fn empty_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        // FIPS 180-4 example: 448-bit message.
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn length_extension_padding_edges() {
        // Hash inputs whose length sits exactly around block boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xa5u8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-4 long test vector: one million repetitions of "a".
        let chunk = [b'a'; 1000];
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }
}
