//! HMAC-SHA-256 (RFC 2104) and an HKDF-expand style key-derivation helper.

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// HMAC-SHA-256 of `data` under `key` (any key length).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad).update(data);
    let mut outer = Sha256::new();
    outer.update(&opad).update(&inner.finalize());
    outer.finalize()
}

/// HKDF-style expansion: derive `len` bytes from `prk` and `info`
/// (RFC 5869 expand step with HMAC-SHA-256).
pub fn hkdf_expand(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut out = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = t.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        t = hmac_sha256(prk, &msg).to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t[..take]);
        counter = counter.checked_add(1).expect("hkdf counter overflow");
    }
    out
}

/// Constant-time byte-slice equality (length must match).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // Keys longer than the block size are first hashed; verify against
        // the equivalent short-key invocation.
        let long_key = vec![0x42u8; 100];
        let short_key = sha256(&long_key);
        assert_eq!(
            hmac_sha256(&long_key, b"msg"),
            hmac_sha256(&short_key, b"msg")
        );
    }

    #[test]
    fn distinct_keys_distinct_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn hkdf_lengths_and_prefix_property() {
        let prk = sha256(b"input key material");
        let a = hkdf_expand(&prk, b"ctx", 16);
        let b = hkdf_expand(&prk, b"ctx", 80);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 80);
        assert_eq!(&b[..16], &a[..]);
        assert_ne!(hkdf_expand(&prk, b"ctx2", 16), a);
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"same "));
        assert!(!ct_eq(b"abcd", b"abce"));
        assert!(ct_eq(b"", b""));
    }
}
